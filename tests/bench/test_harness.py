"""Tests for the benchmark harness, metrics and reporting."""

import pytest

from repro.bench.environment import BACKENDS, build_environment
from repro.bench.harness import run_atomic_write_job, verify_job_atomicity
from repro.bench.metrics import ThroughputSample, scaling_efficiency, speedup
from repro.bench.reporting import format_series, format_table
from repro.cluster import ClusterConfig
from repro.errors import BenchmarkError
from repro.workloads.overlap_stress import OverlapStressWorkload

QUICK = ClusterConfig(network_latency=1e-5, disk_overhead=1e-4)


class TestMetrics:
    def test_throughput_sample(self):
        sample = ThroughputSample("versioning", 4, total_bytes=4 * 1024 * 1024,
                                  elapsed=2.0)
        assert sample.throughput == 2 * 1024 * 1024
        assert sample.throughput_mib == pytest.approx(2.0)
        assert sample.per_client_mib == pytest.approx(0.5)

    def test_zero_elapsed_gives_infinite_throughput(self):
        sample = ThroughputSample("x", 1, total_bytes=10, elapsed=0.0)
        assert sample.throughput == float("inf")

    def test_speedup(self):
        ours = ThroughputSample("versioning", 4, 1000, 1.0)
        base = ThroughputSample("posix-locking", 4, 1000, 4.0)
        assert speedup(ours, base) == pytest.approx(4.0)

    def test_scaling_efficiency(self):
        samples = [ThroughputSample("v", 1, 100, 1.0),
                   ThroughputSample("v", 4, 400, 1.0)]
        efficiency = scaling_efficiency(samples)
        assert efficiency[1] == pytest.approx(1.0)
        assert efficiency[4] == pytest.approx(4.0)
        assert scaling_efficiency([]) == {}


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        rows = [{"backend": "versioning", "throughput": 123.456},
                {"backend": "posix-locking", "throughput": 12.3}]
        text = format_table(rows, title="EXP1")
        assert "EXP1" in text
        assert "versioning" in text
        assert "123.46" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, separator, two rows

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_format_table_bools_and_missing(self):
        rows = [{"a": True, "b": 1}, {"a": False}]
        text = format_table(rows, columns=["a", "b"])
        assert "yes" in text and "no" in text

    def test_format_series(self):
        series = {"versioning": {1: 10.0, 2: 20.0},
                  "posix-locking": {1: 5.0, 2: 5.0}}
        text = format_series(series, title="Fig A")
        assert "Fig A" in text
        assert "versioning (MiB/s)" in text
        assert "20.00" in text


class TestEnvironment:
    def test_unknown_backend_rejected(self):
        with pytest.raises(BenchmarkError):
            build_environment("not-a-backend")

    @pytest.mark.parametrize("backend", list(BACKENDS))
    def test_environments_build_for_every_backend(self, backend):
        environment = build_environment(backend, num_storage_nodes=2,
                                        config=QUICK)
        assert environment.backend == backend
        assert environment.num_storage_nodes == 2
        assert environment.storage_stats()

    def test_equal_storage_resources(self):
        versioning = build_environment("versioning", num_storage_nodes=4,
                                       config=QUICK)
        locking = build_environment("posix-locking", num_storage_nodes=4,
                                    config=QUICK)
        def storage_nodes(env):
            return [node for node in env.cluster.nodes.values()
                    if node.disk is not None]
        assert len(storage_nodes(versioning)) == len(storage_nodes(locking)) == 4


class TestHarness:
    def _workload(self, clients):
        return OverlapStressWorkload(num_clients=clients, regions_per_client=4,
                                     region_size=8192, overlap_fraction=0.5)

    @pytest.mark.parametrize("backend", ["versioning", "posix-locking"])
    def test_run_produces_consistent_result(self, backend):
        workload = self._workload(3)
        environment = build_environment(backend, num_storage_nodes=3,
                                        stripe_unit=4096, config=QUICK)
        result = run_atomic_write_job(environment, 3, workload.client_pairs,
                                      workload.file_size, atomic=True)
        assert result.backend == backend
        assert result.num_clients == 3
        assert result.total_bytes == workload.total_bytes
        assert result.write_elapsed > 0
        assert result.throughput_mib > 0
        assert len(result.per_rank_elapsed) == 3
        assert result.sample.num_clients == 3

    @pytest.mark.parametrize("backend", ["versioning", "posix-locking"])
    def test_run_leaves_an_atomic_file_behind(self, backend):
        workload = self._workload(3)
        environment = build_environment(backend, num_storage_nodes=3,
                                        stripe_unit=4096, config=QUICK)
        result = run_atomic_write_job(environment, 3, workload.client_pairs,
                                      workload.file_size, atomic=True)
        assert verify_job_atomicity(environment, 3, workload.client_pairs, result)

    def test_locking_backend_reports_lock_wait(self):
        workload = self._workload(4)
        environment = build_environment("posix-locking", num_storage_nodes=3,
                                        stripe_unit=4096, config=QUICK)
        result = run_atomic_write_job(environment, 4, workload.client_pairs,
                                      workload.file_size, atomic=True)
        assert result.lock_wait_time > 0
        # the versioning backend never waits on locks
        environment_v = build_environment("versioning", num_storage_nodes=3,
                                          stripe_unit=4096, config=QUICK)
        result_v = run_atomic_write_job(environment_v, 4, workload.client_pairs,
                                        workload.file_size, atomic=True)
        assert result_v.lock_wait_time == 0

    def test_versioning_beats_locking_under_overlapping_concurrency(self):
        """The paper's headline claim at a small, test-friendly scale."""
        workload = self._workload(4)
        throughputs = {}
        for backend in ("versioning", "posix-locking"):
            environment = build_environment(backend, num_storage_nodes=4,
                                            stripe_unit=4096, config=QUICK)
            result = run_atomic_write_job(environment, 4, workload.client_pairs,
                                          workload.file_size, atomic=True)
            throughputs[backend] = result.sample.throughput
        assert throughputs["versioning"] > throughputs["posix-locking"]

    def test_invalid_client_count(self):
        environment = build_environment("versioning", num_storage_nodes=2,
                                        config=QUICK)
        with pytest.raises(BenchmarkError):
            run_atomic_write_job(environment, 0, lambda rank: [], 1024)
