"""Tests for the ``python -m repro.bench`` command-line interface."""

import pytest

from repro.bench.cli import build_parser, main, run_experiment, settings_from_args


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["exp1"])
        assert args.experiment == "exp1"
        assert args.clients == [1, 2, 4, 8]
        assert args.storage_nodes == 8

    def test_client_list_parsing(self):
        args = build_parser().parse_args(["exp2", "--clients", "2,4,16"])
        assert args.clients == [2, 4, 16]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_settings_from_args(self):
        args = build_parser().parse_args(
            ["exp1", "--clients", "1,2", "--region-kib", "16",
             "--overlap", "0.25", "--storage-nodes", "3"])
        settings = settings_from_args(args)
        assert settings.client_counts == (1, 2)
        assert settings.region_size == 16 * 1024
        assert settings.overlap_fraction == 0.25
        assert settings.num_storage_nodes == 3


class TestExecution:
    def _args(self, name, extra=()):
        return build_parser().parse_args(
            [name, "--clients", "1,2", "--storage-nodes", "2",
             "--regions-per-client", "2", "--region-kib", "8", *extra])

    def test_exp1_tables(self):
        args = self._args("exp1")
        tables = run_experiment("exp1", args)
        assert len(tables) == 1
        assert "EXP1" in tables[0]
        assert "versioning" in tables[0]

    def test_abl1_tables(self):
        args = self._args("abl1", ["--providers", "1,2"])
        tables = run_experiment("abl1", args)
        assert "ABL1" in tables[0]

    def test_fut1_tables(self):
        args = self._args("fut1", ["--producers", "2", "--consumers", "1",
                                   "--iterations", "1"])
        tables = run_experiment("fut1", args)
        assert "FUT1" in tables[0]
        assert "posix-locking" in tables[0]

    def test_main_prints_tables(self, capsys):
        exit_code = main(["exp3", "--clients", "1,2", "--storage-nodes", "2",
                          "--regions-per-client", "2", "--region-kib", "8"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "speedup" in output
