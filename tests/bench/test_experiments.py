"""Tests for the experiment definitions (tiny parameter sets).

These are correctness tests of the sweep functions — the real, larger runs
live in ``benchmarks/`` and in EXPERIMENTS.md.
"""

import pytest

from repro.bench.experiments import (
    ExperimentSettings,
    run_abl1_striping,
    run_abl2_lock_granularity,
    run_abl3_metadata_overhead,
    run_exp1_overlap_scalability,
    run_exp1b_nonoverlapping,
    run_exp2_tile_io,
    run_exp3_speedup_table,
)
from repro.bench.producer_consumer import run_fut1_producer_consumer
from repro.cluster import ClusterConfig
from repro.errors import BenchmarkError


def tiny_settings():
    return ExperimentSettings(
        client_counts=(1, 2),
        num_storage_nodes=2,
        stripe_unit=8192,
        num_metadata_providers=1,
        regions_per_client=2,
        region_size=8192,
        overlap_fraction=0.5,
        tile_elements_x=16,
        tile_elements_y=16,
        element_size=8,
        tile_overlap=2,
        config=ClusterConfig(network_latency=1e-5, disk_overhead=1e-4),
    )


class TestExperimentSweeps:
    def test_exp1_produces_one_row_per_backend_and_count(self):
        rows = run_exp1_overlap_scalability(tiny_settings())
        assert len(rows) == 2 * 2
        assert {row["backend"] for row in rows} == {"versioning", "posix-locking"}
        assert all(row["throughput_mib_s"] > 0 for row in rows)
        assert all(row["experiment"] == "EXP1" for row in rows)

    def test_exp1b_marks_rows_and_uses_disjoint_accesses(self):
        rows = run_exp1b_nonoverlapping(tiny_settings())
        assert all(row["experiment"] == "EXP1b" for row in rows)
        assert all(row["overlap"] == 0.0 for row in rows)
        assert {row["backend"] for row in rows} == {
            "versioning", "posix-locking", "conflict-detect"}

    def test_exp2_rows_describe_the_tile_grid(self):
        rows = run_exp2_tile_io(tiny_settings())
        assert all("x" in row["tile_grid"] for row in rows)
        assert all(row["throughput_mib_s"] > 0 for row in rows)

    def test_exp3_speedup_rows(self):
        rows = run_exp3_speedup_table(tiny_settings())
        assert rows
        for row in rows:
            assert row["speedup"] == pytest.approx(
                row["versioning_mib_s"] / row["lustre_locking_mib_s"])

    def test_abl1_striping_rows(self):
        rows = run_abl1_striping(tiny_settings(), provider_counts=(1, 2),
                                 num_clients=2)
        assert [row["providers"] for row in rows] == [1, 2]
        assert all(row["load_imbalance"] >= 1.0 for row in rows)

    def test_abl2_covers_all_drivers_and_overlaps(self):
        rows = run_abl2_lock_granularity(tiny_settings(), num_clients=2,
                                         overlaps=(0.0, 0.5))
        assert len(rows) == 2 * 4
        assert {row["backend"] for row in rows} == {
            "posix-locking", "posix-listlock", "conflict-detect", "versioning"}

    def test_abl3_metadata_rows(self):
        rows = run_abl3_metadata_overhead(tiny_settings(), num_clients=2,
                                          regions_per_client_values=(1, 4),
                                          publish_costs=(0.0,))
        nodes = {row["regions_per_client"]: row["metadata_nodes"] for row in rows}
        assert nodes[4] > nodes[1]

    def test_fut1_producer_consumer_rows(self):
        rows = run_fut1_producer_consumer(tiny_settings(),
                                          num_producers=2, num_consumers=1,
                                          iterations=2)
        assert {row["backend"] for row in rows} == {"versioning", "posix-locking"}
        for row in rows:
            assert row["producer_mib_s"] > 0
            assert row["consumer_read_latency_s"] > 0

    def test_fut1_invalid_arguments(self):
        with pytest.raises(BenchmarkError):
            run_fut1_producer_consumer(tiny_settings(), num_producers=0)
