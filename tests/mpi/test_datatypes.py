"""Unit tests for MPI-like derived datatypes."""

import pytest

from repro.errors import DatatypeError
from repro.mpi.datatypes import BYTE, DOUBLE, INT, Contiguous, Indexed, Subarray, Vector


class TestBasicTypes:
    def test_sizes(self):
        assert BYTE.size == 1 and BYTE.extent == 1
        assert INT.size == 4
        assert DOUBLE.size == 8

    def test_flatten(self):
        assert INT.flatten().as_tuples() == [(0, 4)]

    def test_tiled(self):
        assert INT.tiled(3).as_tuples() == [(0, 12)]
        assert INT.tiled(2, origin=100).as_tuples() == [(100, 8)]


class TestContiguous:
    def test_size_extent_flatten(self):
        datatype = Contiguous(5, INT)
        assert datatype.size == 20
        assert datatype.extent == 20
        assert datatype.flatten().as_tuples() == [(0, 20)]

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            Contiguous(-1)


class TestVector:
    def test_strided_blocks(self):
        datatype = Vector(count=3, blocklength=2, stride=4, base=BYTE)
        assert datatype.flatten().as_tuples() == [(0, 2), (4, 2), (8, 2)]
        assert datatype.size == 6
        assert datatype.extent == 10

    def test_vector_of_ints(self):
        datatype = Vector(count=2, blocklength=1, stride=3, base=INT)
        assert datatype.flatten().as_tuples() == [(0, 4), (12, 4)]

    def test_contiguous_when_stride_equals_blocklength(self):
        datatype = Vector(count=4, blocklength=2, stride=2, base=BYTE)
        assert datatype.flatten().as_tuples() == [(0, 8)]

    def test_invalid_stride_rejected(self):
        with pytest.raises(DatatypeError):
            Vector(count=2, blocklength=4, stride=2)

    def test_zero_count(self):
        datatype = Vector(count=0, blocklength=2, stride=4)
        assert datatype.extent == 0
        assert len(datatype.flatten()) == 0


class TestIndexed:
    def test_blocks_at_displacements(self):
        datatype = Indexed([2, 3], [0, 10], base=BYTE)
        assert datatype.flatten().as_tuples() == [(0, 2), (10, 3)]
        assert datatype.size == 5
        assert datatype.extent == 13

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatatypeError):
            Indexed([1, 2], [0])

    def test_negative_values_rejected(self):
        with pytest.raises(DatatypeError):
            Indexed([-1], [0])
        with pytest.raises(DatatypeError):
            Indexed([1], [-2])


class TestSubarray:
    def test_2d_subarray(self):
        # 4x4 array of bytes, 2x2 subarray at (1, 1)
        datatype = Subarray(sizes=[4, 4], subsizes=[2, 2], starts=[1, 1])
        assert datatype.flatten().as_tuples() == [(5, 2), (9, 2)]
        assert datatype.size == 4
        assert datatype.extent == 16

    def test_2d_subarray_with_element_type(self):
        datatype = Subarray(sizes=[4, 4], subsizes=[2, 2], starts=[0, 2], base=INT)
        assert datatype.flatten().as_tuples() == [(8, 8), (24, 8)]

    def test_full_array_is_contiguous(self):
        datatype = Subarray(sizes=[4, 4], subsizes=[4, 4], starts=[0, 0])
        assert datatype.flatten().as_tuples() == [(0, 16)]

    def test_1d_subarray(self):
        datatype = Subarray(sizes=[10], subsizes=[3], starts=[4])
        assert datatype.flatten().as_tuples() == [(4, 3)]

    def test_3d_subarray_row_count(self):
        datatype = Subarray(sizes=[3, 4, 5], subsizes=[2, 2, 3], starts=[1, 1, 1])
        regions = datatype.flatten()
        # 2*2 rows of 3 contiguous bytes each
        assert len(regions) == 4
        assert all(region.size == 3 for region in regions)
        assert datatype.size == 12

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(DatatypeError):
            Subarray(sizes=[4], subsizes=[2, 2], starts=[0])
        with pytest.raises(DatatypeError):
            Subarray(sizes=[4], subsizes=[5], starts=[0])
        with pytest.raises(DatatypeError):
            Subarray(sizes=[4], subsizes=[2], starts=[3])
        with pytest.raises(DatatypeError):
            Subarray(sizes=[], subsizes=[], starts=[])

    def test_empty_subarray(self):
        datatype = Subarray(sizes=[4, 4], subsizes=[0, 2], starts=[0, 0])
        assert len(datatype.flatten()) == 0
        assert datatype.size == 0

    def test_subarray_total_bytes_match_size(self):
        datatype = Subarray(sizes=[8, 8], subsizes=[3, 5], starts=[2, 1], base=DOUBLE)
        assert datatype.flatten().total_bytes() == datatype.size == 3 * 5 * 8
