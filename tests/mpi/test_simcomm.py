"""Unit tests for the simulated MPI communicator and launcher."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import MPIError
from repro.mpi import run_mpi_job
from repro.mpi.simcomm import Communicator


def make_cluster():
    return Cluster(config=ClusterConfig(network_latency=1e-4))


class TestCollectives:
    def test_barrier_synchronizes_ranks(self):
        cluster = make_cluster()
        arrival, departure = {}, {}

        def rank_main(ctx):
            yield ctx.sim.timeout(ctx.rank * 0.5)
            arrival[ctx.rank] = ctx.sim.now
            yield from ctx.comm.barrier(ctx.rank)
            departure[ctx.rank] = ctx.sim.now

        run_mpi_job(cluster, 4, rank_main)
        assert max(arrival.values()) == pytest.approx(1.5)
        assert min(departure.values()) >= max(arrival.values())

    def test_bcast(self):
        cluster = make_cluster()

        def rank_main(ctx):
            value = "payload" if ctx.rank == 0 else None
            received = yield from ctx.comm.bcast(ctx.rank, value, root=0)
            return received

        result = run_mpi_job(cluster, 3, rank_main)
        assert result.results == ["payload"] * 3

    def test_gather_and_allgather(self):
        cluster = make_cluster()

        def rank_main(ctx):
            gathered = yield from ctx.comm.gather(ctx.rank, ctx.rank * 10, root=1)
            everyone = yield from ctx.comm.allgather(ctx.rank, ctx.rank)
            return gathered, everyone

        result = run_mpi_job(cluster, 3, rank_main)
        gathered_values = [entry[0] for entry in result.results]
        assert gathered_values[1] == [0, 10, 20]
        assert gathered_values[0] is None and gathered_values[2] is None
        assert all(entry[1] == [0, 1, 2] for entry in result.results)

    def test_allreduce_default_sum_and_custom_op(self):
        cluster = make_cluster()

        def rank_main(ctx):
            total = yield from ctx.comm.allreduce(ctx.rank, ctx.rank + 1)
            biggest = yield from ctx.comm.allreduce(ctx.rank, ctx.rank, op=max)
            return total, biggest

        result = run_mpi_job(cluster, 4, rank_main)
        assert all(entry == (10, 3) for entry in result.results)

    def test_scatter(self):
        cluster = make_cluster()

        def rank_main(ctx):
            values = [f"item{i}" for i in range(ctx.size)] if ctx.rank == 0 else None
            mine = yield from ctx.comm.scatter(ctx.rank, values, root=0)
            return mine

        result = run_mpi_job(cluster, 3, rank_main)
        assert result.results == ["item0", "item1", "item2"]

    def test_multiple_barriers_match_by_generation(self):
        cluster = make_cluster()
        log = []

        def rank_main(ctx):
            for phase in range(3):
                yield ctx.sim.timeout((ctx.rank + 1) * 0.1)
                yield from ctx.comm.barrier(ctx.rank)
                if ctx.rank == 0:
                    log.append((phase, ctx.sim.now))

        run_mpi_job(cluster, 3, rank_main)
        assert len(log) == 3
        assert log[0][1] < log[1][1] < log[2][1]

    def test_alltoallv_delivers_personalized_items(self):
        cluster = make_cluster()

        def rank_main(ctx):
            send = [f"{ctx.rank}->{dst}" for dst in range(ctx.size)]
            received = yield from ctx.comm.alltoallv(ctx.rank, send)
            return received

        result = run_mpi_job(cluster, 3, rank_main)
        for dst, received in enumerate(result.results):
            assert received == [f"{src}->{dst}" for src in range(3)]

    def test_alltoallv_charges_the_bottleneck_rank(self):
        cluster = make_cluster()
        config = cluster.config

        def rank_main(ctx):
            # rank 0 sends one big payload to rank 1; everything else is empty
            send = [b"" for _ in range(ctx.size)]
            if ctx.rank == 0:
                send[1] = b"x" * (1024 * 1024)
            started = ctx.sim.now
            yield from ctx.comm.alltoallv(ctx.rank, send, sizeof=len)
            return ctx.sim.now - started

        result = run_mpi_job(cluster, 2, rank_main)
        # the bottleneck is the 1 MiB pairwise transfer, charged once
        expected = config.network_latency + (1024 * 1024) / config.network_bandwidth
        assert max(result.results) == pytest.approx(expected, rel=1e-6)

    def test_alltoallv_rejects_wrong_item_count(self):
        cluster = make_cluster()
        comm = Communicator(cluster, 2)

        def proc():
            yield from comm.alltoallv(0, [1, 2, 3])

        cluster.sim.process(proc())
        with pytest.raises(MPIError):
            cluster.run()

    def test_single_rank_collectives_are_trivial(self):
        cluster = make_cluster()

        def rank_main(ctx):
            yield from ctx.comm.barrier(ctx.rank)
            value = yield from ctx.comm.bcast(ctx.rank, "x", root=0)
            return value

        result = run_mpi_job(cluster, 1, rank_main)
        assert result.results == ["x"]

    def test_invalid_rank_rejected(self):
        cluster = make_cluster()
        comm = Communicator(cluster, 2)

        def proc():
            yield from comm.barrier(5)

        cluster.sim.process(proc())
        with pytest.raises(MPIError):
            cluster.run()

    def test_invalid_communicator_size(self):
        with pytest.raises(MPIError):
            Communicator(make_cluster(), 0)


class TestLauncher:
    def test_results_in_rank_order(self):
        cluster = make_cluster()

        def rank_main(ctx):
            yield ctx.sim.timeout((ctx.size - ctx.rank) * 0.1)
            return f"rank{ctx.rank}"

        result = run_mpi_job(cluster, 4, rank_main)
        assert result.results == [f"rank{i}" for i in range(4)]
        assert result.elapsed > 0

    def test_each_rank_on_its_own_node(self):
        cluster = make_cluster()
        nodes = []

        def rank_main(ctx):
            nodes.append(ctx.node.name)
            yield ctx.sim.timeout(0)

        run_mpi_job(cluster, 3, rank_main, node_prefix="worker")
        assert nodes == ["worker0", "worker1", "worker2"]

    def test_explicit_nodes(self):
        cluster = make_cluster()
        provided = cluster.add_nodes("fixed", 2)

        def rank_main(ctx):
            yield ctx.sim.timeout(0)
            return ctx.node.name

        result = run_mpi_job(cluster, 2, rank_main, nodes=provided)
        assert result.results == ["fixed0", "fixed1"]

    def test_too_few_nodes_rejected(self):
        cluster = make_cluster()
        nodes = cluster.add_nodes("n", 1)
        with pytest.raises(MPIError):
            run_mpi_job(cluster, 2, lambda ctx: iter(()), nodes=nodes)

    def test_zero_ranks_rejected(self):
        with pytest.raises(MPIError):
            run_mpi_job(make_cluster(), 0, lambda ctx: iter(()))


class TestAlltoallvSelfTraffic:
    def test_self_addressed_items_cost_nothing(self):
        from repro.cluster import Cluster, ClusterConfig
        cluster = Cluster(config=ClusterConfig(network_latency=1e-4))

        def rank_main(ctx):
            # everything stays local: rank r only "sends" to itself
            send = [b"" for _ in range(ctx.size)]
            send[ctx.rank] = b"x" * (1024 * 1024)
            started = ctx.sim.now
            received = yield from ctx.comm.alltoallv(ctx.rank, send, sizeof=len)
            assert received[ctx.rank] == send[ctx.rank]
            return ctx.sim.now - started

        result = run_mpi_job(cluster, 2, rank_main)
        # only the rendezvous latency is charged, no bandwidth term
        expected = cluster.config.network_latency
        assert max(result.results) == pytest.approx(expected, rel=1e-6)

    def test_allgather_accepts_a_payload_estimate(self):
        from repro.cluster import Cluster, ClusterConfig
        cluster = Cluster(config=ClusterConfig(network_latency=1e-4))
        payload = 1024 * 1024

        def rank_main(ctx):
            started = ctx.sim.now
            yield from ctx.comm.allgather(ctx.rank, ctx.rank,
                                          payload_bytes=payload)
            return ctx.sim.now - started

        result = run_mpi_job(cluster, 2, rank_main)
        expected = (cluster.config.network_latency
                    + payload / cluster.config.network_bandwidth)
        assert max(result.results) == pytest.approx(expected, rel=1e-6)


class TestBytesMovedAccounting:
    def test_collectives_accumulate_their_charged_payloads(self):
        from repro.cluster import Cluster, ClusterConfig
        cluster = Cluster(config=ClusterConfig(network_latency=1e-4))
        comms = []

        def rank_main(ctx):
            if ctx.rank == 0:
                comms.append(ctx.comm)
            yield from ctx.comm.barrier(ctx.rank)          # 0 bytes
            yield from ctx.comm.allgather(ctx.rank, ctx.rank,
                                          payload_bytes=1000)
            send = [b"" for _ in range(ctx.size)]
            send[(ctx.rank + 1) % ctx.size] = b"y" * 300   # 300 per NIC pair
            yield from ctx.comm.alltoallv(ctx.rank, send, sizeof=len)

        run_mpi_job(cluster, 2, rank_main)
        comm = comms[0]
        # barrier contributes nothing; the allgather its estimate; the
        # alltoallv its bottleneck volume (300 sent + 300 received per rank)
        assert comm.bytes_moved == 1000 + 600

    def test_single_rank_jobs_move_no_bytes(self):
        from repro.cluster import Cluster, ClusterConfig
        cluster = Cluster(config=ClusterConfig())

        def rank_main(ctx):
            yield from ctx.comm.allgather(ctx.rank, 1, payload_bytes=4096)
            return ctx.comm.bytes_moved

        result = run_mpi_job(cluster, 1, rank_main)
        assert result.results == [0]
