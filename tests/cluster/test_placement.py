"""Tests for the rank->node placement layer.

The property at the bottom is the placement layer's contract: *any*
rank->node map — however many clients share a node, whatever the shared
tier caches or evicts — yields byte-identical reads to the private-cache
one-client-per-node baseline, and the cache-tier statistics partition every
lookup exactly (``private hits + shared hits + fetches == lookups``).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig, placement_map
from repro.errors import MPIError, SimulationError
from repro.mpi.launcher import run_mpi_job
from repro.vstore.client import VectoredClient

BLOB = "placed"
CHUNK = 2048
FILE_SIZE = 64 * CHUNK


class TestPlacementMap:
    def test_default_is_one_rank_per_node(self):
        assert placement_map(4) == [0, 1, 2, 3]

    def test_ranks_per_node_packs_consecutive_ranks(self):
        assert placement_map(6, ranks_per_node=2) == [0, 0, 1, 1, 2, 2]
        assert placement_map(5, ranks_per_node=4) == [0, 0, 0, 0, 1]

    def test_explicit_placement_wins_and_is_compacted(self):
        assert placement_map(4, placement=[7, 2, 7, 9]) == [0, 1, 0, 2]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            placement_map(0)
        with pytest.raises(SimulationError):
            placement_map(2, ranks_per_node=0)
        with pytest.raises(SimulationError):
            placement_map(3, placement=[0, 1])
        with pytest.raises(SimulationError):
            placement_map(2, placement=[0, -1])


class TestClusterPlaceRanks:
    def test_nodes_are_shared_per_the_map(self):
        cluster = Cluster()
        nodes = cluster.place_ranks("r", 4, ranks_per_node=2)
        assert [node.name for node in nodes] == ["r0", "r0", "r1", "r1"]
        assert nodes[0] is nodes[1]

    def test_config_density_is_the_default(self):
        cluster = Cluster(config=ClusterConfig(ranks_per_node=3))
        nodes = cluster.place_ranks("r", 6)
        assert len({node.name for node in nodes}) == 2

    def test_explicit_placement(self):
        cluster = Cluster()
        nodes = cluster.place_ranks("r", 3, placement=[1, 0, 1])
        assert nodes[0] is nodes[2]
        assert nodes[0] is not nodes[1]


class TestLauncherPlacement:
    def test_mpi_job_ranks_share_nodes(self):
        cluster = Cluster()
        seen = {}

        def rank_main(ctx):
            seen[ctx.rank] = ctx.node.name
            yield from ctx.comm.barrier(ctx.rank)
            return ctx.rank

        result = run_mpi_job(cluster, 4, rank_main, ranks_per_node=2)
        assert result.results == [0, 1, 2, 3]
        assert seen[0] == seen[1]
        assert seen[2] == seen[3]
        assert seen[0] != seen[2]

    def test_launcher_rejects_short_node_lists(self):
        cluster = Cluster()
        nodes = cluster.place_ranks("r", 1)

        def rank_main(ctx):
            yield from ctx.comm.barrier(ctx.rank)

        with pytest.raises(MPIError):
            run_mpi_job(cluster, 2, rank_main, nodes=nodes)


# ----------------------------------------------------------------------
# the placement property
# ----------------------------------------------------------------------
NUM_CLIENTS = 4


@st.composite
def scenarios(draw):
    placement = [draw(st.integers(0, NUM_CLIENTS - 1))
                 for _ in range(NUM_CLIENTS)]
    num_writes = draw(st.integers(1, 3))
    writes = []
    for _ in range(num_writes):
        offset = draw(st.integers(0, FILE_SIZE - 1))
        size = draw(st.integers(1, min(4 * CHUNK, FILE_SIZE - offset)))
        fill = draw(st.integers(1, 255))
        writes.append((offset, bytes([fill]) * size))
    reads = []
    for _ in range(NUM_CLIENTS):
        offset = draw(st.integers(0, FILE_SIZE - 1))
        size = draw(st.integers(1, min(6 * CHUNK, FILE_SIZE - offset)))
        reads.append((offset, size))
    capacity = draw(st.sampled_from([None, 8, 32]))
    policy = draw(st.sampled_from(["lru", "slru", "level:2"]))
    return placement, writes, reads, capacity, policy


def run_reads(placement, writes, reads, shared, capacity, policy):
    """Seed the BLOB, then run one read per client under a placement."""
    config = ClusterConfig(shared_metadata_cache=shared,
                           shared_cache_capacity=capacity,
                           shared_cache_policy=policy)
    cluster = Cluster(config=config)
    deployment = BlobSeerDeployment(cluster, num_providers=2,
                                    num_metadata_providers=2,
                                    chunk_size=CHUNK)
    seeder = VectoredClient(deployment, cluster.add_node("seed"),
                            name="seed", shared_metadata_cache=False)

    def seed():
        yield from seeder.create_blob(BLOB, FILE_SIZE)
        version = 0
        for pair in writes:
            receipt = yield from seeder.vwrite_and_wait(BLOB, [pair])
            version = receipt.version
        return version

    process = cluster.sim.process(seed())
    cluster.sim.run(stop_event=process)
    version = process.value

    nodes = cluster.place_ranks("cn", NUM_CLIENTS,
                                placement=placement if shared else None)
    clients = [VectoredClient(deployment, nodes[index], name=f"c{index}")
               for index in range(NUM_CLIENTS)]
    results = {}

    def read_client(index):
        pieces = yield from clients[index].vread(BLOB, [reads[index]],
                                                 version)
        results[index] = pieces

    processes = [cluster.sim.process(read_client(index))
                 for index in range(NUM_CLIENTS)]

    def driver():
        yield cluster.sim.all_of(processes)

    process = cluster.sim.process(driver())
    cluster.sim.run(stop_event=process)
    return results, clients


@settings(max_examples=15, deadline=None)
@given(scenarios())
def test_any_placement_reads_byte_identically_and_stats_partition(scenario):
    placement, writes, reads, capacity, policy = scenario
    baseline, _ = run_reads(placement, writes, reads,
                            shared=False, capacity=None, policy="lru")
    placed, clients = run_reads(placement, writes, reads,
                                shared=True, capacity=capacity, policy=policy)
    assert placed == baseline

    # exact partition, per client and in aggregate: every deduplicated
    # lookup was a private hit, a shared hit, or a fetch
    for client in clients:
        lookups = client.metadata_cache.stats.lookups
        assert lookups == (client.metadata_cache.stats.hits
                           + client.shared_cache_hits
                           + client.metadata_lookup_fetches), client.name
