"""Unit tests for the simulated cluster (nodes, network, disk, RPC)."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Service
from repro.errors import SimulationError


def make_cluster(**overrides):
    config = ClusterConfig(network_latency=0.001, network_bandwidth=1000.0,
                           disk_bandwidth=500.0, disk_overhead=0.01,
                           rpc_handling_overhead=0.0, control_message_size=1,
                           **overrides)
    return Cluster(config=config)


class TestClusterBuilding:
    def test_add_node(self):
        cluster = make_cluster()
        node = cluster.add_node("n0", role="storage", with_disk=True)
        assert node.disk is not None
        assert cluster.node("n0") is node

    def test_duplicate_node_rejected(self):
        cluster = make_cluster()
        cluster.add_node("n0")
        with pytest.raises(SimulationError):
            cluster.add_node("n0")

    def test_unknown_node_rejected(self):
        with pytest.raises(SimulationError):
            make_cluster().node("missing")

    def test_add_nodes_names(self):
        cluster = make_cluster()
        nodes = cluster.add_nodes("client", 3)
        assert [node.name for node in nodes] == ["client0", "client1", "client2"]

    def test_compute_node_has_no_disk(self):
        cluster = make_cluster()
        node = cluster.add_node("c0")
        assert node.disk is None


class TestNetworkModel:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        cluster = make_cluster()
        a = cluster.add_node("a")
        b = cluster.add_node("b")
        done = []

        def proc():
            yield from cluster.network.transfer(a, b, 1000)
            done.append(cluster.now)

        cluster.sim.process(proc())
        cluster.run()
        # 1000 bytes at 1000 B/s on each NIC + 1 ms latency
        assert done[0] == pytest.approx(2.001)

    def test_local_transfer_is_free(self):
        cluster = make_cluster()
        a = cluster.add_node("a")
        done = []

        def proc():
            yield from cluster.network.transfer(a, a, 10_000_000)
            done.append(cluster.now)
            yield cluster.sim.timeout(0)

        cluster.sim.process(proc())
        cluster.run()
        assert done[0] == 0.0

    def test_concurrent_transfers_to_same_target_serialize_on_nic(self):
        cluster = make_cluster()
        sources = cluster.add_nodes("src", 2)
        target = cluster.add_node("dst")
        finish = []

        def sender(node):
            yield from cluster.network.transfer(node, target, 1000)
            finish.append(cluster.now)

        for node in sources:
            cluster.sim.process(sender(node))
        cluster.run()
        # both spend 1 s on their own NIC in parallel, then queue for 1 s each
        # on the receiver NIC
        assert max(finish) >= 3.0

    def test_network_counters(self):
        cluster = make_cluster()
        a, b = cluster.add_node("a"), cluster.add_node("b")

        def proc():
            yield from cluster.network.transfer(a, b, 123)

        cluster.sim.process(proc())
        cluster.run()
        assert cluster.network.bytes_transferred == 123
        assert cluster.network.messages == 1


class TestDiskModel:
    def test_disk_io_time(self):
        cluster = make_cluster()
        node = cluster.add_node("s0", with_disk=True)
        done = []

        def proc():
            yield from node.disk_io(500)
            done.append(cluster.now)

        cluster.sim.process(proc())
        cluster.run()
        # 0.01 overhead + 500/500 = 1.01
        assert done[0] == pytest.approx(1.01)

    def test_disk_serializes_concurrent_io(self):
        cluster = make_cluster()
        node = cluster.add_node("s0", with_disk=True)
        finish = []

        def proc():
            yield from node.disk_io(500)
            finish.append(cluster.now)

        cluster.sim.process(proc())
        cluster.sim.process(proc())
        cluster.run()
        assert finish == [pytest.approx(1.01), pytest.approx(2.02)]

    def test_diskless_node_io_is_noop(self):
        cluster = make_cluster()
        node = cluster.add_node("c0")
        done = []

        def proc():
            yield from node.disk_io(10_000)
            done.append(cluster.now)
            yield cluster.sim.timeout(0)

        cluster.sim.process(proc())
        cluster.run()
        assert done == [0.0]

    def test_disk_counters_and_utilization(self):
        cluster = make_cluster()
        node = cluster.add_node("s0", with_disk=True)

        def proc():
            yield from node.disk_io(500)

        cluster.sim.process(proc())
        cluster.run()
        assert node.disk.operations == 1
        assert node.disk.bytes_transferred == 500
        assert 0.0 < node.disk.utilization(cluster.now) <= 1.0


class EchoService(Service):
    """Minimal service used to exercise the RPC transport."""

    def __init__(self, node):
        super().__init__(node, "echo")

    def echo(self, value):
        yield self.node.sim.timeout(0.5)
        return ("echo", value)


class TestRpc:
    def test_rpc_round_trip(self):
        cluster = make_cluster()
        client = cluster.add_node("client")
        server = cluster.add_node("server")
        service = EchoService(server)
        result = []

        def proc():
            reply = yield from cluster.rpc.call(client, service, "echo",
                                                100, 100, "hello")
            result.append((reply, cluster.now))

        cluster.sim.process(proc())
        cluster.run()
        reply, finished = result[0]
        assert reply == ("echo", "hello")
        # two transfers (0.201 s each) + 0.5 s handler
        assert finished == pytest.approx(0.902)
        assert service.calls["echo"] == 1
        assert cluster.rpc.total_calls == 1

    def test_rpc_unknown_method_raises(self):
        cluster = make_cluster()
        client = cluster.add_node("client")
        server = cluster.add_node("server")
        service = EchoService(server)

        def proc():
            yield from cluster.rpc.call(client, service, "missing", 1, 1)

        cluster.sim.process(proc())
        with pytest.raises(SimulationError):
            cluster.run()

    def test_stats_aggregate(self):
        cluster = make_cluster()
        client = cluster.add_node("client")
        server = cluster.add_node("server", with_disk=True)
        service = EchoService(server)

        def proc():
            yield from cluster.rpc.call(client, service, "echo", 10, 10, 1)
            yield from server.disk_io(100)

        cluster.sim.process(proc())
        cluster.run()
        stats = cluster.stats()
        assert stats["nodes"] == 2
        assert stats["rpc_calls"] == 1
        assert stats["disk_bytes"] == 100


class ComboService(Service):
    """Handler with positional, defaulted and keyword parameters, to pin
    the batch spec's optional args/kwargs members."""

    def __init__(self, node):
        super().__init__(node, "combo")

    def combine(self, value=0, scale=1, tag=""):
        yield self.node.sim.timeout(0.1)
        return (value * scale, tag)


class TestRpcBatch:
    def _cluster(self, **overrides):
        cluster = make_cluster(**overrides)
        client = cluster.add_node("client")
        service = ComboService(cluster.add_node("server"))
        return cluster, client, service

    def test_batch_specs_of_every_arity_in_call_order(self):
        """REGRESSION: a 6-member spec's kwargs dict used to be splatted
        into ``call`` as a second positional tuple instead of keyword
        arguments, so any batched call relying on keywords broke."""
        cluster, client, service = self._cluster()
        result = []

        def proc():
            replies = yield from cluster.rpc.call_batch(client, [
                (service, "combine", 10, 10),
                (service, "combine", 10, 10, (2,)),
                (service, "combine", 10, 10, (3,), {"scale": 10}),
                (service, "combine", 10, 10, (), {"value": 4, "tag": "kw"}),
            ])
            result.append(replies)

        cluster.sim.process(proc())
        cluster.run()
        assert result[0] == [(0, ""), (2, ""), (30, ""), (4, "kw")]
        assert service.calls["combine"] == 4

    def test_batch_threads_the_trace_parent_into_every_member(self):
        """REGRESSION: every member call's request/response link transfers
        must attach to the one span the caller opened for the fan-out, not
        float parentless."""
        cluster, client, service = self._cluster(tracing=True)

        def proc():
            yield from cluster.rpc.call_batch(client, [
                (service, "combine", 10, 10, (1,)),
                (service, "combine", 10, 10, (2,)),
            ], _trace_parent=777)

        cluster.sim.process(proc())
        cluster.run()
        link_spans = [span for span in cluster.obs.tracer.spans
                      if span.cat == "net"]
        assert link_spans
        assert all(span.parent_id == 777 for span in link_spans)
        # 2 member calls x (request + response) x (tx + rx NIC spans)
        assert len(link_spans) == 8
