"""Regression: the network model shapes *time*, never *bytes*.

Switching ``network_model`` between ``"bottleneck"`` and ``"queued"`` — or
perturbing the queued model's propagation latency with ``network_jitter`` —
must leave every workload result byte-identical.  This pins the RNG scope
split: timing noise draws from the ``network`` scope, so workload-visible
streams (placement, data) are never advanced by it.
"""

from repro.bench.simcore import run_collective_io_point
from repro.cluster.config import ClusterConfig

#: small but contended shape: 16 ranks, interleaved blocks, 4 aggregators,
#: 4 nodes per switch so cross-switch links (the queued model's per-hop
#: machinery) actually carry traffic
SHAPE = dict(num_ranks=16, blocks_per_rank=8, block_size=2048, read_rounds=1,
             num_aggregators=4, num_providers=3, num_metadata_providers=2,
             chunk_size=1024)


def _point(**config_kwargs):
    config_kwargs.setdefault("nodes_per_switch", 4)
    return run_collective_io_point(config=ClusterConfig(**config_kwargs),
                                   **SHAPE)


def test_bottleneck_and_queued_move_identical_bytes():
    bottleneck = _point(network_model="bottleneck")
    queued = _point(network_model="queued")
    assert bottleneck["read_digest"] == queued["read_digest"]
    # ...while genuinely simulating different machinery (per-hop events)
    assert bottleneck["processed_events"] != queued["processed_events"]


def test_jitter_perturbs_timing_but_not_bytes():
    calm = _point(network_model="queued", network_jitter=0.0)
    noisy = _point(network_model="queued", network_jitter=0.3)
    assert calm["read_digest"] == noisy["read_digest"]
    assert calm["sim_elapsed_s"] != noisy["sim_elapsed_s"]


def test_scheduler_choice_changes_nothing_observable():
    calendar = _point(network_model="queued", scheduler="calendar")
    heapq_run = _point(network_model="queued", scheduler="heapq")
    assert calendar["read_digest"] == heapq_run["read_digest"]
    assert calendar["processed_events"] == heapq_run["processed_events"]
    assert calendar["sim_elapsed_s"] == heapq_run["sim_elapsed_s"]
