"""Smoke tests: every shipped example runs to completion and verifies itself.

The examples contain their own assertions (file-content verification,
snapshot-isolation checks), so "runs without raising" is a meaningful check.
Output is captured so the test log stays quiet.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "producer_consumer",
    "ghost_cell_simulation",
    "tile_io_comparison",
    "trace_collective",
    "critpath_report",
    "fuzz_replay",
])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    captured = capsys.readouterr()
    assert captured.out  # every example reports what it did


def test_examples_directory_is_complete():
    present = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart", "ghost_cell_simulation", "tile_io_comparison",
            "producer_consumer"} <= present
