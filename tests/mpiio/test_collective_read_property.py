"""Property tests of aggregated collective reads (seeded-random exploration).

Three layers:

* *vector layer* — raw read ``IOVector``\\ s (overlaps both within a rank's
  vector and across ranks) handed straight to the driver's collective entry
  point; the oracle extracts the same ranges from the known file contents.

* *datatype layer* — random rank counts, resolver counts and per-rank MPI
  datatypes (``Vector`` strides, ``Indexed`` block sets, plain contiguous
  spans) drive ``read_at_all`` through real file views; the oracle flattens
  each rank's view with the same :func:`~repro.mpiio.flatten.
  build_read_vector` the File layer uses.

* *version-pin layer* — collective reads racing a concurrent writer that
  keeps publishing new snapshots.  The invariant: every rank of one
  collective read observes the same single published snapshot (no mixed
  versions across ranks, no torn reads within a rank), and the pins are
  monotone across rounds (a later collective read never travels back in
  time).

Reads never touch the version-manager ticket machinery, which the suites
assert as well.
"""

import random

import pytest

from repro.core.listio import IOVector
from repro.mpi.datatypes import BYTE, Contiguous, Indexed, Vector
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.mpiio.flatten import FileView, build_read_vector
from repro.vstore.client import VectoredClient
from tests.mpiio._collective_testlib import make_quick_deployment

FILE_SIZE = 8 * 1024
CHUNK = 512
PATH = "/read-property"


def make_deployment(seed=1):
    return make_quick_deployment(seed=seed, chunk_size=CHUNK)


def seed_content(cluster, deployment, seed):
    """Publish random contents; returns the in-memory reference bytes."""
    rng = random.Random(seed)
    client = VectoredClient(deployment, cluster.add_node("seeder"),
                            name="seeder")
    content = bytearray(FILE_SIZE)
    writes = []
    for index in range(rng.randint(2, 5)):
        size = rng.randint(100, 1200)
        offset = rng.randrange(0, FILE_SIZE - size)
        payload = bytes([1 + (index * 37 + seed) % 255]) * size
        writes.append((offset, payload))
        content[offset:offset + size] = payload

    def scenario():
        yield from client.create_blob(PATH, FILE_SIZE, chunk_size=CHUNK)
        for offset, payload in writes:
            yield from client.vwrite_and_wait(PATH, [(offset, payload)])

    process = cluster.sim.process(scenario())
    cluster.sim.run(stop_event=process)
    return bytes(content)


def make_driver(deployment, ctx, num_resolvers):
    return VersioningDriver(deployment, ctx.node,
                            rank_name=f"rank{ctx.rank}",
                            write_coalescing=True,
                            collective_buffering=True,
                            collective_aggregators=num_resolvers)


# ----------------------------------------------------------------------
# vector layer (overlaps within and across ranks)
# ----------------------------------------------------------------------
def random_read_vectors(rng, num_ranks):
    """One read vector per rank; ranges overlap freely, even within a rank."""
    vectors = []
    for _rank in range(num_ranks):
        requests = []
        for _index in range(rng.randint(1, 4)):
            size = rng.randint(1, 700)
            offset = rng.randrange(0, FILE_SIZE - size)
            requests.append((offset, size))
        vectors.append(IOVector.for_read(requests))
    return vectors


@pytest.mark.parametrize("seed", range(8))
def test_random_overlapping_read_vectors_match_the_content_oracle(seed):
    rng = random.Random(3000 + seed)
    num_ranks = rng.randint(2, 5)
    num_resolvers = rng.randint(1, num_ranks)
    vectors = random_read_vectors(rng, num_ranks)

    cluster, deployment = make_deployment(seed)
    content = seed_content(cluster, deployment, seed)
    expected = [vector.extract_from(content) for vector in vectors]

    def rank_main(ctx):
        driver = make_driver(deployment, ctx, num_resolvers)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        # below the File layer: hand the raw overlapping vector to the
        # driver's collective entry point
        pieces = yield from driver.read_vector_all(
            PATH, vectors[ctx.rank], atomic=False, rank=ctx.rank,
            comm=ctx.comm)
        yield from handle.close()
        return pieces

    result = run_mpi_job(cluster, num_ranks, rank_main)
    assert result.results == expected, (
        f"seed {seed}: {num_ranks} ranks / {num_resolvers} resolvers")
    # reads never touch the ticket machinery
    manager = deployment.version_manager.manager
    assert manager.pending_versions(PATH) == []
    assert manager.tickets_aborted == 0


# ----------------------------------------------------------------------
# datatype layer
# ----------------------------------------------------------------------
def random_view_and_size(rng):
    """A random file view plus a read size filling its accessible bytes."""
    kind = rng.choice(["vector", "indexed", "contiguous"])
    displacement = rng.randrange(0, FILE_SIZE // 4)
    if kind == "vector":
        count = rng.randint(1, 5)
        blocklength = rng.randint(1, 96)
        stride = blocklength + rng.randint(0, 128)
        filetype = Vector(count, blocklength, stride, base=BYTE)
    elif kind == "indexed":
        count = rng.randint(1, 4)
        starts = sorted(rng.sample(range(0, 1024), count))
        lengths = []
        for index, start in enumerate(starts):
            limit = starts[index + 1] - start if index + 1 < count else 200
            lengths.append(rng.randint(1, max(1, min(200, limit))))
        filetype = Indexed(lengths, starts, base=BYTE)
    else:
        filetype = Contiguous(rng.randint(1, 256), base=BYTE)
    view = FileView(displacement=displacement, etype=BYTE, filetype=filetype)
    size = filetype.size * rng.randint(1, 3)
    return view, size


@pytest.mark.parametrize("seed", range(8))
def test_random_datatype_collective_reads_match_the_flattened_oracle(seed):
    rng = random.Random(4000 + seed)
    num_ranks = rng.randint(2, 6)
    num_resolvers = rng.randint(1, num_ranks)

    views = []
    for _rank in range(num_ranks):
        while True:
            view, size = random_view_and_size(rng)
            vector = build_read_vector(view, 0, size)
            if vector.covering_extent().end <= FILE_SIZE:
                break
        views.append((view, size, vector))

    cluster, deployment = make_deployment(seed)
    content = seed_content(cluster, deployment, seed + 100)
    expected = [b"".join(vector.extract_from(content))
                for _view, _size, vector in views]

    def rank_main(ctx):
        driver = make_driver(deployment, ctx, num_resolvers)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        view, size, _vector = views[ctx.rank]
        handle.view = view
        data = yield from handle.read_at_all(0, size)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, num_ranks, rank_main)
    assert result.results == expected, (
        f"seed {seed}: {num_ranks} ranks / {num_resolvers} resolvers")


# ----------------------------------------------------------------------
# version-pin layer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_all_ranks_of_one_collective_read_observe_one_snapshot(seed):
    """Collective reads racing a publishing writer: each round's results are
    identical across ranks, equal to exactly one published version's
    contents, and the pinned versions never move backwards."""
    rng = random.Random(5000 + seed)
    num_ranks = rng.randint(2, 4)
    num_resolvers = rng.randint(1, num_ranks)
    rounds = 4
    num_versions = 6

    cluster, deployment = make_deployment(seed)
    writer = VectoredClient(deployment, cluster.add_node("writer"),
                            name="writer")

    # contents at every version, known ahead of time
    states = [bytes(FILE_SIZE)]
    writes = []
    content = bytearray(FILE_SIZE)
    for version in range(1, num_versions + 1):
        size = rng.randint(200, 900)
        offset = rng.randrange(0, FILE_SIZE - size)
        payload = bytes([version * 17 % 255 or 1]) * size
        writes.append((offset, payload))
        content[offset:offset + size] = payload
        states.append(bytes(content))

    def create():
        yield from writer.create_blob(PATH, FILE_SIZE, chunk_size=CHUNK)

    process = cluster.sim.process(create())
    cluster.sim.run(stop_event=process)

    def publisher():
        for offset, payload in writes:
            yield cluster.sim.timeout(0.003)
            yield from writer.vwrite_and_wait(PATH, [(offset, payload)])

    def rank_main(ctx):
        driver = make_driver(deployment, ctx, num_resolvers)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        if ctx.rank == 0:
            ctx.sim.process(publisher(), name="publisher")
        observed = []
        for _round in range(rounds):
            yield ctx.sim.timeout(0.002)
            # sync drops the one-shot hint so every round re-pins at the
            # writer's current watermark instead of round 1's
            yield from handle.sync()
            data = yield from handle.read_at_all(0, FILE_SIZE)
            observed.append(data)
        yield from handle.close()
        return observed

    result = run_mpi_job(cluster, num_ranks, rank_main)
    previous_version = 0
    for round_index in range(rounds):
        round_results = [observed[round_index]
                         for observed in result.results]
        # one snapshot for the whole group
        assert all(data == round_results[0] for data in round_results), (
            f"seed {seed} round {round_index}: ranks observed mixed versions")
        # ... and it is a *published* snapshot, not a torn mix
        assert round_results[0] in states, (
            f"seed {seed} round {round_index}: snapshot matches no version")
        version = states.index(round_results[0])
        assert version >= previous_version, (
            f"seed {seed} round {round_index}: pinned version went backwards")
        previous_version = version
