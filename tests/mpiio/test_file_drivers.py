"""Integration tests: the MPI-I/O File layer over every ADIO driver."""

import pytest

from repro.bench.environment import BACKENDS, build_environment
from repro.cluster import ClusterConfig
from repro.core.atomicity import VectoredWrite, check_mpi_atomicity
from repro.core.listio import IOVector
from repro.errors import MPIIOError
from repro.mpi.datatypes import BYTE, Indexed, Subarray
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.file import AccessMode, File


QUICK = ClusterConfig(network_latency=1e-5, disk_overhead=1e-4)
FILE_SIZE = 64 * 1024


def make_environment(backend, **kwargs):
    kwargs.setdefault("num_storage_nodes", 3)
    kwargs.setdefault("stripe_unit", 4096)
    kwargs.setdefault("config", QUICK)
    return build_environment(backend, **kwargs)


ATOMIC_BACKENDS = ["versioning", "posix-locking", "posix-listlock", "conflict-detect"]


class TestSingleRankRoundtrip:
    @pytest.mark.parametrize("backend", list(BACKENDS))
    def test_contiguous_write_read(self, backend):
        environment = make_environment(backend)

        def rank_main(ctx):
            driver = environment.driver_factory(ctx)
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            yield from handle.write_at(100, b"hello world")
            data = yield from handle.read_at(100, 11)
            size = yield from handle.get_size()
            yield from handle.close()
            return data, size

        result = run_mpi_job(environment.cluster, 1, rank_main)
        data, size = result.results[0]
        assert data == b"hello world"
        assert size >= 111 or backend == "versioning"

    @pytest.mark.parametrize("backend", ["versioning", "posix-locking"])
    def test_noncontiguous_view_roundtrip(self, backend):
        environment = make_environment(backend)
        filetype = Indexed([4, 4, 4], [0, 100, 200], base=BYTE)

        def rank_main(ctx):
            driver = environment.driver_factory(ctx)
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            handle.set_view(displacement=1000, filetype=filetype)
            yield from handle.write_at(0, b"AAAABBBBCCCC")
            data = yield from handle.read_at(0, 12)
            yield from handle.close()
            return data

        result = run_mpi_job(environment.cluster, 1, rank_main)
        assert result.results[0] == b"AAAABBBBCCCC"

    def test_write_on_readonly_file_rejected(self):
        environment = make_environment("versioning")

        def rank_main(ctx):
            driver = environment.driver_factory(ctx)
            handle = yield from File.open(driver, "/f",
                                          AccessMode.RDONLY | AccessMode.CREATE,
                                          rank=ctx.rank, comm=ctx.comm,
                                          size_hint=FILE_SIZE)
            yield from handle.write_at(0, b"nope")

        with pytest.raises(MPIIOError):
            run_mpi_job(environment.cluster, 1, rank_main)

    def test_access_on_closed_file_rejected(self):
        environment = make_environment("versioning")

        def rank_main(ctx):
            driver = environment.driver_factory(ctx)
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            yield from handle.close()
            yield from handle.read_at(0, 4)

        with pytest.raises(MPIIOError):
            run_mpi_job(environment.cluster, 1, rank_main)

    def test_versioning_open_requires_size_hint(self):
        environment = make_environment("versioning")

        def rank_main(ctx):
            driver = environment.driver_factory(ctx)
            yield from File.open(driver, "/f", rank=ctx.rank, comm=ctx.comm,
                                 size_hint=0)

        with pytest.raises(MPIIOError):
            run_mpi_job(environment.cluster, 1, rank_main)

    def test_atomicity_flag_roundtrip(self):
        environment = make_environment("versioning")

        def rank_main(ctx):
            driver = environment.driver_factory(ctx)
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            before = handle.get_atomicity()
            handle.set_atomicity(True)
            after = handle.get_atomicity()
            yield from handle.close()
            return before, after

        result = run_mpi_job(environment.cluster, 1, rank_main)
        assert result.results[0] == (False, True)


def concurrent_overlapping_job(environment, num_ranks, atomic, stagger=False):
    """All ranks write overlapping non-contiguous regions; returns final file."""
    # every rank writes two regions; region k of rank r overlaps region k of
    # ranks r-1/r+1; odd ranks write their regions in reverse order so that a
    # non-atomic backend interleaves them visibly
    region_size = 512
    shift = 256

    def pairs_for(rank):
        fill = bytes([65 + rank])
        pairs = [(slot * 4096 + rank * shift, fill * region_size)
                 for slot in range(4)]
        return list(reversed(pairs)) if (stagger and rank % 2) else pairs

    def rank_main(ctx):
        driver = environment.driver_factory(ctx)
        handle = yield from File.open(driver, "/shared", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        handle.set_atomicity(atomic)
        pairs = pairs_for(ctx.rank)
        lengths = [len(data) for _, data in pairs]
        displs = [offset for offset, _ in pairs]
        handle.set_view(filetype=Indexed(lengths, displs, base=BYTE))
        yield from ctx.comm.barrier(ctx.rank)
        yield from handle.write_at_all(0, b"".join(data for _, data in pairs))
        yield from ctx.comm.barrier(ctx.rank)
        data = b""
        if ctx.rank == 0:
            handle.set_view()  # reset to a plain byte view
            data = yield from handle.read_at(0, FILE_SIZE)
        yield from handle.close()
        return data

    result = run_mpi_job(environment.cluster, num_ranks, rank_main)
    observed = result.results[0]
    writes = [VectoredWrite(rank, IOVector.for_write(pairs_for(rank)))
              for rank in range(num_ranks)]
    return observed, writes


class TestConcurrentAtomicity:
    @pytest.mark.parametrize("backend", ATOMIC_BACKENDS)
    def test_atomic_mode_is_mpi_atomic(self, backend):
        environment = make_environment(backend)
        observed, writes = concurrent_overlapping_job(environment, 4, atomic=True,
                                                      stagger=True)
        assert check_mpi_atomicity(b"\x00" * FILE_SIZE, writes, observed)

    def test_nolock_driver_never_locks(self):
        """Failure injection: the nolock driver ignores atomic mode entirely."""
        environment = make_environment("nolock")
        observed, writes = concurrent_overlapping_job(environment, 4, atomic=True,
                                                      stagger=True)
        # no fcntl (MPI-I/O layer) locks were ever requested
        stats = environment.storage_stats()
        fcntl_locks = sum(
            1
            for ost in environment.deployment.osts
            for file_id in ("fcntl:/shared",)
            for _ in ost.locks.manager.held_locks(file_id)
        )
        assert fcntl_locks == 0
        assert stats["locks_granted"] > 0  # only the per-write POSIX locks

    def test_posix_backend_without_mpiio_locks_can_violate_atomicity(self):
        """Failure injection: interleaved multi-region writes on the POSIX
        backend are *not* MPI-atomic — the gap the locking drivers must close
        and the versioning backend closes by design.

        The interleaving is forced deterministically: two clients write the
        same two regions in opposite orders with a pause in between, so each
        region ends up with a different "last writer" — a state no serial
        order of the two vectored writes can produce.
        """
        from repro.cluster import Cluster
        from repro.posixfs import PosixFsDeployment

        cluster = Cluster(config=QUICK)
        deployment = PosixFsDeployment(cluster, num_osts=2,
                                       default_stripe_size=4096)
        clients = [deployment.client(node) for node in cluster.add_nodes("c", 2)]
        region_a, region_b = (0, 512), (8192, 512)
        pairs = {
            0: [(region_a[0], b"A" * 512), (region_b[0], b"A" * 512)],
            1: [(region_b[0], b"B" * 512), (region_a[0], b"B" * 512)],
        }

        def writer(client, my_pairs):
            for index, (offset, data) in enumerate(my_pairs):
                yield from client.write("/shared", offset, data)
                yield cluster.sim.timeout(0.5)  # let the other writer interleave

        def scenario():
            yield from clients[0].create("/shared", stripe_size=4096)
            procs = [cluster.sim.process(writer(clients[rank], pairs[rank]))
                     for rank in range(2)]
            yield cluster.sim.all_of(procs)
            content = yield from clients[0].read("/shared", 0, FILE_SIZE)
            return content

        process = cluster.sim.process(scenario())
        observed = cluster.sim.run(stop_event=process)
        writes = [VectoredWrite(rank, IOVector.for_write(pairs[rank]))
                  for rank in range(2)]
        assert not check_mpi_atomicity(b"\x00" * FILE_SIZE, writes, observed)

    @pytest.mark.parametrize("backend", ["versioning", "posix-locking"])
    def test_disjoint_writes_any_mode(self, backend):
        environment = make_environment(backend)

        def rank_main(ctx):
            driver = environment.driver_factory(ctx)
            handle = yield from File.open(driver, "/shared", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            yield from handle.write_at(ctx.rank * 1024, bytes([65 + ctx.rank]) * 1024)
            yield from ctx.comm.barrier(ctx.rank)
            data = b""
            if ctx.rank == 0:
                data = yield from handle.read_at(0, 4 * 1024)
            yield from handle.close()
            return data

        result = run_mpi_job(environment.cluster, 4, rank_main)
        content = result.results[0]
        for rank in range(4):
            assert content[rank * 1024:(rank + 1) * 1024] == bytes([65 + rank]) * 1024

    def test_conflict_detect_skips_locks_when_disjoint(self):
        environment = make_environment("conflict-detect")
        drivers = []

        def rank_main(ctx):
            driver = environment.driver_factory(ctx)
            drivers.append(driver)
            handle = yield from File.open(driver, "/shared", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            handle.set_atomicity(True)
            pairs = [(ctx.rank * 2048, b"x" * 512), (ctx.rank * 2048 + 1024, b"y" * 512)]
            lengths = [512, 512]
            displs = [offset for offset, _ in pairs]
            handle.set_view(filetype=Indexed(lengths, displs, base=BYTE))
            yield from handle.write_at_all(0, b"x" * 512 + b"y" * 512)
            yield from handle.close()

        run_mpi_job(environment.cluster, 3, rank_main)
        assert sum(driver.locks_skipped for driver in drivers) == 3
        assert sum(driver.locks_taken for driver in drivers) == 0

    def test_conflict_detect_locks_when_overlapping(self):
        environment = make_environment("conflict-detect")
        observed, writes = concurrent_overlapping_job(environment, 3, atomic=True)
        assert check_mpi_atomicity(b"\x00" * FILE_SIZE, writes, observed)
