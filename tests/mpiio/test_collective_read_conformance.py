"""Collective-read conformance suite: two read modes, one byte result.

The acceptance gate of the aggregated collective-read path.  The same
randomized noncontiguous read pattern — per-rank region sets that overlap
*across* ranks — is executed through two independent paths against the same
published file contents:

* ``independent`` — every rank resolves its own regions (PR 1's read path:
  a ``latest`` round-trip plus its own segment-tree walk per rank);
* ``collective``  — one ``read_at_all`` through aggregated metadata
  resolution (version pin + resolver stripes + ``alltoallv`` scatter).

Both must produce byte-identical results, which must also equal the pure
in-memory extraction from the serially-written reference contents — the
semantics :class:`repro.mpiio.adio.collective.CollectiveReader` promises.
The suite additionally pins the protocol's contracts: reads concurrent with
queued (unflushed) writes observe them, reads across versions track every
collective write round, empty vectors participate, atomic mode bypasses,
non-resolver ranks spend zero metadata control RPCs, and the plan broadcast
leaves every rank's cache warm.
"""

import random

import pytest

from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.collective import aggregator_ranks
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.vstore.client import VectoredClient
from tests._oracle import random_pattern, rank_view, serial_oracle
from tests.mpiio._collective_testlib import make_quick_deployment

FILE_SIZE = 16 * 1024
CHUNK = 1024
PATH = "/read-conformance"


# ----------------------------------------------------------------------
# pattern generation and the in-memory oracle
# ----------------------------------------------------------------------
def random_read_pattern(seed, num_ranks, file_size=FILE_SIZE, max_regions=4,
                        max_region_size=1500, empty_rank_chance=0.2):
    """Per-rank ``(offset, size)`` lists: disjoint within a rank, freely
    overlapping across ranks, with occasional empty-handed ranks."""
    rng = random.Random(seed)
    pattern = []
    for _rank in range(num_ranks):
        if num_ranks > 1 and rng.random() < empty_rank_chance:
            pattern.append([])
            continue
        count = rng.randint(1, max_regions)
        starts = sorted(rng.sample(range(file_size - max_region_size), count))
        regions = []
        for index, offset in enumerate(starts):
            limit = (starts[index + 1] - offset if index + 1 < count
                     else max_region_size)
            size = rng.randint(1, max(1, min(max_region_size, limit)))
            regions.append((offset, size))
        pattern.append(regions)
    return pattern


def expected_reads(content, read_pattern):
    """What every rank must see: its regions extracted from ``content``."""
    return [b"".join(content[offset:offset + size]
                     for offset, size in regions)
            for regions in read_pattern]


def read_view(regions):
    """Indexed filetype + total size for one rank's disjoint read regions."""
    blocklengths = [size for _offset, size in regions]
    displacements = [offset for offset, _size in regions]
    total = sum(blocklengths)
    return Indexed(blocklengths, displacements, base=BYTE), total


def make_deployment(seed=3, network_model="bottleneck"):
    return make_quick_deployment(seed=seed, chunk_size=CHUNK,
                                 network_model=network_model)


def seed_content(cluster, deployment, write_pattern):
    """Publish the reference contents serially (rank order), one client."""
    client = VectoredClient(deployment, cluster.add_node("seeder"),
                            name="seeder")

    def scenario():
        yield from client.create_blob(PATH, FILE_SIZE, chunk_size=CHUNK)
        for regions in write_pattern:
            if regions:
                yield from client.vwrite_and_wait(PATH, regions)

    process = cluster.sim.process(scenario())
    cluster.sim.run(stop_event=process)
    return serial_oracle(write_pattern, FILE_SIZE)


# ----------------------------------------------------------------------
# the two read modes
# ----------------------------------------------------------------------
def run_read_job(read_pattern, *, collective, num_resolvers=None,
                 content_seed=11, network_model="bottleneck"):
    """Seed contents, then read them through one MPI job; returns results."""
    num_ranks = len(read_pattern)
    cluster, deployment = make_deployment(network_model=network_model)
    write_pattern = random_pattern(content_seed, num_ranks,
                                   empty_rank_chance=0.0)
    content = seed_content(cluster, deployment, write_pattern)
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_reads=collective,
                                  collective_aggregators=num_resolvers)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        regions = read_pattern[ctx.rank]
        if regions:
            filetype, total = read_view(regions)
            handle.set_view(0, BYTE, filetype)
            data = yield from handle.read_at_all(0, total)
        else:
            data = yield from handle.read_at_all(0, 0)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, num_ranks, rank_main)
    return result.results, content, drivers, deployment


# ----------------------------------------------------------------------
# the conformance gate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
@pytest.mark.parametrize("num_ranks,num_resolvers", [
    (2, 1), (3, 2), (4, 2), (5, 3), (4, 4),
])
def test_both_read_modes_produce_identical_bytes(seed, num_ranks,
                                                 num_resolvers):
    read_pattern = random_read_pattern(seed * 103 + num_ranks, num_ranks)
    content_seed = seed * 31 + num_ranks

    independent, content, _drivers, _deployment = run_read_job(
        read_pattern, collective=False, content_seed=content_seed)
    collective, content2, _drivers2, _deployment2 = run_read_job(
        read_pattern, collective=True, num_resolvers=num_resolvers,
        content_seed=content_seed)

    assert content == content2
    expected = expected_reads(content, read_pattern)
    assert independent == expected, "independent read mode diverged"
    assert collective == expected, "collective read mode diverged"


@pytest.mark.parametrize("seed,num_ranks,num_resolvers", [
    (9, 3, 2), (27, 4, 2), (55, 5, 3),
])
def test_read_modes_conform_under_queued_network(seed, num_ranks,
                                                 num_resolvers):
    """The same gate under ``network_model="queued"``: link queues and
    switch tiers change timing only — both read modes still return exactly
    the seeded bytes."""
    read_pattern = random_read_pattern(seed * 103 + num_ranks, num_ranks)
    content_seed = seed * 31 + num_ranks

    independent, content, _drivers, _deployment = run_read_job(
        read_pattern, collective=False, content_seed=content_seed,
        network_model="queued")
    collective, content2, _drivers2, _deployment2 = run_read_job(
        read_pattern, collective=True, num_resolvers=num_resolvers,
        content_seed=content_seed, network_model="queued")

    assert content == content2
    expected = expected_reads(content, read_pattern)
    assert independent == expected
    assert collective == expected


def test_reads_concurrent_with_queued_writes_observe_them():
    """Every rank queues (unflushed) writes, then the group reads
    collectively: phase 0 publishes each rank's own queue and the version
    pin covers every rank's publication, so all queued data is visible."""
    num_ranks = 4
    cluster, deployment = make_deployment()
    write_pattern = random_pattern(5, num_ranks, empty_rank_chance=0.0)
    content = bytearray(seed_content(cluster, deployment, write_pattern))
    # disjoint per-rank queued writes (cross-rank publication order is
    # timing-dependent, so overlap determinism is pinned elsewhere)
    queued = {rank: (rank * 700, bytes([200 + rank]) * 600)
              for rank in range(num_ranks)}
    for rank, (offset, payload) in queued.items():
        content[offset:offset + len(payload)] = payload

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=2)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        offset, payload = queued[ctx.rank]
        yield from handle.write_at(offset, payload)
        assert driver.client.coalescer.pending_writes(PATH) == 1
        data = yield from handle.read_at_all(0, FILE_SIZE)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, num_ranks, rank_main)
    assert all(data == bytes(content) for data in result.results)


def test_reads_across_versions_track_every_collective_round():
    """Alternating collective writes and collective reads: every read round
    observes exactly the oracle state after the preceding writes."""
    num_ranks = 4
    cluster, deployment = make_deployment()
    oracle = bytearray(FILE_SIZE)
    rounds = []
    for round_index in range(3):
        pattern = random_pattern(round_index + 50, num_ranks,
                                 empty_rank_chance=0.0)
        state = bytearray(oracle)
        for regions in pattern:
            for offset, payload in regions:
                state[offset:offset + len(payload)] = payload
        oracle = state
        rounds.append((pattern, bytes(state)))

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=2)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        observed = []
        for pattern, _expected in rounds:
            filetype, payload = rank_view(pattern[ctx.rank])
            handle.set_view(0, BYTE, filetype)
            yield from handle.write_at_all(0, payload)
            handle.set_view(0, BYTE, BYTE)
            data = yield from handle.read_at_all(0, FILE_SIZE)
            observed.append(data)
        yield from handle.close()
        return observed

    result = run_mpi_job(cluster, num_ranks, rank_main)
    for observed in result.results:
        for round_index, (_pattern, expected) in enumerate(rounds):
            assert observed[round_index] == expected, f"round {round_index}"


def test_collectively_empty_read_is_a_no_op():
    cluster, deployment = make_deployment()
    seed_content(cluster, deployment, random_pattern(7, 2,
                                                     empty_rank_chance=0.0))
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  collective_buffering=True)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        data = yield from handle.read_at_all(0, 0)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, 3, rank_main)
    assert result.results == [b"", b"", b""]
    # the group still participated collectively — nobody read independently
    for driver in drivers.values():
        assert driver.reader.stats.collectives == 1
        assert driver.client.metadata_read_rpcs == 0


def test_empty_vector_ranks_participate_alongside_readers():
    """MPI requires every rank to enter a collective; ranks whose view maps
    to nothing must still exchange (and receive nothing)."""
    num_ranks = 4
    read_pattern = [[(0, 1024)], [], [(512, 2048)], []]
    results, content, drivers, _deployment = run_read_job(
        read_pattern, collective=True, num_resolvers=2)
    assert results == expected_reads(content, read_pattern)
    assert all(driver.reader.stats.collectives == 1
               for driver in drivers.values())
    assert num_ranks == len(drivers)


def test_atomic_mode_reads_bypass_aggregation():
    """An atomic read must ask for the true latest on every rank; the pinned
    group version of the collective path is bypassed entirely."""
    num_ranks = 3
    read_pattern = [[(0, 2048)] for _rank in range(num_ranks)]
    cluster, deployment = make_deployment()
    content = seed_content(cluster, deployment,
                           random_pattern(9, num_ranks,
                                          empty_rank_chance=0.0))
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  collective_buffering=True,
                                  collective_aggregators=1)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        handle.set_atomicity(True)
        data = yield from handle.read_at_all(0, 2048)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, num_ranks, rank_main)
    assert all(data == content[:2048] for data in result.results)
    for driver in drivers.values():
        assert driver.reader.stats.collectives == 0
        # every rank resolved independently (one latest RPC each)
        assert driver.client.latest_rpcs == 1


def test_non_resolver_ranks_spend_zero_metadata_control_rpcs():
    """The acceptance criterion's control-plane half: aggregation
    concentrates the read-side metadata traffic on the resolvers."""
    num_ranks, num_resolvers = 6, 2
    read_pattern = random_read_pattern(13, num_ranks, empty_rank_chance=0.0)
    results, content, drivers, _deployment = run_read_job(
        read_pattern, collective=True, num_resolvers=num_resolvers)
    assert results == expected_reads(content, read_pattern)
    owners = set(aggregator_ranks(num_ranks, num_resolvers))
    for rank, driver in drivers.items():
        client = driver.client
        if rank not in owners:
            assert client.metadata_read_rpcs == 0
            assert client.latest_rpcs == 0
        # no rank but the lead resolver ever asks for ``latest``
        if rank != min(owners):
            assert client.latest_rpcs == 0


def test_collective_read_skips_the_redundant_closing_barrier():
    """The reader protocol ends in a group-wide exchange; the File layer
    must not charge a second rendezvous on top of it."""
    num_ranks = 2
    cluster, deployment = make_deployment()
    content = seed_content(cluster, deployment,
                           random_pattern(15, num_ranks,
                                          empty_rank_chance=0.0))
    comms = []

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  collective_buffering=True,
                                  collective_aggregators=1)
        if ctx.rank == 0:
            comms.append(ctx.comm)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        data = yield from handle.read_at_all(0, 4096)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, num_ranks, rank_main)
    assert all(data == content[:4096] for data in result.results)
    # open barrier (1) + describe allgather + data alltoallv + closing
    # allgather (3) — and nothing else
    assert comms[0].collectives_completed == 4
    assert comms[0].bytes_moved > 0


def test_plan_broadcast_leaves_every_cache_warm():
    """After one collective read, every rank's next *independent* read of
    any collectively-covered region costs zero metadata RPCs: the absorbed
    plan answers the tree walk and the refreshed hint elides ``latest``."""
    num_ranks = 4
    cluster, deployment = make_deployment()
    content = seed_content(cluster, deployment,
                           random_pattern(17, num_ranks,
                                          empty_rank_chance=0.0))
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  collective_buffering=True,
                                  collective_aggregators=2)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        collective = yield from handle.read_at_all(0, FILE_SIZE)
        before = (driver.client.metadata_read_rpcs, driver.client.latest_rpcs)
        again = yield from handle.read_at(ctx.rank * 1024, 2048)
        after = (driver.client.metadata_read_rpcs, driver.client.latest_rpcs)
        yield from handle.close()
        return collective, again, before, after

    result = run_mpi_job(cluster, num_ranks, rank_main)
    for rank, (collective, again, before, after) in enumerate(result.results):
        assert collective == content
        assert again == content[rank * 1024:rank * 1024 + 2048]
        assert after == before, f"rank {rank} spent RPCs on a warm read"
    for driver in drivers.values():
        assert driver.client.plan_nodes_absorbed > 0
