"""Fault injection on the collective read path.

A resolver is the one rank of a collective read that talks to the storage
back-end, so its death is the interesting failure.  Windows:

* *mid-fetch* — the resolver dies resolving/fetching its stripe (a dead
  metadata shard or data provider under it).  It must enter the data
  exchange empty-handed and report through the closing phase: every rank
  raises instead of hanging, no rank's cache is populated from the partial
  plan, and the version-manager state is untouched (reads own no tickets).

* *mid-broadcast* — the resolver dies between the opening exchange and the
  scatter (partition/stripe-cutting work).  Same containment contract.

* *pre-exchange* — a rank dies before the opening exchange (its phase-0
  flush or resolver-count resolution fails).  The collective aborts on
  every rank before any metadata work happens.

* *non-resolver death* — a bystander rank can fail too (its descriptor
  fetch); the resolvers' work must not strand anyone.

In every case the group must make progress afterwards: once the fault
heals, the same ranks run a fresh collective read that succeeds — and a
stale read hint never survives a failed collective.
"""

import pytest

from repro.errors import StorageError
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.collective import aggregator_ranks
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.vstore.client import VectoredClient
from tests.mpiio._collective_testlib import make_quick_deployment

FILE_SIZE = 16 * 1024
CHUNK = 1024
PATH = "/read-faulty"
NUM_RANKS = 4
NUM_RESOLVERS = 2
#: with 4 ranks and 2 resolvers the owners are ranks 0 and 2
DOOMED_RANK = aggregator_ranks(NUM_RANKS, NUM_RESOLVERS)[1]
#: a rank that never resolves anything
BYSTANDER_RANK = 1


def make_deployment():
    return make_quick_deployment(seed=21, chunk_size=CHUNK)


def seed_content(cluster, deployment):
    client = VectoredClient(deployment, cluster.add_node("seeder"),
                            name="seeder")
    content = bytearray(FILE_SIZE)
    for block in range(0, FILE_SIZE // 1024):
        payload = bytes([40 + block % 100]) * 1024
        content[block * 1024:(block + 1) * 1024] = payload

    def scenario():
        yield from client.create_blob(PATH, FILE_SIZE, chunk_size=CHUNK)
        yield from client.vwrite_and_wait(PATH, [(0, bytes(content))])

    process = cluster.sim.process(scenario())
    cluster.sim.run(stop_event=process)
    return bytes(content)


def run_collective_read_with_sabotage(sabotage, heal):
    """One failing collective read, then a healed retry on the same ranks.

    ``sabotage(rank, driver)`` breaks ranks before the first read;
    ``heal(rank, driver)`` repairs them before the retry.  Returns the
    cluster, content, drivers, per-rank first-read outcomes, per-rank
    mid-job cache observations and the retry results.
    """
    cluster, deployment = make_deployment()
    content = seed_content(cluster, deployment)
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=NUM_RESOLVERS)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        sabotage(ctx.rank, driver)
        outcome = "ok"
        try:
            yield from handle.read_at_all(0, FILE_SIZE)
        except Exception as exc:
            outcome = type(exc).__name__
        # observed *between* the failed collective and the healed retry:
        # nothing of the partial plan may have reached this rank's cache
        cache_state = (len(driver.client.metadata_cache),
                       driver.client.plan_nodes_absorbed,
                       PATH in driver.client._read_hints)
        yield from ctx.comm.barrier(ctx.rank)
        heal(ctx.rank, driver)
        data = yield from handle.read_at_all(0, FILE_SIZE)
        yield from handle.close()
        return outcome, cache_state, data

    result = run_mpi_job(cluster, NUM_RANKS, rank_main)
    outcomes = [entry[0] for entry in result.results]
    cache_states = [entry[1] for entry in result.results]
    retries = [entry[2] for entry in result.results]
    return cluster, deployment, content, drivers, outcomes, cache_states, \
        retries


def assert_contained_failure(deployment, content, outcomes, cache_states,
                             retries, doomed=DOOMED_RANK,
                             doomed_error="StorageError"):
    """The shared containment contract of every injected fault."""
    assert outcomes[doomed] == doomed_error
    assert all(outcome != "ok" for outcome in outcomes)
    # caches were not poisoned with the partial plan, hints did not survive
    healthy_resolvers = set(aggregator_ranks(NUM_RANKS, NUM_RESOLVERS)) \
        - {doomed}
    for rank, (cache_len, absorbed, hint_pending) in enumerate(cache_states):
        assert absorbed == 0, f"rank {rank} absorbed a partial plan"
        assert not hint_pending, f"rank {rank} kept a hint past the failure"
        if rank not in healthy_resolvers:
            # only a surviving resolver's own traversal may have cached
            assert cache_len == 0, f"rank {rank} cached partial-plan nodes"
    # reads own no tickets: the version manager never saw the failure
    manager = deployment.version_manager.manager
    assert manager.pending_versions(PATH) == []
    assert manager.tickets_aborted == 0
    # the healed retry succeeds for everyone — no lasting damage
    assert all(data == content for data in retries)


class TestResolverDiesMidFetch:
    def _sabotage(self, rank, driver):
        if rank != DOOMED_RANK:
            return

        def dying_read(blob_id, vector, version=None, trace=None, holes=None):
            raise StorageError("resolver died mid-fetch")
            yield  # pragma: no cover - generator shape

        driver.client._vectored_read = dying_read

    def _heal(self, rank, driver):
        if rank == DOOMED_RANK:
            del driver.client._vectored_read

    def test_no_peer_hangs_and_caches_stay_clean(self):
        _cluster, deployment, content, _drivers, outcomes, cache_states, \
            retries = run_collective_read_with_sabotage(self._sabotage,
                                                        self._heal)
        assert_contained_failure(deployment, content, outcomes, cache_states,
                                 retries)


class TestResolverDiesMidBroadcast:
    def _sabotage(self, rank, driver):
        if rank != DOOMED_RANK:
            return

        def dying_stripe(*args, **kwargs):
            raise StorageError("resolver died mid-broadcast")
            yield  # pragma: no cover - generator shape

        driver.reader._resolve_stripe = dying_stripe

    def _heal(self, rank, driver):
        if rank == DOOMED_RANK:
            del driver.reader._resolve_stripe

    def test_survivors_raise_instead_of_blocking(self):
        _cluster, deployment, content, _drivers, outcomes, cache_states, \
            retries = run_collective_read_with_sabotage(self._sabotage,
                                                        self._heal)
        assert_contained_failure(deployment, content, outcomes, cache_states,
                                 retries)


class TestNonResolverDies:
    def _sabotage(self, rank, driver):
        if rank != BYSTANDER_RANK:
            return

        def dying_descriptor(blob_id):
            raise StorageError("bystander died mid-collective")
            yield  # pragma: no cover - generator shape

        driver.client._descriptor = dying_descriptor

    def _heal(self, rank, driver):
        if rank == BYSTANDER_RANK:
            del driver.client._descriptor

    def test_bystander_failure_reports_on_every_rank(self):
        _cluster, deployment, content, _drivers, outcomes, cache_states, \
            retries = run_collective_read_with_sabotage(
                self._sabotage, self._heal)
        assert_contained_failure(deployment, content, outcomes, cache_states,
                                 retries, doomed=BYSTANDER_RANK)


class TestPreExchangeDeath:
    def _sabotage(self, rank, driver):
        if rank != DOOMED_RANK:
            return

        def dying_count(size):
            raise StorageError("pre-exchange death")

        driver.reader.resolved_count = dying_count

    def _heal(self, rank, driver):
        if rank == DOOMED_RANK:
            del driver.reader.resolved_count

    def test_collective_aborts_before_any_metadata_work(self):
        _cluster, deployment, content, drivers, outcomes, cache_states, \
            retries = run_collective_read_with_sabotage(self._sabotage,
                                                        self._heal)
        assert_contained_failure(deployment, content, outcomes, cache_states,
                                 retries)
        # nobody resolved anything: the abort happened at the opening phase
        for driver in drivers.values():
            assert driver.reader.stats.stripes_resolved <= 1  # retry only


def test_invalid_resolver_count_fails_at_construction():
    """A bad setting must die before any collective is entered — one rank
    failing mid-protocol would strand its peers."""
    from repro.errors import MPIIOError
    cluster, deployment = make_deployment()
    with pytest.raises(MPIIOError):
        VersioningDriver(deployment, cluster.add_node("bad"),
                         collective_buffering=True,
                         collective_aggregators=0)


def test_failed_collective_read_drops_a_planted_hint():
    """A hint planted by an earlier successful collective must not survive a
    failed collective read on any rank: a peer's phase-0 barrier may have
    published in the window, so the next default read must round-trip."""
    cluster, deployment = make_deployment()
    content = seed_content(cluster, deployment)
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=NUM_RESOLVERS)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        # a successful collective read plants a hint on every rank
        yield from handle.read_at_all(0, 1024)
        assert PATH in driver.client._read_hints
        if ctx.rank == DOOMED_RANK:
            def dying_read(blob_id, vector, version=None, trace=None):
                raise StorageError("resolver died")
                yield  # pragma: no cover - generator shape
            driver.client._vectored_read = dying_read
        with pytest.raises(Exception):
            yield from handle.read_at_all(0, FILE_SIZE)
        assert PATH not in driver.client._read_hints
        yield from ctx.comm.barrier(ctx.rank)
        if ctx.rank == DOOMED_RANK:
            del driver.client._vectored_read
        # the next default read round-trips for ``latest`` and still works
        before = driver.client.latest_rpcs
        data = yield from handle.read_at(0, 2048)
        yield from handle.close()
        return data, driver.client.latest_rpcs - before

    result = run_mpi_job(cluster, NUM_RANKS, rank_main)
    for data, latest_delta in result.results:
        assert data == content[:2048]
        assert latest_delta == 1
