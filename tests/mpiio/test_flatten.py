"""Unit tests for file-view flattening."""

import pytest

from repro.errors import MPIIOError
from repro.mpi.datatypes import BYTE, INT, Contiguous, Subarray, Vector
from repro.mpiio.flatten import (
    FileView,
    build_read_vector,
    build_write_vector,
    flatten_view_access,
)


class TestFileView:
    def test_default_view_is_byte_stream(self):
        view = FileView()
        assert flatten_view_access(view, 0, 10).as_tuples() == [(0, 10)]

    def test_displacement_shifts_access(self):
        view = FileView(displacement=100)
        assert flatten_view_access(view, 0, 10).as_tuples() == [(100, 10)]

    def test_etype_offset_units(self):
        view = FileView(etype=INT, filetype=Contiguous(4, INT))
        assert flatten_view_access(view, 3, 8).as_tuples() == [(12, 8)]

    def test_invalid_views_rejected(self):
        with pytest.raises(MPIIOError):
            FileView(displacement=-1)
        with pytest.raises(MPIIOError):
            FileView(etype=INT, filetype=Vector(2, 3, 4, BYTE))  # 6 not multiple of 4


class TestStridedView:
    def test_vector_filetype_tiles(self):
        # filetype: bytes [0,2) and [4,6) accessible; its extent is 6, so the
        # next tiled instance starts at byte 6 (standard MPI extent semantics)
        view = FileView(filetype=Vector(count=2, blocklength=2, stride=4, base=BYTE))
        regions = flatten_view_access(view, 0, 8)
        assert regions.as_tuples() == [(0, 2), (4, 4), (10, 2)]

    def test_access_starting_inside_a_tile(self):
        view = FileView(filetype=Vector(count=2, blocklength=2, stride=4, base=BYTE))
        regions = flatten_view_access(view, 1, 4)
        assert regions.as_tuples() == [(1, 1), (4, 3)]

    def test_access_skipping_whole_tiles(self):
        view = FileView(filetype=Vector(count=2, blocklength=2, stride=4, base=BYTE))
        regions = flatten_view_access(view, 4, 4)
        assert regions.as_tuples() == [(6, 2), (10, 2)]

    def test_zero_byte_access(self):
        view = FileView()
        assert len(flatten_view_access(view, 0, 0)) == 0

    def test_negative_arguments_rejected(self):
        view = FileView()
        with pytest.raises(MPIIOError):
            flatten_view_access(view, -1, 4)
        with pytest.raises(MPIIOError):
            flatten_view_access(view, 0, -4)


class TestSubarrayView:
    def test_2d_tile_view(self):
        # a 8x8-byte global array; this rank owns the 4x4 tile at (0, 4)
        tile = Subarray(sizes=[8, 8], subsizes=[4, 4], starts=[0, 4])
        view = FileView(filetype=tile)
        regions = flatten_view_access(view, 0, 16)
        assert regions.as_tuples() == [(4, 4), (12, 4), (20, 4), (28, 4)]

    def test_write_vector_scatters_payload(self):
        tile = Subarray(sizes=[4, 4], subsizes=[2, 2], starts=[1, 1])
        view = FileView(filetype=tile)
        vector = build_write_vector(view, 0, b"abcd")
        assert vector.region_list().as_tuples() == [(5, 2), (9, 2)]
        assert [request.data for request in vector] == [b"ab", b"cd"]

    def test_read_vector_matches_write_vector_regions(self):
        tile = Subarray(sizes=[4, 4], subsizes=[2, 2], starts=[1, 1])
        view = FileView(filetype=tile)
        write_vec = build_write_vector(view, 0, b"abcd")
        read_vec = build_read_vector(view, 0, 4)
        assert read_vec.region_list() == write_vec.region_list()

    def test_partial_payload(self):
        tile = Subarray(sizes=[4, 4], subsizes=[2, 2], starts=[0, 0])
        view = FileView(filetype=tile)
        vector = build_write_vector(view, 1, b"xyz")
        assert vector.region_list().as_tuples() == [(1, 1), (4, 2)]
        assert [request.data for request in vector] == [b"x", b"yz"]
