"""Shared scaffolding of the collective-buffering test suites.

One copy of the deployment shape and the fresh-client latest-version
read-back every conformance/property/fault-injection assertion is built on
(underscore-prefixed so pytest does not collect it as a test module).
"""

from dataclasses import replace

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.vstore.client import VectoredClient

QUICK = ClusterConfig(network_latency=1e-5, disk_overhead=1e-4)


def make_quick_deployment(seed=3, chunk_size=1024,
                          network_model="bottleneck"):
    """A small fast-network BlobSeer deployment on a fresh cluster."""
    cluster = Cluster(config=replace(QUICK, network_model=network_model),
                      seed=seed)
    deployment = BlobSeerDeployment(cluster, num_providers=3,
                                    num_metadata_providers=2,
                                    chunk_size=chunk_size)
    return cluster, deployment


def read_back_latest(cluster, deployment, path, size):
    """Whole-file contents at the latest published version, fresh client.

    A fresh client has no cache, no hints and no queue: what it reads is
    exactly what the backend published, the ground truth every write-mode
    comparison uses.
    """
    client = VectoredClient(deployment, cluster.add_node(
        f"verify{len(cluster.nodes)}"), name="verify")

    def scenario():
        pieces = yield from client.vread(path, [(0, size)])
        return pieces[0]

    process = cluster.sim.process(scenario())
    return cluster.sim.run(stop_event=process)
