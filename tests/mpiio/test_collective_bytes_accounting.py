"""Exact ``Communicator.bytes_moved`` accounting of a collective read.

The collective-read scatter ships never-written ranges as compact
``(offset, length)`` hole descriptors — :data:`EXTENT_DESCRIPTION_BYTES`
(16) bytes each — instead of their literal zero payload.  This suite pins
that pricing end to end: every collective charge of a sparse collective
read is recomputed from the raw exchanged items with a reference formula
and must equal, byte for byte, what the communicator charged into
``bytes_moved``.  A regression to literal-zero shipping (or any drift in
the descriptor constant) breaks the equality immediately.
"""

import pytest

from repro.mpi.launcher import run_mpi_job
from repro.mpi.simcomm import Communicator
from repro.mpiio.adio.collective import EXTENT_DESCRIPTION_BYTES
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File

from tests.mpiio._collective_testlib import make_quick_deployment

NUM_RANKS = 4
CHUNK = 1024
#: bytes each rank actually writes at the head of its block
WRITE = CHUNK
#: bytes each rank reads back — everything past WRITE is a hole
BLOCK = 4 * CHUNK
FILE_SIZE = NUM_RANKS * BLOCK


@pytest.fixture
def charge_log(monkeypatch):
    """Record ``(op, charged_bytes, contributions)`` per completed
    collective, with the charge resolved exactly as ``_enter`` does."""
    log = []
    real_enter = Communicator._enter

    def recording_enter(self, op, rank, contribution, payload_bytes,
                        finalize):
        def logging_finalize(contributions):
            resolved = payload_bytes(contributions) \
                if callable(payload_bytes) else payload_bytes
            log.append((op, resolved, dict(contributions)))
            return finalize(contributions)

        result = yield from real_enter(self, op, rank, contribution,
                                       payload_bytes, logging_finalize)
        return result

    monkeypatch.setattr(Communicator, "_enter", recording_enter)
    return log


def _item_wire_bytes(item, node_size):
    """Reference price of one scatter item: payload pieces with a
    16-byte header each, 16 bytes per hole descriptor, ``node_size``
    per piggybacked plan node."""
    pieces, piece_holes, plan = item
    return (sum(len(data) + EXTENT_DESCRIPTION_BYTES
                for _offset, data in pieces)
            + len(piece_holes) * EXTENT_DESCRIPTION_BYTES
            + len(plan) * node_size)


def _reference_bottleneck(contributions, node_size,
                          pricer=_item_wire_bytes):
    """The sparse alltoallv cost model, reimplemented independently."""
    load = [0] * NUM_RANKS
    for src in range(NUM_RANKS):
        for dst, item in contributions[src].items():
            if dst == src:
                continue
            nbytes = pricer(item, node_size)
            load[src] += nbytes
            load[dst] += nbytes
    return max(load)


def _item_literal_bytes(item, node_size):
    """Counterfactual price with holes shipped as literal zeros."""
    pieces, piece_holes, plan = item
    return (sum(len(data) + EXTENT_DESCRIPTION_BYTES
                for _offset, data in pieces)
            + sum(length for _offset, length in piece_holes)
            + len(plan) * node_size)


def test_collective_read_bytes_moved_exact(charge_log):
    cluster, deployment = make_quick_deployment(chunk_size=CHUNK)
    node_size = cluster.config.metadata_node_size
    marks = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"acct{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=1)
        handle = yield from File.open(driver, "/acct", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        payload = bytes([ctx.rank + 1]) * WRITE
        yield from handle.write_at_all(ctx.rank * BLOCK, payload)
        yield from handle.sync()
        yield from ctx.comm.barrier(ctx.rank)
        # safe point: no collective can complete until every rank enters
        # it, and each rank records before entering the next one
        marks.setdefault("start", (ctx.comm.bytes_moved, len(charge_log)))
        data = yield from handle.read_at_all(ctx.rank * BLOCK, BLOCK)
        assert data[:WRITE] == payload
        assert data[WRITE:] == b"\x00" * (BLOCK - WRITE)
        yield from ctx.comm.barrier(ctx.rank)
        marks.setdefault("end", (ctx.comm.bytes_moved, len(charge_log)))
        yield from handle.close()

    run_mpi_job(cluster, NUM_RANKS, rank_main, node_prefix="acct-rank")

    start_bytes, start_idx = marks["start"]
    end_bytes, end_idx = marks["end"]
    window = charge_log[start_idx:end_idx]
    charged = [entry for entry in window if entry[0] != "barrier"]

    # the read is exactly describe → scatter → closing (version pinning
    # rides the describe allgather; the hint elides the latest RPC)
    assert [op for op, _, _ in charged] == \
        ["allgather", "alltoallv", "allgather"]
    (_, describe_bytes, describe_contribs) = charged[0]
    (_, scatter_bytes, scatter_contribs) = charged[1]
    (_, closing_bytes, _) = charged[2]

    # phase 1: one 16-byte extent description + 8-byte watermark per rank
    assert all(entry[0] == "ok" and len(entry[1]) == 1
               for entry in describe_contribs.values())
    assert describe_bytes == NUM_RANKS * (EXTENT_DESCRIPTION_BYTES + 8)

    # phase 3: the charge must equal the descriptor-priced bottleneck
    assert scatter_bytes == _reference_bottleneck(scatter_contribs,
                                                  node_size)

    # the scenario genuinely exercised hole elision: each rank's block is
    # three-quarters never-written, and shipping those zeros literally
    # would have cost strictly more than the descriptor pricing did
    hole_bytes = sum(length
                     for send_map in scatter_contribs.values()
                     for _pieces, holes, _plan in send_map.values()
                     for _offset, length in holes)
    assert hole_bytes >= (NUM_RANKS - 1) * (BLOCK - WRITE)
    assert scatter_bytes < _reference_bottleneck(
        scatter_contribs, node_size, pricer=_item_literal_bytes)

    # phase 4: the closing allgather uses the default 64-byte estimate
    assert closing_bytes == 64 * NUM_RANKS

    # and nothing else was charged into bytes_moved inside the window
    assert end_bytes - start_bytes == \
        describe_bytes + scatter_bytes + closing_bytes
