"""Property tests of collective buffering (seeded-random exploration).

Two layers, both comparing against the rank-order serial oracle:

* *datatype layer* — random rank counts, aggregator counts and per-rank MPI
  datatypes (``Vector`` strides, ``Indexed`` block sets, plain contiguous
  spans) drive ``write_at_all`` through real file views; the oracle flattens
  each rank's view with the same :func:`~repro.mpiio.flatten.
  build_write_vector` the File layer uses and applies the vectors serially
  in rank order.

* *vector layer* — raw overlapping ``IOVector``\\ s (overlaps both within a
  rank's vector and across ranks) handed straight to the driver's collective
  entry point, pinning the (source rank, request sequence) overlap
  resolution the aggregator promises.

Both layers also assert the publication invariant: every assigned ticket
publishes, in ticket order, with nothing pending afterwards.
"""

import random

import pytest

from repro.core.listio import IOVector
from repro.mpi.datatypes import BYTE, Contiguous, Indexed, Vector
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.mpiio.flatten import FileView, build_write_vector
from tests._oracle import serial_oracle_vectors
from tests.mpiio._collective_testlib import make_quick_deployment, read_back_latest

FILE_SIZE = 8 * 1024
CHUNK = 512
PATH = "/property"


def make_deployment(seed=1):
    return make_quick_deployment(seed=seed, chunk_size=CHUNK)


def read_back(cluster, deployment):
    return read_back_latest(cluster, deployment, PATH, FILE_SIZE)


def assert_publication_clean(deployment):
    manager = deployment.version_manager.manager
    assert manager.pending_versions(PATH) == []
    assert manager.latest_published(PATH) == manager.tickets_assigned
    assert manager.tickets_aborted == 0


# ----------------------------------------------------------------------
# datatype layer
# ----------------------------------------------------------------------
def random_view_and_payload(rng, rank):
    """A random file view plus a payload filling its accessible bytes."""
    kind = rng.choice(["vector", "indexed", "contiguous"])
    displacement = rng.randrange(0, FILE_SIZE // 4)
    if kind == "vector":
        count = rng.randint(1, 5)
        blocklength = rng.randint(1, 96)
        stride = blocklength + rng.randint(0, 128)
        filetype = Vector(count, blocklength, stride, base=BYTE)
    elif kind == "indexed":
        count = rng.randint(1, 4)
        starts = sorted(rng.sample(range(0, 1024), count))
        lengths = []
        for index, start in enumerate(starts):
            limit = starts[index + 1] - start if index + 1 < count else 200
            lengths.append(rng.randint(1, max(1, min(200, limit))))
        filetype = Indexed(lengths, starts, base=BYTE)
    else:
        filetype = Contiguous(rng.randint(1, 256), base=BYTE)
    view = FileView(displacement=displacement, etype=BYTE, filetype=filetype)
    size = filetype.size * rng.randint(1, 3)
    fill = bytes([1 + (rank * 53) % 255])
    return view, fill * size


@pytest.mark.parametrize("seed", range(8))
def test_random_datatype_collectives_match_rank_order_serial(seed):
    rng = random.Random(1000 + seed)
    num_ranks = rng.randint(2, 6)
    num_aggregators = rng.randint(1, num_ranks)

    views = []
    for rank in range(num_ranks):
        while True:
            view, payload = random_view_and_payload(rng, rank)
            vector = build_write_vector(view, 0, payload)
            if vector.covering_extent().end <= FILE_SIZE:
                break
        views.append((view, payload, vector))

    # the oracle: each rank's flattened vector applied in rank order
    expected = serial_oracle_vectors(
        [vector for _view, _payload, vector in views], FILE_SIZE)

    cluster, deployment = make_deployment(seed)

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=num_aggregators)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        view, payload, _vector = views[ctx.rank]
        handle.view = view
        yield from handle.write_at_all(0, payload)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    assert read_back(cluster, deployment) == expected, (
        f"seed {seed}: {num_ranks} ranks / {num_aggregators} aggregators")
    assert_publication_clean(deployment)


# ----------------------------------------------------------------------
# vector layer (overlaps within and across ranks)
# ----------------------------------------------------------------------
def random_overlapping_vectors(rng, num_ranks):
    """One write vector per rank; requests overlap freely, even within a rank."""
    vectors = []
    for rank in range(num_ranks):
        requests = []
        for index in range(rng.randint(1, 4)):
            size = rng.randint(1, 700)
            offset = rng.randrange(0, FILE_SIZE - size)
            fill = bytes([1 + (rank * 29 + index * 7) % 255])
            requests.append((offset, fill * size))
        vectors.append(IOVector.for_write(requests))
    return vectors


@pytest.mark.parametrize("seed", range(8))
def test_overlapping_vectors_resolve_in_rank_then_request_order(seed):
    rng = random.Random(2000 + seed)
    num_ranks = rng.randint(2, 5)
    num_aggregators = rng.randint(1, num_ranks)
    vectors = random_overlapping_vectors(rng, num_ranks)

    # IOVector semantics: later requests win, vectors in rank order
    expected = serial_oracle_vectors(vectors, FILE_SIZE)

    cluster, deployment = make_deployment(seed)

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=num_aggregators)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        # below the File layer: hand the raw overlapping vector to the
        # driver's collective entry point
        yield from driver.write_vector_all(PATH, vectors[ctx.rank],
                                           atomic=False, rank=ctx.rank,
                                           comm=ctx.comm)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    assert read_back(cluster, deployment) == expected, (
        f"seed {seed}: {num_ranks} ranks / {num_aggregators} aggregators")
    assert_publication_clean(deployment)


@pytest.mark.parametrize("rounds", [3])
def test_repeated_collectives_accumulate_like_serial_rounds(rounds):
    """Later collective rounds overwrite earlier ones exactly as serial
    round-by-round application would."""
    rng = random.Random(42)
    num_ranks = 4
    per_round = [random_overlapping_vectors(rng, num_ranks)
                 for _round in range(rounds)]

    expected = serial_oracle_vectors(
        [vector for vectors in per_round for vector in vectors], FILE_SIZE)

    cluster, deployment = make_deployment(5)

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=2)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        for vectors in per_round:
            yield from driver.write_vector_all(PATH, vectors[ctx.rank],
                                               atomic=False, rank=ctx.rank,
                                               comm=ctx.comm)
            yield from ctx.comm.barrier(ctx.rank)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    assert read_back(cluster, deployment) == expected
    assert_publication_clean(deployment)
