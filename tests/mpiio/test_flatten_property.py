"""Property-based tests of file-view flattening against a reference model.

The reference model materializes the view's accessible-byte map explicitly
(byte by byte) and compares it with the production flattening, for random
vector-of-blocks filetypes and random access windows.
"""

from hypothesis import given, settings, strategies as st

from repro.core.regions import RegionList
from repro.mpi.datatypes import BYTE, Indexed, Vector
from repro.mpiio.flatten import FileView, build_write_vector, flatten_view_access


@st.composite
def vector_views(draw):
    count = draw(st.integers(1, 4))
    blocklength = draw(st.integers(1, 6))
    stride = draw(st.integers(blocklength, blocklength + 6))
    displacement = draw(st.integers(0, 64))
    return FileView(displacement=displacement,
                    filetype=Vector(count=count, blocklength=blocklength,
                                    stride=stride, base=BYTE))


@st.composite
def indexed_views(draw):
    num_blocks = draw(st.integers(1, 5))
    lengths = draw(st.lists(st.integers(1, 8), min_size=num_blocks,
                            max_size=num_blocks))
    # strictly increasing, non-overlapping displacements
    gaps = draw(st.lists(st.integers(0, 5), min_size=num_blocks,
                         max_size=num_blocks))
    displacements = []
    cursor = 0
    for length, gap in zip(lengths, gaps):
        cursor += gap
        displacements.append(cursor)
        cursor += length
    return FileView(displacement=draw(st.integers(0, 32)),
                    filetype=Indexed(lengths, displacements, base=BYTE))


def reference_accessible_bytes(view: FileView, limit: int):
    """Absolute offsets of the first ``limit`` accessible bytes of the view."""
    accessible = []
    tile = 0
    flat = view.filetype.flatten()
    while len(accessible) < limit:
        origin = view.displacement + tile * view.filetype.extent
        for region in flat:
            for byte in range(region.offset, region.end):
                accessible.append(origin + byte)
                if len(accessible) >= limit:
                    break
            if len(accessible) >= limit:
                break
        tile += 1
    return accessible


@settings(max_examples=80, deadline=None)
@given(view=st.one_of(vector_views(), indexed_views()), data=st.data())
def test_flatten_matches_reference_byte_map(view, data):
    offset = data.draw(st.integers(0, 20))
    nbytes = data.draw(st.integers(0, 60))
    regions = flatten_view_access(view, offset, nbytes)

    reference = reference_accessible_bytes(view, offset + nbytes)[offset:]
    expected = RegionList([(byte, 1) for byte in reference]).normalized()
    assert regions == expected
    assert regions.total_bytes() == nbytes


@settings(max_examples=50, deadline=None)
@given(view=st.one_of(vector_views(), indexed_views()), data=st.data())
def test_write_vector_payload_follows_accessible_order(view, data):
    nbytes = data.draw(st.integers(1, 40))
    payload = bytes(range(1, nbytes + 1))
    vector = build_write_vector(view, 0, payload)

    # applying the vector to an empty file and collecting the accessible
    # bytes in order must give the payload back
    content = bytearray()
    vector.apply_to(content)
    accessible = reference_accessible_bytes(view, nbytes)
    assert bytes(content[offset] for offset in accessible) == payload
    assert vector.total_bytes() == nbytes
