"""The versioning ADIO driver with write coalescing enabled.

MPI only requires non-atomic writes to be visible after ``MPI_File_sync`` /
``MPI_File_close`` (or an atomic-mode access on the same handle), so the
driver may queue them in the write pipeline's coalescer and commit one
merged snapshot per flush point.  These tests pin the visibility contract:
queued data is readable after every flush trigger, atomic-mode traffic
serializes behind the queue, and the coalesced file contents equal the
uncoalesced ones.
"""

import pytest

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import StorageError
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.vstore.client import VectoredClient

QUICK = ClusterConfig(network_latency=1e-5, disk_overhead=1e-4)
FILE_SIZE = 16 * 1024


def make_environment(**driver_options):
    cluster = Cluster(config=QUICK, seed=3)
    deployment = BlobSeerDeployment(cluster, num_providers=3,
                                    num_metadata_providers=2,
                                    chunk_size=1024)

    def driver_factory(ctx):
        return VersioningDriver(deployment, ctx.node,
                                rank_name=f"rank{ctx.rank}", **driver_options)

    return cluster, deployment, driver_factory


@pytest.mark.parametrize("flush_via", ["sync", "close_reopen", "read"])
def test_queued_writes_become_visible_at_each_flush_point(flush_via):
    cluster, deployment, driver_factory = make_environment(write_coalescing=True)

    def rank_main(ctx):
        driver = driver_factory(ctx)
        handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        yield from handle.write_at(0, b"first")
        yield from handle.write_at(100, b"second")
        # nothing is committed yet: both writes sit in the coalescer queue
        assert driver.client.coalescer.pending_writes("/f") == 2
        assert deployment.version_manager.manager.latest_published("/f") == 0
        if flush_via == "sync":
            yield from handle.sync()
        elif flush_via == "close_reopen":
            yield from handle.close()
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
        # (the "read" variant flushes implicitly through read_at below)
        data_a = yield from handle.read_at(0, 5)
        data_b = yield from handle.read_at(100, 6)
        return data_a, data_b

    result = run_mpi_job(cluster, 1, rank_main)
    assert result.results[0] == (b"first", b"second")
    # both queued writes were folded into a single published snapshot
    assert deployment.version_manager.manager.latest_published("/f") == 1


def test_atomic_write_flushes_the_queue_first():
    cluster, deployment, driver_factory = make_environment(write_coalescing=True)

    def rank_main(ctx):
        driver = driver_factory(ctx)
        handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        yield from handle.write_at(0, b"queued")
        handle.set_atomicity(True)
        yield from handle.write_at(3, b"ATOMIC")
        data = yield from handle.read_at(0, 9)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, 1, rank_main)
    # the queued write got the earlier ticket; the atomic write overlays it
    assert result.results[0] == b"que" + b"ATOMIC"
    assert deployment.version_manager.manager.latest_published("/f") == 2


def test_coalesced_contents_equal_uncoalesced_contents():
    contents = {}
    for coalescing in (False, True):
        cluster, _, driver_factory = make_environment(
            write_coalescing=coalescing)

        def rank_main(ctx):
            driver = driver_factory(ctx)
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            for step in range(6):
                payload = bytes([65 + step]) * 300
                yield from handle.write_at(step * 250, payload)
            yield from handle.sync()
            data = yield from handle.read_at(0, 2000)
            yield from handle.close()
            return data

        result = run_mpi_job(cluster, 1, rank_main)
        contents[coalescing] = result.results[0]
    assert contents[True] == contents[False]


def test_coalescing_spends_fewer_control_rpcs_for_small_write_trains():
    rpcs = {}
    for coalescing in (False, True):
        cluster, _, driver_factory = make_environment(
            write_coalescing=coalescing)
        drivers = []

        def rank_main(ctx):
            driver = driver_factory(ctx)
            drivers.append(driver)
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            for step in range(8):
                yield from handle.write_at(step * 64, b"x" * 64)
            yield from handle.close()

        run_mpi_job(cluster, 1, rank_main)
        client = drivers[0].client
        rpcs[coalescing] = client.write_control_rpcs + client.metadata_put_rpcs
    assert rpcs[True] * 2 <= rpcs[False], rpcs


def test_read_fences_when_publication_lags_behind_own_commit():
    """Read-your-writes when another writer holds an earlier ticket: the
    client's committed batch is unpublished (its inline ``complete`` saw a
    lagging watermark), so the read must fence and wait — never serve a
    snapshot older than the client's own flushed write."""
    cluster, deployment, driver_factory = make_environment(
        write_coalescing=True, write_pipelining=False, coalesce_max_writes=1)
    blocker = deployment.client(cluster.add_node("blocker"), name="blocker")

    def staller():
        # grab the next ticket and sit on it for a while before completing
        version, _base = yield from blocker._control(
            deployment.version_manager, "assign_ticket", "/f")
        yield cluster.sim.timeout(0.05)
        yield from blocker._control(
            deployment.version_manager, "complete", "/f", version)

    def rank_main(ctx):
        driver = driver_factory(ctx)
        handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        cluster.sim.process(staller())
        yield ctx.sim.timeout(0.001)  # let the staller take its ticket
        # coalesce_max_writes=1 auto-flushes immediately: our write commits
        # with the later ticket but cannot publish until the staller does
        yield from handle.write_at(0, b"hello!")
        data = yield from handle.read_at(0, 6)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, 1, rank_main)
    assert result.results[0] == b"hello!"
    assert deployment.version_manager.manager.latest_published("/f") == 2


# ----------------------------------------------------------------------
# read-hint interaction of collective reads (regression gate)
# ----------------------------------------------------------------------
def test_collective_read_consumes_and_refreshes_one_shot_hints():
    """A collective read must live off the hint machinery correctly: the
    hint planted by a collective write serves the group's version pin
    (zero ``latest`` round-trips), and the read replants a fresh one-shot
    hint — consumed by exactly one subsequent independent read."""
    cluster, deployment, driver_factory = make_environment(
        write_coalescing=True, collective_buffering=True,
        collective_aggregators=1)
    drivers = []

    def rank_main(ctx):
        driver = driver_factory(ctx)
        drivers.append(driver)
        handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        yield from handle.write_at_all(ctx.rank * 64, bytes([65 + ctx.rank]) * 64)
        client = driver.client
        assert "/f" in client._read_hints  # planted by the collective write
        data = yield from handle.read_at_all(0, 128)
        assert client.latest_rpcs == 0  # the pin consumed the hint
        assert "/f" in client._read_hints  # ... and the read replanted one
        again = yield from handle.read_at(0, 128)
        assert client.latest_rpcs == 0  # the replanted hint served this too
        third = yield from handle.read_at(0, 128)
        assert client.latest_rpcs == 1  # one-shot: the third read round-trips
        yield from handle.close()
        return data, again, third

    result = run_mpi_job(cluster, 2, rank_main)
    expected = b"A" * 64 + b"B" * 64
    for data, again, third in result.results:
        assert data == expected and again == expected and third == expected


def test_collective_read_never_serves_older_than_a_rank_own_commit():
    """The version pin is the *maximum* over every rank's watermark: a lead
    resolver holding a stale hint must still pin a version at least as new
    as every peer's own published commit — at zero ``latest`` cost."""
    cluster, deployment, driver_factory = make_environment(
        write_coalescing=True, collective_buffering=True,
        collective_aggregators=1)

    def rank_main(ctx):
        driver = driver_factory(ctx)
        handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        # round 1 plants a (soon stale) hint on every rank
        yield from handle.write_at_all(ctx.rank * 64, bytes([65 + ctx.rank]) * 64)
        yield from handle.read_at_all(0, 128)
        # rank 1 publishes a fresh commit the lead resolver knows nothing of
        if ctx.rank == 1:
            yield from handle.write_at(256, b"OWN-COMMIT!!")
            yield from handle.sync()
        yield from ctx.comm.barrier(ctx.rank)
        before = driver.client.latest_rpcs
        data = yield from handle.read_at_all(256, 12)
        yield from handle.close()
        return data, driver.client.latest_rpcs - before

    result = run_mpi_job(cluster, 2, rank_main)
    for data, latest_delta in result.results:
        # rank 1's synced commit is visible group-wide, without a round-trip
        assert data == b"OWN-COMMIT!!"
        assert latest_delta == 0


def test_read_hints_are_dropped_when_a_commit_aborts_its_ticket():
    """Satellite gap: a failed commit releases its ticket through
    ``VersionManager.abort`` — by the time the abort returns, versions
    newer than a pending hint may have published (a peer stripe of the same
    failed collective), so the hint must not survive the abort."""
    cluster = Cluster(config=QUICK, seed=3)
    deployment = BlobSeerDeployment(cluster, num_providers=3,
                                    num_metadata_providers=2,
                                    chunk_size=1024)
    client = VectoredClient(deployment, cluster.add_node("c"), name="c")

    def scenario():
        yield from client.create_blob("/f", FILE_SIZE, chunk_size=1024)
        yield from client.vwrite_queued("/f", [(0, b"a" * 100)])
        yield from client.vbarrier("/f")
        assert "/f" in client._read_hints  # the barrier planted one
        engine = client.writepath

        def broken_store_nodes(blob, nodes, trace_parent=None):
            del engine._store_nodes  # one-shot: the class method returns
            raise StorageError("metadata shard lost mid-commit")
            yield  # pragma: no cover - generator shape

        engine._store_nodes = broken_store_nodes
        try:
            yield from client.vwrite("/f", [(200, b"b" * 100)])
        except StorageError:
            pass
        else:  # pragma: no cover - the sabotage must bite
            raise AssertionError("sabotaged commit did not fail")
        assert "/f" not in client._read_hints  # dropped by the abort path
        before = client.latest_rpcs
        pieces = yield from client.vread("/f", [(0, 100)])
        assert client.latest_rpcs == before + 1  # the read round-tripped
        return pieces[0]

    process = cluster.sim.process(scenario())
    data = cluster.sim.run(stop_event=process)
    assert data == b"a" * 100
    manager = deployment.version_manager.manager
    assert manager.tickets_aborted == 1
    assert manager.pending_versions("/f") == []
