"""The versioning ADIO driver with write coalescing enabled.

MPI only requires non-atomic writes to be visible after ``MPI_File_sync`` /
``MPI_File_close`` (or an atomic-mode access on the same handle), so the
driver may queue them in the write pipeline's coalescer and commit one
merged snapshot per flush point.  These tests pin the visibility contract:
queued data is readable after every flush trigger, atomic-mode traffic
serializes behind the queue, and the coalesced file contents equal the
uncoalesced ones.
"""

import pytest

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File

QUICK = ClusterConfig(network_latency=1e-5, disk_overhead=1e-4)
FILE_SIZE = 16 * 1024


def make_environment(**driver_options):
    cluster = Cluster(config=QUICK, seed=3)
    deployment = BlobSeerDeployment(cluster, num_providers=3,
                                    num_metadata_providers=2,
                                    chunk_size=1024)

    def driver_factory(ctx):
        return VersioningDriver(deployment, ctx.node,
                                rank_name=f"rank{ctx.rank}", **driver_options)

    return cluster, deployment, driver_factory


@pytest.mark.parametrize("flush_via", ["sync", "close_reopen", "read"])
def test_queued_writes_become_visible_at_each_flush_point(flush_via):
    cluster, deployment, driver_factory = make_environment(write_coalescing=True)

    def rank_main(ctx):
        driver = driver_factory(ctx)
        handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        yield from handle.write_at(0, b"first")
        yield from handle.write_at(100, b"second")
        # nothing is committed yet: both writes sit in the coalescer queue
        assert driver.client.coalescer.pending_writes("/f") == 2
        assert deployment.version_manager.manager.latest_published("/f") == 0
        if flush_via == "sync":
            yield from handle.sync()
        elif flush_via == "close_reopen":
            yield from handle.close()
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
        # (the "read" variant flushes implicitly through read_at below)
        data_a = yield from handle.read_at(0, 5)
        data_b = yield from handle.read_at(100, 6)
        return data_a, data_b

    result = run_mpi_job(cluster, 1, rank_main)
    assert result.results[0] == (b"first", b"second")
    # both queued writes were folded into a single published snapshot
    assert deployment.version_manager.manager.latest_published("/f") == 1


def test_atomic_write_flushes_the_queue_first():
    cluster, deployment, driver_factory = make_environment(write_coalescing=True)

    def rank_main(ctx):
        driver = driver_factory(ctx)
        handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        yield from handle.write_at(0, b"queued")
        handle.set_atomicity(True)
        yield from handle.write_at(3, b"ATOMIC")
        data = yield from handle.read_at(0, 9)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, 1, rank_main)
    # the queued write got the earlier ticket; the atomic write overlays it
    assert result.results[0] == b"que" + b"ATOMIC"
    assert deployment.version_manager.manager.latest_published("/f") == 2


def test_coalesced_contents_equal_uncoalesced_contents():
    contents = {}
    for coalescing in (False, True):
        cluster, _, driver_factory = make_environment(
            write_coalescing=coalescing)

        def rank_main(ctx):
            driver = driver_factory(ctx)
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            for step in range(6):
                payload = bytes([65 + step]) * 300
                yield from handle.write_at(step * 250, payload)
            yield from handle.sync()
            data = yield from handle.read_at(0, 2000)
            yield from handle.close()
            return data

        result = run_mpi_job(cluster, 1, rank_main)
        contents[coalescing] = result.results[0]
    assert contents[True] == contents[False]


def test_coalescing_spends_fewer_control_rpcs_for_small_write_trains():
    rpcs = {}
    for coalescing in (False, True):
        cluster, _, driver_factory = make_environment(
            write_coalescing=coalescing)
        drivers = []

        def rank_main(ctx):
            driver = driver_factory(ctx)
            drivers.append(driver)
            handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            for step in range(8):
                yield from handle.write_at(step * 64, b"x" * 64)
            yield from handle.close()

        run_mpi_job(cluster, 1, rank_main)
        client = drivers[0].client
        rpcs[coalescing] = client.write_control_rpcs + client.metadata_put_rpcs
    assert rpcs[True] * 2 <= rpcs[False], rpcs


def test_read_fences_when_publication_lags_behind_own_commit():
    """Read-your-writes when another writer holds an earlier ticket: the
    client's committed batch is unpublished (its inline ``complete`` saw a
    lagging watermark), so the read must fence and wait — never serve a
    snapshot older than the client's own flushed write."""
    cluster, deployment, driver_factory = make_environment(
        write_coalescing=True, write_pipelining=False, coalesce_max_writes=1)
    blocker = deployment.client(cluster.add_node("blocker"), name="blocker")

    def staller():
        # grab the next ticket and sit on it for a while before completing
        version, _base = yield from blocker._control(
            deployment.version_manager, "assign_ticket", "/f")
        yield cluster.sim.timeout(0.05)
        yield from blocker._control(
            deployment.version_manager, "complete", "/f", version)

    def rank_main(ctx):
        driver = driver_factory(ctx)
        handle = yield from File.open(driver, "/f", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        cluster.sim.process(staller())
        yield ctx.sim.timeout(0.001)  # let the staller take its ticket
        # coalesce_max_writes=1 auto-flushes immediately: our write commits
        # with the later ticket but cannot publish until the staller does
        yield from handle.write_at(0, b"hello!")
        data = yield from handle.read_at(0, 6)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, 1, rank_main)
    assert result.results[0] == b"hello!"
    assert deployment.version_manager.manager.latest_published("/f") == 2
