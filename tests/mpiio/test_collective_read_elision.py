"""Zero-extent elision in the collective read scatter.

Resolvers ship never-written ranges as compact ``(offset, length)`` hole
descriptors instead of literal zero payloads; the receiving ranks
materialize the zeros locally.  The tests pin byte-identical results on
sparse snapshots (holes mid-stripe, whole stripes of holes, reads entirely
over holes), the elision counters, and the exchange-cost drop.
"""

from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.vstore.client import VectoredClient
from tests.mpiio._collective_testlib import make_quick_deployment

PATH = "/sparse"
CHUNK = 1024
NUM_RANKS = 4


def run_sparse_collective(seed_pairs, read_pairs_for_rank, file_size,
                          num_resolvers=2):
    """Seed a sparse dump, then one collective read over it."""
    cluster, deployment = make_quick_deployment(chunk_size=CHUNK)
    seeder = VectoredClient(deployment, cluster.add_node("seed"), name="seed")

    def seed():
        yield from seeder.create_blob(PATH, file_size, chunk_size=CHUNK)
        if seed_pairs:
            yield from seeder.vwrite_and_wait(PATH, seed_pairs)

    process = cluster.sim.process(seed())
    cluster.sim.run(stop_event=process)

    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(
            deployment, ctx.node, rank_name=f"el{ctx.rank}",
            write_coalescing=True, collective_buffering=True,
            collective_reads=True, collective_aggregators=num_resolvers)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=file_size)
        pairs = read_pairs_for_rank(ctx.rank)
        blocklengths = [size for _offset, size in pairs]
        displacements = [offset for offset, _size in pairs]
        handle.set_view(0, BYTE,
                        Indexed(blocklengths, displacements, base=BYTE))
        data = yield from handle.read_at_all(0, sum(blocklengths))
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, NUM_RANKS, rank_main, node_prefix="el-rank")
    return result.results, drivers


def expected_bytes(seed_pairs, pairs, file_size):
    content = bytearray(file_size)
    for offset, payload in seed_pairs:
        content[offset:offset + len(payload)] = payload
    return b"".join(bytes(content[offset:offset + size])
                    for offset, size in pairs)


class TestSparseCollectiveReads:
    FILE_SIZE = 16 * CHUNK

    def rank_pairs(self, rank):
        # each rank scans one quarter of the file (holes included)
        span = self.FILE_SIZE // NUM_RANKS
        return [(rank * span, span)]

    def test_holes_mid_stripe_read_back_as_zeros(self):
        seed_pairs = [(0, b"A" * (2 * CHUNK)),
                      (6 * CHUNK, b"B" * CHUNK),
                      (12 * CHUNK, b"C" * (3 * CHUNK))]
        results, drivers = run_sparse_collective(
            seed_pairs, self.rank_pairs, self.FILE_SIZE)
        for rank, data in enumerate(results):
            assert data == expected_bytes(seed_pairs,
                                          self.rank_pairs(rank),
                                          self.FILE_SIZE), rank
        elided = sum(driver.reader.stats.hole_bytes_elided
                     for driver in drivers.values())
        assert elided > 0

    def test_fully_hole_read_ships_no_payload(self):
        """Reading an entirely unwritten file: every byte is a hole, so
        resolvers ship only descriptors — and everyone still gets zeros."""
        results, drivers = run_sparse_collective(
            [], self.rank_pairs, self.FILE_SIZE)
        for rank, data in enumerate(results):
            assert data == b"\x00" * (self.FILE_SIZE // NUM_RANKS), rank
        stats = [driver.reader.stats for driver in drivers.values()]
        # all remote destinations' bytes were elided: nothing but
        # descriptors and (tiny) plans moved
        assert sum(s.hole_bytes_elided for s in stats) > 0
        payload = sum(s.bytes_sent for s in stats)
        elided = sum(s.hole_bytes_elided for s in stats)
        assert payload < elided, "descriptors must undercut the zeros"

    def test_elision_only_counts_remote_destinations(self):
        """A resolver's holes addressed to itself are a local copy — they
        were never going to cross the interconnect, so they must not count
        as elided traffic."""
        seed_pairs = [(0, b"D" * CHUNK)]
        _results, drivers = run_sparse_collective(
            seed_pairs, self.rank_pairs, self.FILE_SIZE, num_resolvers=1)
        resolver_stats = drivers[0].reader.stats
        # rank 0 is the only resolver; its own quarter is all holes past
        # the first chunk but self-addressed — only the other three ranks'
        # hole bytes count
        others_hole_bytes = 3 * (self.FILE_SIZE // NUM_RANKS)
        assert resolver_stats.hole_bytes_elided == others_hole_bytes

    def test_dense_snapshot_elides_nothing(self):
        seed_pairs = [(0, b"E" * self.FILE_SIZE)]
        results, drivers = run_sparse_collective(
            seed_pairs, self.rank_pairs, self.FILE_SIZE)
        for rank, data in enumerate(results):
            assert data == b"E" * (self.FILE_SIZE // NUM_RANKS), rank
        assert all(driver.reader.stats.hole_bytes_elided == 0
                   for driver in drivers.values())
