"""Collective-I/O conformance suite: three write modes, one byte result.

The acceptance gate of the collective-buffering subsystem.  The same
randomized noncontiguous access pattern — per-rank region sets that overlap
*across* ranks — is written through three independent paths:

* ``serial``      — one client applies every rank's vector immediately, in
                    rank order (the reference the backend itself provides);
* ``per-rank``    — an MPI job where each rank queues its regions in its own
                    :class:`~repro.blobseer.writepath.coalescer.WriteCoalescer`
                    and the ranks flush in rank order (PR 2's path, ordered
                    so cross-rank overlaps resolve deterministically);
* ``collective``  — an MPI job issuing one ``write_at_all`` through two-phase
                    collective buffering (aggregator exchange + stripe
                    commits).

All three must produce byte-identical file contents, which must also equal
the pure in-memory serial application of the pattern in rank order — the
semantics :mod:`repro.mpiio.adio.collective` promises.
"""

import pytest

from repro.errors import MPIIOError
from repro.mpi.datatypes import BYTE
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.collective import (
    aggregator_ranks,
    partition_file_domain,
    resolve_aggregator_count,
)
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.vstore.client import VectoredClient
from tests._oracle import random_pattern, rank_view, serial_oracle
from tests.mpiio._collective_testlib import make_quick_deployment, read_back_latest

FILE_SIZE = 16 * 1024
CHUNK = 1024
PATH = "/conformance"


def make_deployment(seed=3, network_model="bottleneck"):
    return make_quick_deployment(seed=seed, chunk_size=CHUNK,
                                 network_model=network_model)


def read_back(cluster, deployment, file_size=FILE_SIZE):
    return read_back_latest(cluster, deployment, PATH, file_size)


# ----------------------------------------------------------------------
# the three write modes
# ----------------------------------------------------------------------
def write_serial(pattern, network_model="bottleneck"):
    """Reference mode: immediate vectored writes in rank order, one client."""
    cluster, deployment = make_deployment(network_model=network_model)
    client = VectoredClient(deployment, cluster.add_node("serial"),
                            name="serial")

    def scenario():
        yield from client.create_blob(PATH, FILE_SIZE, chunk_size=CHUNK)
        for regions in pattern:
            if regions:
                yield from client.vwrite_and_wait(PATH, regions)

    process = cluster.sim.process(scenario())
    cluster.sim.run(stop_event=process)
    return read_back(cluster, deployment)


def write_per_rank_coalesced(pattern, network_model="bottleneck"):
    """PR-2 mode: per-rank queues, flushed in rank order for determinism."""
    cluster, deployment = make_deployment(network_model=network_model)
    num_ranks = len(pattern)

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        for offset, payload in pattern[ctx.rank]:
            yield from handle.write_at(offset, payload)
        # rank-order publication: rank r syncs only after r-1 published, so
        # cross-rank overlaps resolve exactly as the serial reference
        for turn in range(ctx.size):
            if turn == ctx.rank:
                yield from handle.sync()
            yield from ctx.comm.barrier(ctx.rank)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    return read_back(cluster, deployment)


def write_collective(pattern, num_aggregators, network_model="bottleneck"):
    """Tentpole mode: one ``write_at_all`` through two-phase buffering."""
    cluster, deployment = make_deployment(network_model=network_model)
    num_ranks = len(pattern)
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=num_aggregators)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        pairs = pattern[ctx.rank]
        if pairs:
            filetype, payload = rank_view(pairs)
            handle.set_view(0, BYTE, filetype)
            yield from handle.write_at_all(0, payload)
        else:
            yield from handle.write_at_all(0, b"")
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    return read_back(cluster, deployment), deployment, drivers


# ----------------------------------------------------------------------
# the conformance gate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
@pytest.mark.parametrize("num_ranks,num_aggregators", [
    (2, 1), (3, 2), (4, 2), (5, 3), (4, 4),
])
def test_three_write_modes_produce_identical_bytes(seed, num_ranks,
                                                   num_aggregators):
    pattern = random_pattern(seed * 101 + num_ranks, num_ranks)
    expected = serial_oracle(pattern)

    serial = write_serial(pattern)
    per_rank = write_per_rank_coalesced(pattern)
    collective, _deployment, _drivers = write_collective(
        pattern, num_aggregators)

    assert serial == expected, "serial backend mode diverged from the oracle"
    assert per_rank == expected, "per-rank coalesced mode diverged"
    assert collective == expected, "collective-buffered mode diverged"


@pytest.mark.parametrize("seed,num_ranks,num_aggregators", [
    (7, 3, 2), (23, 4, 2), (42, 5, 3),
])
def test_write_modes_conform_under_queued_network(seed, num_ranks,
                                                  num_aggregators):
    """The same gate under ``network_model="queued"``: per-link FIFO queues,
    switch tiers and CoDel shape timing only — every write mode still lands
    exactly the oracle bytes."""
    pattern = random_pattern(seed * 101 + num_ranks, num_ranks)
    expected = serial_oracle(pattern)

    assert write_serial(pattern, network_model="queued") == expected
    assert write_per_rank_coalesced(pattern, network_model="queued") \
        == expected
    collective, _deployment, _drivers = write_collective(
        pattern, num_aggregators, network_model="queued")
    assert collective == expected


def test_collective_commits_one_batch_per_active_aggregator():
    """N ranks, A aggregators -> at most A snapshots for the collective,
    attributed with all N logical writes."""
    num_ranks, num_aggregators = 6, 2
    pattern = random_pattern(7, num_ranks, empty_rank_chance=0.0)
    collective, deployment, drivers = write_collective(
        pattern, num_aggregators)
    assert collective == serial_oracle(pattern)

    manager = deployment.version_manager.manager
    assert manager.latest_published(PATH) <= num_aggregators
    assert manager.pending_versions(PATH) == []
    committed = [driver.aggregator.stats.stripes_committed
                 for driver in drivers.values()]
    assert sum(committed) == manager.latest_published(PATH)
    attributed = sum(driver.aggregator.stats.attributed_writes
                     for driver in drivers.values())
    assert attributed == num_ranks
    # aggregation concentrates the control plane on the aggregators
    owners = set(aggregator_ranks(num_ranks, num_aggregators))
    for rank, driver in drivers.items():
        if rank not in owners:
            assert driver.client.write_control_rpcs == 0
            assert driver.client.metadata_put_rpcs == 0


def test_collective_write_then_read_elides_the_latest_rpc():
    """The watermark piggybacked on the closing exchange serves every rank's
    read-back without a ``latest`` round-trip (version-hint satellite)."""
    num_ranks = 4
    pattern = random_pattern(11, num_ranks, empty_rank_chance=0.0)
    cluster, deployment = make_deployment()
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=2)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        filetype, payload = rank_view(pattern[ctx.rank])
        handle.set_view(0, BYTE, filetype)
        yield from handle.write_at_all(0, payload)
        handle.set_view(0, BYTE, BYTE)
        data = yield from handle.read_at(0, FILE_SIZE)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, num_ranks, rank_main)
    expected = serial_oracle(pattern)
    assert all(data == expected for data in result.results)
    for driver in drivers.values():
        assert driver.client.latest_rpcs_elided == 1


def test_publication_stays_in_ticket_order_under_collectives():
    """Several collective rounds: every ticket publishes, in order, with no
    gaps and no stalls (the backend's serialization invariant)."""
    num_ranks = 4
    cluster, deployment = make_deployment()

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=2)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        for round_index in range(3):
            pattern = random_pattern(round_index, num_ranks,
                                     empty_rank_chance=0.0)
            filetype, payload = rank_view(pattern[ctx.rank])
            handle.set_view(0, BYTE, filetype)
            yield from handle.write_at_all(0, payload)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    manager = deployment.version_manager.manager
    assert manager.pending_versions(PATH) == []
    assert manager.latest_published(PATH) == manager.tickets_assigned
    assert manager.tickets_aborted == 0


def test_atomic_mode_collectives_bypass_aggregation():
    """Atomic collectives keep one-rank-one-snapshot (no torn rank writes)."""
    num_ranks = 3
    pattern = random_pattern(13, num_ranks, empty_rank_chance=0.0)
    cluster, deployment = make_deployment()
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  collective_buffering=True,
                                  collective_aggregators=1)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        handle.set_atomicity(True)
        filetype, payload = rank_view(pattern[ctx.rank])
        handle.set_view(0, BYTE, filetype)
        yield from handle.write_at_all(0, payload)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    # one snapshot per rank, none through the aggregator
    manager = deployment.version_manager.manager
    assert manager.latest_published(PATH) == num_ranks
    for driver in drivers.values():
        assert driver.aggregator.stats.collectives == 0


def test_collectively_empty_write_is_a_no_op():
    cluster, deployment = make_deployment()

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  collective_buffering=True)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        written = yield from handle.write_at_all(0, b"")
        yield from handle.close()
        return written

    result = run_mpi_job(cluster, 3, rank_main)
    assert result.results == [0, 0, 0]
    assert deployment.version_manager.manager.latest_published(PATH) == 0


# ----------------------------------------------------------------------
# pure partition/placement algebra
# ----------------------------------------------------------------------
class TestPartitionAlgebra:
    def test_resolve_aggregator_count_defaults_and_clamps(self):
        assert resolve_aggregator_count(1) == 1
        assert resolve_aggregator_count(4) == 1
        assert resolve_aggregator_count(8) == 2
        assert resolve_aggregator_count(8, configured=3) == 3
        assert resolve_aggregator_count(2, configured=16) == 2
        with pytest.raises(MPIIOError):
            resolve_aggregator_count(4, configured=0)
        with pytest.raises(MPIIOError):
            resolve_aggregator_count(0)

    def test_aggregator_ranks_are_unique_and_spread(self):
        assert aggregator_ranks(8, 2) == [0, 4]
        assert aggregator_ranks(8, 3) == [0, 2, 5]
        assert aggregator_ranks(5, 5) == [0, 1, 2, 3, 4]
        for size in range(1, 12):
            for count in range(1, size + 1):
                owners = aggregator_ranks(size, count)
                assert len(owners) == len(set(owners))
                assert all(0 <= owner < size for owner in owners)
        with pytest.raises(MPIIOError):
            aggregator_ranks(4, 5)

    def test_partition_covers_the_domain_with_aligned_stripes(self):
        domains = partition_file_domain(0, 10_000, 3, align=1024)
        assert domains[0][0] == 0 and domains[-1][1] == 10_000
        for (_, end), (start, _) in zip(domains, domains[1:]):
            assert end == start
        for start, end in domains[:-1]:
            if end < 10_000:
                assert (end - start) % 1024 == 0

    def test_partition_small_extents_leave_trailing_stripes_empty(self):
        # a 100-byte span aligned to 64 needs two stripes; the rest are empty
        domains = partition_file_domain(0, 100, 4, align=64)
        assert domains[:2] == [(0, 64), (64, 100)]
        assert all(start == end == 100 for start, end in domains[2:])

    def test_partition_rejects_empty_domain(self):
        with pytest.raises(MPIIOError):
            partition_file_domain(10, 10, 2, align=64)


def test_collective_survives_client_batch_bounds():
    """A client-side auto-flush bound (coalesce_max_writes=1) must not break
    the stripe commit: the collective still succeeds, publishes once, and
    reports the auto-flushed stripe's version in its watermark."""
    num_ranks = 4
    pattern = random_pattern(17, num_ranks, empty_rank_chance=0.0)
    cluster, deployment = make_deployment()
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=2,
                                  coalesce_max_writes=1)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        filetype, payload = rank_view(pattern[ctx.rank])
        handle.set_view(0, BYTE, filetype)
        yield from handle.write_at_all(0, payload)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    assert read_back(cluster, deployment) == serial_oracle(pattern)
    manager = deployment.version_manager.manager
    assert manager.pending_versions(PATH) == []
    assert manager.latest_published(PATH) <= 2
    # every rank learned the watermark through the closing exchange
    for driver in drivers.values():
        assert driver.client.version_hints.get(PATH) \
            == manager.latest_published(PATH)


def test_atomic_reads_bypass_hints_planted_by_earlier_collectives():
    """MPI atomic mode: a read must observe another rank's completed atomic
    write even if a collective write planted a hint before it."""
    num_ranks = 2
    cluster, deployment = make_deployment()
    pattern = random_pattern(23, num_ranks, empty_rank_chance=0.0)

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=1)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        filetype, payload = rank_view(pattern[ctx.rank])
        handle.set_view(0, BYTE, filetype)
        yield from handle.write_at_all(0, payload)  # plants hints everywhere
        handle.set_view(0, BYTE, BYTE)
        handle.set_atomicity(True)
        if ctx.rank == 1:
            yield from handle.write_at(0, b"ATOMIC!!")
        yield from ctx.comm.barrier(ctx.rank)
        data = yield from handle.read_at(0, 8)
        yield from handle.close()
        return data

    result = run_mpi_job(cluster, num_ranks, rank_main)
    # rank 0 must see rank 1's atomic write despite its stale hint
    assert result.results[0] == b"ATOMIC!!"
    assert result.results[1] == b"ATOMIC!!"


def test_partition_boundaries_stay_chunk_aligned_for_misaligned_extents():
    """The stripe grid is anchored at the aligned floor of the extent, so a
    collective starting mid-chunk still never splits one chunk between two
    aggregators (each chunk's copy-on-write cost is paid once)."""
    domains = partition_file_domain(5, 2053, 2, align=1024)
    assert domains[0][0] == 5 and domains[-1][1] == 2053
    for _start, end in domains[:-1]:
        if end < 2053:
            assert end % 1024 == 0, domains
    # and the domains still tile the extent
    for (_, end), (start, _) in zip(domains, domains[1:]):
        assert end == start


def test_collective_write_skips_the_redundant_closing_barrier():
    """The aggregator protocol ends in a group-wide exchange; the File
    layer must not charge a second rendezvous on top of it."""
    num_ranks = 2
    pattern = random_pattern(29, num_ranks, empty_rank_chance=0.0)
    cluster, deployment = make_deployment()
    comms = []

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=1)
        if ctx.rank == 0:
            comms.append(ctx.comm)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        filetype, payload = rank_view(pattern[ctx.rank])
        handle.set_view(0, BYTE, filetype)
        yield from handle.write_at_all(0, payload)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main)
    # open barrier (1) + describe allgather + data alltoallv + closing
    # allgather (3) — and nothing else
    assert comms[0].collectives_completed == 4
    assert read_back(cluster, deployment) == serial_oracle(pattern)
