"""Fault injection on the collective write path.

An aggregator is the one rank of a collective that talks to the storage
control plane, so its death is the interesting failure.  Two windows:

* *mid-commit* — the aggregator took its version ticket and fails while
  storing the stripe's metadata.  The commit engine must roll the partial
  nodes back and release the ticket (``VersionManager.abort``), the
  aggregator must discard the staged stripe (the group saw the failure;
  silently retrying it later would resurrect a write the application
  believes failed), the surviving aggregator's stripe must still publish,
  and no reader may ever observe a torn snapshot.

* *mid-exchange* — the aggregator dies before any ticket exists (its local
  flush ahead of the exchange fails).  The protocol must report the failure
  on every rank instead of hanging in a half-entered collective, and must
  leave the version manager completely clean.

In both cases the surviving ranks' own queued writes must still flush and
publish afterwards — one dead aggregator never stalls the group's progress
at the storage layer.
"""

import pytest

from repro.errors import StorageError
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.collective import aggregator_ranks
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from tests.mpiio._collective_testlib import make_quick_deployment, read_back_latest

FILE_SIZE = 16 * 1024
CHUNK = 1024
PATH = "/faulty"
NUM_RANKS = 4
NUM_AGGREGATORS = 2
#: with 4 ranks and 2 aggregators the owners are ranks 0 and 2
DOOMED_RANK = aggregator_ranks(NUM_RANKS, NUM_AGGREGATORS)[1]


def make_deployment():
    return make_quick_deployment(seed=9, chunk_size=CHUNK)


def block_pairs(rank, fill_base=65):
    """Interleaved 512-byte blocks: rank r owns blocks b with b % N == r.

    The global extent spans the whole file, so with two aggregators the
    lower half is stripe 0 (rank 0) and the upper half stripe 1 (rank 2).
    """
    return [(b * 512, bytes([fill_base + rank]) * 512)
            for b in range(rank, FILE_SIZE // 512, NUM_RANKS)]


def expected_surviving_content(dead_stripe_start):
    """All ranks' blocks below the dead stripe, zeros above it."""
    content = bytearray(FILE_SIZE)
    for rank in range(NUM_RANKS):
        for offset, payload in block_pairs(rank):
            if offset + len(payload) <= dead_stripe_start:
                content[offset:offset + len(payload)] = payload
    return bytes(content)


def read_back(cluster, deployment):
    return read_back_latest(cluster, deployment, PATH, FILE_SIZE)


def run_collective_with_sabotage(sabotage):
    """Run one collective write; ``sabotage(rank, driver)`` may break ranks.

    Each rank catches the collective's failure, then (to prove the group
    survives) queues an independent write of its first block's first 16
    bytes at a recognizable fill and syncs it.
    """
    cluster, deployment = make_deployment()
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=NUM_AGGREGATORS)
        drivers[ctx.rank] = driver
        sabotage(ctx.rank, driver)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        outcome = "ok"
        try:
            yield from driver.write_vector_all(
                PATH, _vector(ctx.rank), atomic=False, rank=ctx.rank,
                comm=ctx.comm)
        except Exception as exc:
            outcome = type(exc).__name__
        # the group must still make progress: every rank publishes an
        # independent write after the failed collective
        yield from ctx.comm.barrier(ctx.rank)
        yield from handle.write_at(ctx.rank * 16, bytes([97 + ctx.rank]) * 16)
        yield from handle.sync()
        yield from handle.close()
        return outcome

    result = run_mpi_job(cluster, NUM_RANKS, rank_main)
    return cluster, deployment, drivers, result


def _vector(rank):
    from repro.core.listio import IOVector
    return IOVector.for_write(block_pairs(rank))


class TestAggregatorDiesMidCommit:
    def _sabotage(self, rank, driver):
        if rank != DOOMED_RANK:
            return
        engine = driver.client.writepath

        def broken_store_nodes(blob, nodes, trace_parent=None):
            # one-shot: deleting the instance attribute restores the class
            # method, so the node "recovers" after killing the stripe commit
            del engine._store_nodes
            raise StorageError("aggregator node lost mid-commit")
            yield  # pragma: no cover - generator shape

        # fails after the ticket is assigned, before metadata is complete —
        # the exact window where a torn snapshot could be left behind
        engine._store_nodes = broken_store_nodes

    def test_rollback_publishes_survivors_and_leaves_no_torn_snapshot(self):
        cluster, deployment, drivers, result = \
            run_collective_with_sabotage(self._sabotage)

        # every rank observed the failure (the doomed one with the original
        # error, the others with the collective failure report)
        assert result.results[DOOMED_RANK] == "StorageError"
        assert all(outcome != "ok" for outcome in result.results)

        manager = deployment.version_manager.manager
        # the dead aggregator's ticket was released; nothing is pending,
        # publication never stalled for the survivors
        assert manager.tickets_aborted == 1
        assert manager.pending_versions(PATH) == []

        # the staged stripe was discarded, not left for a silent retry
        doomed = drivers[DOOMED_RANK]
        assert doomed.client.coalescer.pending_writes(PATH) == 0
        assert doomed.client.coalescer.stats.discarded_writes == 1

        # no torn snapshot: the surviving stripe is fully there, the dead
        # stripe reads as never written (its predecessor's zeros), and the
        # post-failure independent writes all published
        content = read_back(cluster, deployment)
        survivors = bytearray(expected_surviving_content(FILE_SIZE // 2))
        for rank in range(NUM_RANKS):
            survivors[rank * 16:(rank + 1) * 16] = bytes([97 + rank]) * 16
        assert content == bytes(survivors)


class TestAggregatorDiesMidExchange:
    def _sabotage(self, rank, driver):
        if rank != DOOMED_RANK:
            return
        coalescer = driver.client.coalescer
        original_flush = coalescer.flush

        def dying_flush(blob_id=None):
            if coalescer.pending_writes(PATH):
                raise StorageError("aggregator died before the exchange")
            result = yield from original_flush(blob_id)
            return result

        coalescer.flush = dying_flush

    def test_pre_ticket_death_aborts_cleanly_on_every_rank(self):
        # give the doomed rank queued state so its phase-0 flush runs (and
        # dies) before any exchange or ticket
        def sabotage(rank, driver):
            self._sabotage(rank, driver)

        cluster, deployment = make_deployment()
        drivers = {}

        def rank_main(ctx):
            driver = VersioningDriver(deployment, ctx.node,
                                      rank_name=f"rank{ctx.rank}",
                                      write_coalescing=True,
                                      collective_buffering=True,
                                      collective_aggregators=NUM_AGGREGATORS)
            drivers[ctx.rank] = driver
            handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            # every rank queues an independent write first; the doomed
            # rank's pre-exchange flush of it is what dies
            yield from handle.write_at(FILE_SIZE - (ctx.rank + 1) * 32,
                                       bytes([49 + ctx.rank]) * 32)
            sabotage(ctx.rank, driver)
            outcome = "ok"
            try:
                yield from driver.write_vector_all(
                    PATH, _vector(ctx.rank), atomic=False, rank=ctx.rank,
                    comm=ctx.comm)
            except Exception as exc:
                outcome = type(exc).__name__
            yield from ctx.comm.barrier(ctx.rank)
            # restore the doomed rank so its close() can flush its queue
            if ctx.rank == DOOMED_RANK:
                del driver.client.coalescer.flush
            yield from handle.close()
            return outcome

        result = run_mpi_job(cluster, NUM_RANKS, rank_main)

        assert result.results[DOOMED_RANK] == "StorageError"
        assert all(outcome != "ok" for outcome in result.results)

        # the collective died before any ticket: only the ranks' own queued
        # writes ever committed, all published, nothing aborted or pending
        manager = deployment.version_manager.manager
        assert manager.tickets_aborted == 0
        assert manager.pending_versions(PATH) == []
        assert manager.latest_published(PATH) == NUM_RANKS

        # surviving ranks' flushes published their queued writes; the file
        # holds exactly those (no stripe data ever committed)
        content = read_back(cluster, deployment)
        expected = bytearray(FILE_SIZE)
        for rank in range(NUM_RANKS):
            start = FILE_SIZE - (rank + 1) * 32
            expected[start:start + 32] = bytes([49 + rank]) * 32
        assert content == bytes(expected)


def test_failed_collective_does_not_block_later_collectives():
    """After a mid-commit failure the same group can run a fresh collective
    (the monkeypatched engine is healed first) and it publishes normally."""
    cluster, deployment = make_deployment()
    drivers = {}

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"rank{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=NUM_AGGREGATORS)
        drivers[ctx.rank] = driver
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=FILE_SIZE)
        if ctx.rank == DOOMED_RANK:
            def broken_store_nodes(blob, nodes, trace_parent=None):
                raise StorageError("transient shard failure")
                yield  # pragma: no cover - generator shape
            driver.client.writepath._store_nodes = broken_store_nodes
        with pytest.raises(Exception):
            yield from driver.write_vector_all(
                PATH, _vector(ctx.rank), atomic=False, rank=ctx.rank,
                comm=ctx.comm)
        yield from ctx.comm.barrier(ctx.rank)
        if ctx.rank == DOOMED_RANK:
            del driver.client.writepath._store_nodes  # the fault heals
        yield from driver.write_vector_all(
            PATH, _vector(ctx.rank), atomic=False, rank=ctx.rank,
            comm=ctx.comm)
        yield from handle.close()

    run_mpi_job(cluster, NUM_RANKS, rank_main)
    manager = deployment.version_manager.manager
    assert manager.pending_versions(PATH) == []
    assert manager.tickets_aborted == 1
    # the retried collective produced the full expected contents
    content = read_back(cluster, deployment)
    expected = bytearray(FILE_SIZE)
    for rank in range(NUM_RANKS):
        for offset, payload in block_pairs(rank):
            expected[offset:offset + len(payload)] = payload
    assert content == bytes(expected)


class TestPartitionPhaseFailure:
    """Failures between the opening exchange and the data exchange."""

    def test_invalid_aggregator_count_fails_at_construction(self):
        """A bad setting must die before any collective is entered — one
        rank failing mid-protocol would strand its peers."""
        from repro.errors import MPIIOError
        cluster, deployment = make_deployment()
        with pytest.raises(MPIIOError):
            VersioningDriver(deployment, cluster.add_node("bad"),
                             collective_buffering=True,
                             collective_aggregators=0)

    def test_partition_failure_reports_on_every_rank_instead_of_hanging(self):
        """A rank that dies computing the file-domain partition still enters
        the data exchange empty-handed and reports through the closing
        phase; its peers raise instead of blocking forever."""
        cluster, deployment = make_deployment()

        def rank_main(ctx):
            driver = VersioningDriver(deployment, ctx.node,
                                      rank_name=f"rank{ctx.rank}",
                                      write_coalescing=True,
                                      collective_buffering=True,
                                      collective_aggregators=NUM_AGGREGATORS)
            if ctx.rank == DOOMED_RANK:
                def dying_count(size):
                    raise StorageError("partition phase died")
                driver.aggregator.resolved_count = dying_count
            handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                          comm=ctx.comm, size_hint=FILE_SIZE)
            outcome = "ok"
            try:
                yield from driver.write_vector_all(
                    PATH, _vector(ctx.rank), atomic=False, rank=ctx.rank,
                    comm=ctx.comm)
            except Exception as exc:
                outcome = type(exc).__name__
            yield from handle.close()
            return outcome

        result = run_mpi_job(cluster, NUM_RANKS, rank_main)
        assert result.results[DOOMED_RANK] == "StorageError"
        assert all(outcome != "ok" for outcome in result.results)
        # the healthy aggregator's stripe published; nothing stalled or tore
        manager = deployment.version_manager.manager
        assert manager.pending_versions(PATH) == []
        assert manager.tickets_aborted == 0


def test_aggregator_requires_a_coalescer_client():
    """The exported CollectiveAggregator fails fast on a client without a
    write coalescer instead of stranding peers mid-protocol later."""
    from repro.blobseer.client import BlobClient
    from repro.errors import MPIIOError
    from repro.mpiio.adio.collective import CollectiveAggregator
    cluster, deployment = make_deployment()
    bare = BlobClient(deployment, cluster.add_node("bare"))
    with pytest.raises(MPIIOError):
        CollectiveAggregator(bare)
