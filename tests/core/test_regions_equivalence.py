"""Equivalence tests for the rewritten (linear-merge) RegionList algebra.

The old implementation subtracted every cut from every kept piece (O(n·m))
and re-normalized after every operation; the rewrite produces canonical
results in one pass.  These tests pin the new code to the old semantics two
ways: against a literal re-implementation of the old quadratic algorithms,
and against a byte-set model that is obviously correct.
"""

from hypothesis import given, settings, strategies as st

from repro.core.regions import Region, RegionList

UNIVERSE = 512  # keep the byte-set model small and fast


# ----------------------------------------------------------------------
# reference implementations (the pre-rewrite semantics, verbatim)
# ----------------------------------------------------------------------
def reference_normalized(regions):
    non_empty = sorted((r for r in regions if not r.empty),
                       key=lambda r: (r.offset, r.end))
    if not non_empty:
        return []
    merged = [non_empty[0]]
    for region in non_empty[1:]:
        last = merged[-1]
        if region.offset <= last.end:
            merged[-1] = Region(last.offset, max(last.end, region.end) - last.offset)
        else:
            merged.append(region)
    return merged


def reference_subtract(a_regions, b_regions):
    a = reference_normalized(a_regions)
    b = reference_normalized(b_regions)
    result = []
    for region in a:
        pieces = [region]
        for cut in b:
            next_pieces = []
            for piece in pieces:
                next_pieces.extend(piece.subtract(cut))
            pieces = next_pieces
            if not pieces:
                break
        result.extend(pieces)
    return reference_normalized(result)


def reference_union(a_regions, b_regions):
    return reference_normalized(list(a_regions) + list(b_regions))


def as_byte_set(regions):
    covered = set()
    for region in regions:
        covered.update(range(region.offset, region.end))
    return covered


def byte_set_of(region_list):
    return as_byte_set(region_list.normalized())


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
regions_strategy = st.lists(
    st.tuples(st.integers(0, UNIVERSE - 1), st.integers(0, 64)),
    min_size=0, max_size=12,
).map(lambda pairs: RegionList([Region(o, s) for o, s in pairs]))


@settings(max_examples=200, deadline=None)
@given(a=regions_strategy, b=regions_strategy)
def test_subtract_matches_old_reference_and_byte_model(a, b):
    new = a.subtract(b)
    old = reference_subtract(a.regions, b.regions)
    assert list(new) == old
    assert byte_set_of(new) == byte_set_of(a) - byte_set_of(b)
    assert new.is_normalized()


@settings(max_examples=200, deadline=None)
@given(a=regions_strategy, b=regions_strategy)
def test_union_matches_old_reference_and_byte_model(a, b):
    new = a.union(b)
    assert list(new) == reference_union(a.regions, b.regions)
    assert byte_set_of(new) == byte_set_of(a) | byte_set_of(b)
    assert new.is_normalized()


@settings(max_examples=200, deadline=None)
@given(a=regions_strategy, b=regions_strategy)
def test_intersection_matches_byte_model(a, b):
    new = a.intersection(b)
    assert byte_set_of(new) == byte_set_of(a) & byte_set_of(b)
    assert new.is_normalized()


@settings(max_examples=200, deadline=None)
@given(a=regions_strategy, b=regions_strategy)
def test_overlaps_matches_byte_model(a, b):
    assert a.overlaps(b) == bool(byte_set_of(a) & byte_set_of(b))


@settings(max_examples=100, deadline=None)
@given(a=regions_strategy)
def test_normalized_matches_old_reference_and_is_memoized(a):
    norm = a.normalized()
    assert list(norm) == reference_normalized(a.regions)
    # memoized: repeated calls return the identical instance,
    # and normalizing a canonical list is the identity
    assert a.normalized() is norm
    assert norm.normalized() is norm


@settings(max_examples=100, deadline=None)
@given(a=regions_strategy, bounds=st.tuples(st.integers(0, UNIVERSE - 1),
                                            st.integers(0, 128)))
def test_clip_matches_byte_model(a, bounds):
    region = Region(*bounds)
    clipped = a.normalized().clip(region)
    assert byte_set_of(clipped) == byte_set_of(a) & as_byte_set([region])
    assert clipped.is_normalized()
