"""Property-based tests of the byte-region algebra (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.regions import Region, RegionList


regions = st.builds(Region,
                    offset=st.integers(0, 2000),
                    size=st.integers(0, 500))

region_lists = st.lists(st.tuples(st.integers(0, 2000), st.integers(0, 300)),
                        min_size=0, max_size=12).map(RegionList.from_tuples)


@given(region_lists)
def test_normalization_is_idempotent_and_canonical(rl):
    norm = rl.normalized()
    assert norm.is_normalized()
    assert norm.normalized() == norm
    assert norm.covered_bytes() == rl.covered_bytes()


@given(region_lists, region_lists)
def test_union_covers_both_operands(a, b):
    union = a.union(b)
    assert union.is_normalized()
    assert union.covered_bytes() >= max(a.covered_bytes(), b.covered_bytes())
    assert a.subtract(union).covered_bytes() == 0
    assert b.subtract(union).covered_bytes() == 0


@given(region_lists, region_lists)
def test_intersection_is_symmetric_and_contained(a, b):
    left = a.intersection(b)
    right = b.intersection(a)
    assert left == right
    assert left.subtract(a).covered_bytes() == 0
    assert left.subtract(b).covered_bytes() == 0
    assert a.overlaps(b) == (left.covered_bytes() > 0)


@given(region_lists, region_lists)
def test_subtract_union_partition(a, b):
    """a = (a - b) ∪ (a ∩ b), and the two parts are disjoint."""
    difference = a.subtract(b)
    intersection = a.intersection(b)
    assert not difference.overlaps(intersection)
    assert difference.union(intersection) == a.normalized()
    assert difference.covered_bytes() + intersection.covered_bytes() == \
        a.covered_bytes()


@given(region_lists)
def test_gaps_complement_inside_extent(rl):
    norm = rl.normalized()
    extent = norm.covering_extent()
    gaps = norm.gaps()
    assert not gaps.overlaps(norm)
    assert gaps.covered_bytes() + norm.covered_bytes() == extent.size


@given(regions, st.integers(1, 64))
def test_chunk_aligned_pieces_partition_region(region, chunk_size):
    pieces = region.chunk_aligned_pieces(chunk_size)
    assert sum(piece.size for piece in pieces) == region.size
    # pieces are in order, contiguous, and never cross a chunk boundary
    cursor = region.offset
    for piece in pieces:
        assert piece.offset == cursor
        assert piece.offset // chunk_size == (piece.end - 1) // chunk_size
        cursor = piece.end


@given(region_lists, st.integers(-500, 500))
def test_shift_preserves_structure(rl, delta):
    if any(region.offset + delta < 0 for region in rl):
        return
    shifted = rl.shift(delta)
    assert shifted.total_bytes() == rl.total_bytes()
    assert [r.size for r in shifted] == [r.size for r in rl]


@given(region_lists, regions)
def test_clip_stays_inside_bounds(rl, bounds):
    clipped = rl.clip(bounds)
    for region in clipped:
        assert bounds.contains_region(region)
    assert clipped.covered_bytes() == rl.normalized().intersection(
        RegionList([bounds])).covered_bytes()
