"""Unit tests for the MPI-atomicity checker."""

import pytest

from repro.core.atomicity import (
    VectoredWrite,
    apply_writes,
    check_mpi_atomicity,
    find_serialization,
    interleaving_example,
)
from repro.core.listio import IOVector
from repro.errors import AtomicityViolation


def write(writer_id, pairs):
    return VectoredWrite(writer_id, IOVector.for_write(pairs))


class TestApplyWrites:
    def test_apply_in_list_order(self):
        writes = [write(0, [(0, b"AAAA")]), write(1, [(2, b"BB")])]
        assert apply_writes(b"........", writes) == b"AABB...."

    def test_apply_with_explicit_order(self):
        writes = [write(0, [(0, b"AAAA")]), write(1, [(2, b"BB")])]
        assert apply_writes(b"........", writes, order=[1, 0]) == b"AAAA...."

    def test_apply_grows_file(self):
        writes = [write(0, [(10, b"Z")])]
        assert apply_writes(b"ab", writes) == b"ab" + b"\x00" * 8 + b"Z"


class TestFindSerialization:
    def test_no_writes_matches_initial(self):
        assert find_serialization(b"abc", [], b"abc") == []
        assert find_serialization(b"abc", [], b"abd") is None

    def test_single_write(self):
        writes = [write(0, [(0, b"XY")])]
        assert find_serialization(b"....", writes, b"XY..") == [0]

    def test_two_conflicting_writes_both_orders_found(self):
        writes = [write(0, [(0, b"AAAA")]), write(1, [(0, b"BBBB")])]
        assert find_serialization(b"....", writes, b"AAAA") is not None
        assert find_serialization(b"....", writes, b"BBBB") is not None

    def test_interleaved_result_has_no_serialization(self):
        writes = [write(0, [(0, b"AAAA")]), write(1, [(0, b"BBBB")])]
        assert find_serialization(b"....", writes, b"ABAB") is None

    def test_nonconflicting_writes_commute(self):
        writes = [write(i, [(i * 4, bytes([65 + i]) * 4)]) for i in range(8)]
        observed = apply_writes(b"\x00" * 32, writes)
        order = find_serialization(b"\x00" * 32, writes, observed)
        assert order is not None
        assert sorted(order) == list(range(8))

    def test_noncontiguous_overlapping_writes(self):
        # writer 0 writes two regions, writer 1 overlaps both
        writes = [
            write(0, [(0, b"AA"), (8, b"AA")]),
            write(1, [(1, b"BB"), (7, b"BB")]),
        ]
        # order 0 then 1
        observed_01 = apply_writes(b"." * 12, writes, order=[0, 1])
        assert find_serialization(b"." * 12, writes, observed_01) is not None
        # a mixed state: writer 0 wins in the first overlap, writer 1 in the
        # second — impossible under any serialization
        impossible = bytearray(observed_01)
        impossible[0:2] = b"AA"
        impossible[1:3] = b"AB"  # mix inside first overlap region
        if bytes(impossible) not in (
            apply_writes(b"." * 12, writes, order=[0, 1]),
            apply_writes(b"." * 12, writes, order=[1, 0]),
        ):
            assert find_serialization(b"." * 12, writes, bytes(impossible)) is None


class TestCheckMpiAtomicity:
    def test_serial_application_is_atomic(self):
        writes = [
            write(0, [(0, b"AAAA"), (10, b"AAAA")]),
            write(1, [(2, b"BBBB"), (12, b"BBBB")]),
        ]
        observed = apply_writes(b"\x00" * 20, writes, order=[1, 0])
        assert check_mpi_atomicity(b"\x00" * 20, writes, observed)

    def test_interleaving_detected_as_violation(self):
        writes = [
            write(0, [(0, b"AAAA"), (4, b"AAAA")]),
            write(1, [(0, b"BBBB"), (4, b"BBBB")]),
        ]
        # request-level round-robin interleaving mixes writers per region
        observed = interleaving_example(b"\x00" * 8, writes)
        # the interleaved state has writer 0's second region over writer 1's:
        # [AAAA][AAAA] after round robin A(0-4), B(0-4), A(4-8), B(4-8) ->
        # BBBB BBBB which is actually serializable; build a truly mixed state:
        mixed = b"AAAABBBB"
        orders = [
            apply_writes(b"\x00" * 8, writes, order=[0, 1]),
            apply_writes(b"\x00" * 8, writes, order=[1, 0]),
        ]
        if mixed not in orders:
            assert not check_mpi_atomicity(b"\x00" * 8, writes, mixed)
        assert check_mpi_atomicity(b"\x00" * 8, writes, observed) in (True, False)

    def test_untouched_bytes_must_be_preserved(self):
        writes = [write(0, [(0, b"AA")])]
        # byte 5 changed although nobody wrote it
        observed = b"AA\x00\x00\x00Z\x00\x00"
        assert not check_mpi_atomicity(b"\x00" * 8, writes, observed)
        with pytest.raises(AtomicityViolation):
            check_mpi_atomicity(b"\x00" * 8, writes, observed,
                                raise_on_violation=True)

    def test_raise_on_violation_for_interleaving(self):
        writes = [
            write(0, [(0, b"AAAA")]),
            write(1, [(0, b"BBBB")]),
        ]
        with pytest.raises(AtomicityViolation):
            check_mpi_atomicity(b"\x00" * 4, writes, b"ABAB",
                                raise_on_violation=True)

    def test_three_writers_some_order(self):
        writes = [
            write(0, [(0, b"AAAAAA")]),
            write(1, [(2, b"BBBBBB")]),
            write(2, [(4, b"CCCCCC")]),
        ]
        for order in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
            observed = apply_writes(b"\x00" * 12, writes, order=order)
            assert check_mpi_atomicity(b"\x00" * 12, writes, observed)

    def test_zero_fill_beyond_initial_is_preserved(self):
        writes = [write(0, [(10, b"XX")])]
        observed = b"\x00" * 10 + b"XX"
        assert check_mpi_atomicity(b"", writes, observed)


class TestInterleavingExample:
    def test_interleaving_example_touches_all_requests(self):
        writes = [
            write(0, [(0, b"AA"), (4, b"AA")]),
            write(1, [(2, b"BB"), (6, b"BB")]),
        ]
        result = interleaving_example(b"\x00" * 8, writes)
        assert result == b"AABBAABB"
