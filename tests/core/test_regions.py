"""Unit tests for the byte-region algebra."""

import pytest

from repro.core.regions import Region, RegionList, pairwise_overlap_matrix
from repro.errors import InvalidRegion


class TestRegion:
    def test_basic_properties(self):
        region = Region(10, 5)
        assert region.end == 15
        assert not region.empty
        assert region.as_tuple() == (10, 5)

    def test_empty_region(self):
        assert Region(3, 0).empty

    def test_invalid_regions_rejected(self):
        with pytest.raises(InvalidRegion):
            Region(-1, 5)
        with pytest.raises(InvalidRegion):
            Region(0, -2)

    def test_contains(self):
        region = Region(10, 5)
        assert region.contains(10)
        assert region.contains(14)
        assert not region.contains(15)
        assert not region.contains(9)

    def test_contains_region(self):
        outer = Region(0, 100)
        assert outer.contains_region(Region(10, 20))
        assert outer.contains_region(Region(0, 100))
        assert not outer.contains_region(Region(90, 20))

    def test_overlaps(self):
        assert Region(0, 10).overlaps(Region(5, 10))
        assert Region(5, 10).overlaps(Region(0, 10))
        assert not Region(0, 10).overlaps(Region(10, 5))   # adjacent
        assert not Region(0, 10).overlaps(Region(20, 5))
        assert not Region(0, 0).overlaps(Region(0, 10))    # empty never overlaps

    def test_adjacent(self):
        assert Region(0, 10).adjacent(Region(10, 5))
        assert Region(10, 5).adjacent(Region(0, 10))
        assert not Region(0, 10).adjacent(Region(11, 5))

    def test_intersect(self):
        assert Region(0, 10).intersect(Region(5, 10)) == Region(5, 5)
        assert Region(0, 10).intersect(Region(20, 5)).empty

    def test_union_extent(self):
        assert Region(0, 10).union_extent(Region(20, 5)) == Region(0, 25)
        assert Region(0, 0).union_extent(Region(20, 5)) == Region(20, 5)

    def test_subtract_middle_hole(self):
        pieces = Region(0, 100).subtract(Region(40, 20))
        assert pieces == (Region(0, 40), Region(60, 40))

    def test_subtract_no_overlap(self):
        assert Region(0, 10).subtract(Region(50, 5)) == (Region(0, 10),)

    def test_subtract_fully_covered(self):
        assert Region(10, 5).subtract(Region(0, 100)) == ()

    def test_shift(self):
        assert Region(5, 10).shift(100) == Region(105, 10)

    def test_split_at(self):
        left, right = Region(0, 10).split_at(4)
        assert left == Region(0, 4)
        assert right == Region(4, 6)
        with pytest.raises(InvalidRegion):
            Region(0, 10).split_at(0)
        with pytest.raises(InvalidRegion):
            Region(0, 10).split_at(10)

    def test_chunk_aligned_pieces(self):
        pieces = Region(5, 20).chunk_aligned_pieces(8)
        assert pieces == (Region(5, 3), Region(8, 8), Region(16, 8), Region(24, 1))
        assert sum(piece.size for piece in pieces) == 20

    def test_chunk_aligned_pieces_already_aligned(self):
        assert Region(8, 8).chunk_aligned_pieces(8) == (Region(8, 8),)

    def test_chunk_aligned_invalid_chunk_size(self):
        with pytest.raises(InvalidRegion):
            Region(0, 10).chunk_aligned_pieces(0)

    def test_ordering_and_hash(self):
        assert Region(0, 5) < Region(1, 5)
        assert len({Region(0, 5), Region(0, 5)}) == 1


class TestRegionList:
    def test_construction_from_tuples(self):
        rl = RegionList([(0, 10), (20, 5)])
        assert len(rl) == 2
        assert rl[1] == Region(20, 5)

    def test_normalized_sorts_and_merges(self):
        rl = RegionList([(20, 10), (0, 10), (5, 10), (30, 0)])
        norm = rl.normalized()
        assert norm.as_tuples() == [(0, 15), (20, 10)]
        assert norm.is_normalized()

    def test_normalized_merges_adjacent(self):
        assert RegionList([(0, 10), (10, 10)]).normalized().as_tuples() == [(0, 20)]

    def test_normalize_idempotent(self):
        rl = RegionList([(3, 4), (1, 5), (10, 2)]).normalized()
        assert rl.normalized() == rl

    def test_total_and_covered_bytes(self):
        rl = RegionList([(0, 10), (5, 10)])
        assert rl.total_bytes() == 20
        assert rl.covered_bytes() == 15

    def test_covering_extent(self):
        rl = RegionList([(100, 10), (10, 5), (50, 1)])
        assert rl.covering_extent() == Region(10, 100)

    def test_covering_extent_empty(self):
        assert RegionList().covering_extent() == Region(0, 0)

    def test_is_contiguous(self):
        assert RegionList([(0, 10), (10, 5)]).is_contiguous()
        assert not RegionList([(0, 10), (11, 5)]).is_contiguous()
        assert RegionList().is_contiguous()

    def test_union(self):
        a = RegionList([(0, 10)])
        b = RegionList([(5, 10), (30, 5)])
        assert a.union(b).as_tuples() == [(0, 15), (30, 5)]

    def test_intersection(self):
        a = RegionList([(0, 10), (20, 10)])
        b = RegionList([(5, 20)])
        assert a.intersection(b).as_tuples() == [(5, 5), (20, 5)]

    def test_intersection_disjoint(self):
        a = RegionList([(0, 10)])
        b = RegionList([(10, 10)])
        assert len(a.intersection(b)) == 0
        assert not a.overlaps(b)

    def test_subtract(self):
        a = RegionList([(0, 30)])
        b = RegionList([(5, 5), (20, 5)])
        assert a.subtract(b).as_tuples() == [(0, 5), (10, 10), (25, 5)]

    def test_subtract_everything(self):
        a = RegionList([(0, 10)])
        assert len(a.subtract(RegionList([(0, 100)]))) == 0

    def test_gaps(self):
        rl = RegionList([(0, 10), (20, 10), (50, 5)])
        assert rl.gaps().as_tuples() == [(10, 10), (30, 20)]

    def test_shift(self):
        assert RegionList([(0, 5), (10, 5)]).shift(100).as_tuples() == \
            [(100, 5), (110, 5)]

    def test_clip(self):
        rl = RegionList([(0, 10), (20, 10), (40, 10)])
        assert rl.clip(Region(5, 30)).as_tuples() == [(5, 5), (20, 10)]

    def test_chunk_aligned(self):
        rl = RegionList([(5, 10)]).chunk_aligned(8)
        assert rl.as_tuples() == [(5, 3), (8, 7)]

    def test_equality_and_hash(self):
        assert RegionList([(0, 5)]) == RegionList([(0, 5)])
        assert hash(RegionList([(0, 5)])) == hash(RegionList([(0, 5)]))
        assert RegionList([(0, 5)]) != RegionList([(0, 6)])

    def test_single_constructor(self):
        assert RegionList.single(5, 10).as_tuples() == [(5, 10)]


def test_pairwise_overlap_matrix():
    lists = [
        RegionList([(0, 10)]),
        RegionList([(5, 10)]),
        RegionList([(100, 10)]),
    ]
    matrix = pairwise_overlap_matrix(lists)
    assert matrix[0][1] and matrix[1][0]
    assert not matrix[0][2] and not matrix[2][0]
    assert not matrix[1][2]
    assert not any(matrix[i][i] for i in range(3))
