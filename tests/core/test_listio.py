"""Unit tests for List-I/O vectored access descriptors."""

import pytest

from repro.core.listio import IORequest, IOVector
from repro.core.regions import Region
from repro.errors import InvalidRegion


class TestIORequest:
    def test_write_request(self):
        req = IORequest(10, 4, b"abcd")
        assert req.is_write
        assert req.region == Region(10, 4)

    def test_read_request(self):
        req = IORequest(10, 4)
        assert not req.is_write

    def test_payload_length_must_match(self):
        with pytest.raises(InvalidRegion):
            IORequest(0, 4, b"ab")

    def test_negative_offset_rejected(self):
        with pytest.raises(InvalidRegion):
            IORequest(-1, 4, b"abcd")


class TestIOVector:
    def test_for_write_constructor(self):
        vec = IOVector.for_write([(0, b"ab"), (10, b"cd")])
        assert vec.is_write
        assert not vec.is_read
        assert vec.total_bytes() == 4

    def test_for_read_constructor(self):
        vec = IOVector.for_read([(0, 2), (10, 2)])
        assert vec.is_read
        assert not vec.is_write

    def test_contiguous_constructors(self):
        assert IOVector.contiguous_write(5, b"xyz").is_contiguous()
        assert IOVector.contiguous_read(5, 3).is_contiguous()

    def test_region_list_and_extent(self):
        vec = IOVector.for_write([(10, b"aa"), (0, b"bb")])
        assert vec.covering_extent() == Region(0, 12)
        assert vec.region_list().as_tuples() == [(10, 2), (0, 2)]

    def test_is_contiguous_detection(self):
        assert IOVector.for_write([(0, b"ab"), (2, b"cd")]).is_contiguous()
        assert not IOVector.for_write([(0, b"ab"), (3, b"cd")]).is_contiguous()

    def test_overlaps(self):
        a = IOVector.for_write([(0, b"aaaa")])
        b = IOVector.for_write([(2, b"bb")])
        c = IOVector.for_write([(10, b"cc")])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_apply_to_in_order(self):
        content = bytearray(b"........")
        IOVector.for_write([(0, b"AA"), (1, b"BB")]).apply_to(content)
        assert bytes(content) == b"ABB....."

    def test_apply_to_grows_target(self):
        content = bytearray(b"ab")
        IOVector.for_write([(5, b"XY")]).apply_to(content)
        assert bytes(content) == b"ab\x00\x00\x00XY"

    def test_apply_to_rejects_read_vector(self):
        with pytest.raises(InvalidRegion):
            IOVector.for_read([(0, 2)]).apply_to(bytearray(b"1234"))

    def test_extract_from(self):
        data = b"0123456789"
        vec = IOVector.for_read([(0, 3), (8, 4)])
        assert vec.extract_from(data) == [b"012", b"89\x00\x00"]

    def test_coalesced_write_merges_adjacent(self):
        vec = IOVector.for_write([(0, b"ab"), (2, b"cd"), (10, b"ef")])
        merged = vec.coalesced()
        assert merged.region_list().as_tuples() == [(0, 4), (10, 2)]
        assert merged[0].data == b"abcd"

    def test_coalesced_write_later_request_wins(self):
        vec = IOVector.for_write([(0, b"AAAA"), (2, b"BB")])
        merged = vec.coalesced()
        assert merged[0].data == b"AABB"

    def test_coalesced_read_normalizes(self):
        vec = IOVector.for_read([(10, 5), (0, 5), (12, 5)])
        merged = vec.coalesced()
        assert merged.region_list().as_tuples() == [(0, 5), (10, 7)]

    def test_coalesced_empty(self):
        assert len(IOVector().coalesced()) == 0

    def test_sorted_by_offset(self):
        vec = IOVector.for_write([(10, b"a"), (0, b"b")])
        assert [req.offset for req in vec.sorted_by_offset()] == [0, 10]

    def test_equality_and_hash(self):
        a = IOVector.for_write([(0, b"xy")])
        b = IOVector.for_write([(0, b"xy")])
        assert a == b
        assert hash(a) == hash(b)

    def test_apply_then_extract_roundtrip(self):
        content = bytearray(b"\x00" * 64)
        pairs = [(3, b"hello"), (20, b"world"), (40, b"!")]
        IOVector.for_write(pairs).apply_to(content)
        read_back = IOVector.for_read([(off, len(data)) for off, data in pairs])
        assert read_back.extract_from(bytes(content)) == [d for _, d in pairs]
