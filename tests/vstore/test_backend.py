"""Unit/integration tests for the synchronous VersioningBackend facade."""

import pytest

from repro import VersioningBackend
from repro.cluster import ClusterConfig
from repro.errors import OutOfBounds, StorageError


@pytest.fixture
def backend():
    return VersioningBackend(num_providers=3, chunk_size=64,
                             config=ClusterConfig(network_latency=1e-5))


class TestFacadeBasics:
    def test_quickstart_roundtrip(self, backend):
        blob = backend.create_blob("blob", size=1024)
        receipt = backend.vwrite(blob, [(0, b"abcd"), (512, b"wxyz")])
        assert receipt.version == 1
        assert backend.vread(blob, [(0, 4), (512, 4)]) == [b"abcd", b"wxyz"]

    def test_describe(self, backend):
        backend.create_blob("blob", size=100)
        descriptor = backend.describe("blob")
        assert descriptor.chunk_size == 64
        assert descriptor.capacity == 128

    def test_contiguous_helpers(self, backend):
        backend.create_blob("blob", size=256)
        backend.write("blob", 10, b"hello")
        assert backend.read("blob", 10, 5) == b"hello"
        assert backend.read("blob", 0, 2) == b"\x00\x00"

    def test_latest_version_advances(self, backend):
        backend.create_blob("blob", size=256)
        assert backend.latest_version("blob") == 0
        backend.write("blob", 0, b"a")
        backend.write("blob", 0, b"b")
        assert backend.latest_version("blob") == 2

    def test_versioned_reads(self, backend):
        backend.create_blob("blob", size=256)
        first = backend.write("blob", 0, b"AAAA")
        second = backend.write("blob", 0, b"BBBB")
        assert backend.read("blob", 0, 4, version=first.version) == b"AAAA"
        assert backend.read("blob", 0, 4, version=second.version) == b"BBBB"
        assert backend.read("blob", 0, 4, version=0) == b"\x00" * 4

    def test_overlapping_requests_within_one_vector_last_wins(self, backend):
        backend.create_blob("blob", size=256)
        backend.vwrite("blob", [(0, b"AAAAAAAA"), (4, b"BBBB")])
        assert backend.read("blob", 0, 8) == b"AAAABBBB"

    def test_out_of_bounds_write_rejected(self, backend):
        backend.create_blob("blob", size=64)
        with pytest.raises(OutOfBounds):
            backend.vwrite("blob", [(60, b"too long payload")])

    def test_empty_write_rejected(self, backend):
        backend.create_blob("blob", size=64)
        with pytest.raises(StorageError):
            backend.vwrite("blob", [])

    def test_read_vector_where_write_expected_rejected(self, backend):
        from repro.core.listio import IOVector

        backend.create_blob("blob", size=64)
        with pytest.raises(StorageError):
            backend.vwrite("blob", IOVector.for_read([(0, 4)]))
        with pytest.raises(StorageError):
            backend.vread("blob", IOVector.for_write([(0, b"ab")]))

    def test_stats_reflect_activity(self, backend):
        backend.create_blob("blob", size=1024)
        backend.vwrite("blob", [(0, b"x" * 300)])
        stats = backend.stats()
        assert stats["stored_bytes"] == 300
        assert stats["snapshots_published"] == 1
        assert stats["network_bytes"] > 0

    def test_many_small_noncontiguous_regions(self, backend):
        blob = backend.create_blob("blob", size=4096)
        pairs = [(index * 128, bytes([index]) * 16) for index in range(32)]
        backend.vwrite(blob, pairs)
        results = backend.vread(blob, [(offset, 16) for offset, _ in pairs])
        assert results == [data for _, data in pairs]

    def test_simulated_time_advances(self, backend):
        backend.create_blob("blob", size=1024)
        before = backend.cluster.now
        backend.vwrite("blob", [(0, b"x" * 1024)])
        assert backend.cluster.now > before
