"""Snapshot isolation of the versioning backend under reader/writer concurrency."""

from repro.blobseer import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.vstore.client import VectoredClient


def make_deployment():
    cluster = Cluster(config=ClusterConfig(network_latency=1e-4))
    deployment = BlobSeerDeployment(cluster, num_providers=3,
                                    num_metadata_providers=2, chunk_size=64)
    return cluster, deployment


def test_readers_only_ever_see_published_whole_snapshots():
    """A reader polling the latest version while writers publish new snapshots
    must only ever observe uniform (single-writer) content, never a mix."""
    cluster, deployment = make_deployment()
    writer_nodes = cluster.add_nodes("writer", 3)
    reader_node = cluster.add_node("reader")
    writers = [VectoredClient(deployment, node, name=f"w{i}")
               for i, node in enumerate(writer_nodes)]
    reader = VectoredClient(deployment, reader_node, name="reader")
    observations = []

    def writer_proc(client, rank):
        # every writer overwrites the same two regions with its own tag,
        # several times, with different pacing
        for iteration in range(3):
            yield cluster.sim.timeout(0.001 * (rank + 1))
            yield from client.vwrite("shared", [(0, bytes([65 + rank]) * 96),
                                                (128, bytes([65 + rank]) * 96)])

    def reader_proc():
        for _ in range(20):
            yield cluster.sim.timeout(0.0007)
            version = yield from reader.latest_version("shared")
            first, second = yield from reader.vread("shared", [(0, 96), (128, 96)],
                                                    version=version)
            observations.append((version, first, second))

    def scenario():
        yield from writers[0].create_blob("shared", size=256)
        processes = [cluster.sim.process(writer_proc(client, rank))
                     for rank, client in enumerate(writers)]
        processes.append(cluster.sim.process(reader_proc()))
        yield cluster.sim.all_of(processes)

    cluster.sim.run(stop_event=cluster.sim.process(scenario()))

    assert observations
    for version, first, second in observations:
        if version == 0:
            assert first == b"\x00" * 96 and second == b"\x00" * 96
        else:
            # both regions of one snapshot come from exactly one writer
            assert len(set(first)) == 1
            assert first == second, (
                f"snapshot v{version} mixes writers: {first[:1]} vs {second[:1]}")


def test_version_numbers_observed_by_reader_are_monotonic():
    cluster, deployment = make_deployment()
    writer = VectoredClient(deployment, cluster.add_node("w"), name="w")
    reader = VectoredClient(deployment, cluster.add_node("r"), name="r")
    seen = []

    def writer_proc():
        for _ in range(5):
            yield from writer.vwrite("blob", [(0, b"x" * 64)])
            yield cluster.sim.timeout(0.002)

    def reader_proc():
        for _ in range(15):
            version = yield from reader.latest_version("blob")
            seen.append(version)
            yield cluster.sim.timeout(0.001)

    def scenario():
        yield from writer.create_blob("blob", size=64)
        procs = [cluster.sim.process(writer_proc()),
                 cluster.sim.process(reader_proc())]
        yield cluster.sim.all_of(procs)
        final = yield from reader.latest_version("blob")
        seen.append(final)

    cluster.sim.run(stop_event=cluster.sim.process(scenario()))
    assert seen == sorted(seen)
    assert seen[-1] == 5
