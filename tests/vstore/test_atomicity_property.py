"""Property-based test of the paper's central claim.

For arbitrary sets of concurrent, overlapping, non-contiguous vectored writes
executed through the versioning backend, every published snapshot — and in
particular the final one — must equal the result of applying the whole
vectored writes in *some* serial order (MPI atomicity).  The serialization
the backend promises is its version-ticket order, which is also checked
explicitly.
"""

from hypothesis import given, settings, strategies as st

from repro.blobseer import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.core.atomicity import VectoredWrite, apply_writes, check_mpi_atomicity
from repro.core.listio import IOVector
from repro.vstore.client import VectoredClient

BLOB_SIZE = 512
CHUNK_SIZE = 32


@st.composite
def write_vectors(draw, max_writers=4, max_regions=3, max_region_size=48):
    """A list of per-writer vectored writes with plenty of overlap potential."""
    writer_count = draw(st.integers(1, max_writers))
    vectors = []
    for writer in range(writer_count):
        region_count = draw(st.integers(1, max_regions))
        pairs = []
        for index in range(region_count):
            offset = draw(st.integers(0, BLOB_SIZE - max_region_size))
            size = draw(st.integers(1, max_region_size))
            fill = bytes([65 + writer]) * size  # 'A' for writer 0, 'B' for 1, ...
            pairs.append((offset, fill))
        vectors.append(pairs)
    return vectors


def run_concurrent_vwrites(vectors, jitter_seed=0):
    """Execute one vectored write per writer concurrently; return final content."""
    cluster = Cluster(config=ClusterConfig(network_latency=1e-5), seed=jitter_seed)
    deployment = BlobSeerDeployment(cluster, num_providers=3,
                                    num_metadata_providers=2,
                                    chunk_size=CHUNK_SIZE)
    nodes = cluster.add_nodes("rank", len(vectors))
    clients = [VectoredClient(deployment, node, name=f"rank{index}")
               for index, node in enumerate(nodes)]

    def writer(client, pairs, delay):
        # a small per-writer start jitter makes uploads interleave differently
        yield cluster.sim.timeout(delay)
        receipt = yield from client.vwrite("shared", pairs)
        return receipt.version

    def scenario():
        yield from clients[0].create_blob("shared", size=BLOB_SIZE,
                                          chunk_size=CHUNK_SIZE)
        processes = []
        for index, (client, pairs) in enumerate(zip(clients, vectors)):
            delay = cluster.sim.rng.uniform(f"start:{index}", 0, 1e-3)
            processes.append(cluster.sim.process(writer(client, pairs, delay)))
        yield cluster.sim.all_of(processes)
        versions = [process.value for process in processes]
        yield from clients[0].wait_published("shared", max(versions))
        final = yield from clients[0].vread("shared", [(0, BLOB_SIZE)])
        return versions, final[0]

    process = cluster.sim.process(scenario())
    return cluster.sim.run(stop_event=process)


@settings(max_examples=25, deadline=None)
@given(vectors=write_vectors())
def test_concurrent_vectored_writes_are_mpi_atomic(vectors):
    versions, final = run_concurrent_vwrites(vectors)

    writes = [VectoredWrite(writer_id, IOVector.for_write(pairs))
              for writer_id, pairs in enumerate(vectors)]
    initial = b"\x00" * BLOB_SIZE

    # 1. the final state is some serialization of the whole vectored writes
    assert check_mpi_atomicity(initial, writes, final)

    # 2. it is specifically the version-ticket serialization the backend promises
    order = sorted(range(len(versions)), key=lambda index: versions[index])
    expected = apply_writes(initial, writes, order)[:BLOB_SIZE]
    assert final == expected


@settings(max_examples=10, deadline=None)
@given(vectors=write_vectors(max_writers=3), seed=st.integers(0, 3))
def test_atomicity_independent_of_timing(vectors, seed):
    """Different network/start timings may change the order, never atomicity."""
    _versions, final = run_concurrent_vwrites(vectors, jitter_seed=seed)
    writes = [VectoredWrite(writer_id, IOVector.for_write(pairs))
              for writer_id, pairs in enumerate(vectors)]
    assert check_mpi_atomicity(b"\x00" * BLOB_SIZE, writes, final)
