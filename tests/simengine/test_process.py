"""Unit tests for generator-based processes."""

import pytest

from repro.errors import ProcessInterrupted, SimulationError
from repro.simengine import Simulator


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_return_value_is_event_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return 123

    p = sim.process(proc())
    sim.run_all()
    assert p.value == 123


def test_process_waits_on_another_process():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(2)
        log.append(("child", sim.now))
        return "child-result"

    def parent():
        result = yield sim.process(child())
        log.append(("parent", sim.now, result))

    sim.process(parent())
    sim.run_all()
    assert log == [("child", 2), ("parent", 2, "child-result")]


def test_exception_in_waited_process_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield sim.process(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run_all()
    assert caught == ["child failed"]


def test_interrupt_delivers_exception():
    sim = Simulator()
    outcomes = []

    def sleeper():
        try:
            yield sim.timeout(100)
            outcomes.append("finished")
        except ProcessInterrupted as interruption:
            outcomes.append(("interrupted", interruption.cause, sim.now))

    def interrupter(target):
        yield sim.timeout(3)
        target.interrupt(cause="stop now")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run_all()
    assert outcomes == [("interrupted", "stop now", 3)]


def test_interrupt_terminated_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run_all()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run_all()


def test_is_alive_reflects_lifecycle():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)

    p = sim.process(proc())
    assert p.is_alive
    sim.run_all()
    assert not p.is_alive


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def worker(index):
        yield sim.timeout(index % 7 + 1)
        done.append(index)

    for index in range(200):
        sim.process(worker(index))
    sim.run_all()
    assert sorted(done) == list(range(200))
