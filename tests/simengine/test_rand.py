"""Unit tests for deterministic random streams."""

from repro.simengine import DeterministicRNG


def test_same_seed_same_stream():
    a = DeterministicRNG(42).stream("latency")
    b = DeterministicRNG(42).stream("latency")
    assert list(a.integers(0, 1000, size=10)) == list(b.integers(0, 1000, size=10))


def test_different_streams_are_independent():
    rng = DeterministicRNG(42)
    a = list(rng.stream("a").integers(0, 1000, size=10))
    b = list(rng.stream("b").integers(0, 1000, size=10))
    assert a != b


def test_different_seeds_differ():
    a = list(DeterministicRNG(1).stream("x").integers(0, 1000, size=10))
    b = list(DeterministicRNG(2).stream("x").integers(0, 1000, size=10))
    assert a != b


def test_stream_is_cached():
    rng = DeterministicRNG(0)
    assert rng.stream("s") is rng.stream("s")


def test_helper_draws():
    rng = DeterministicRNG(7)
    value = rng.uniform("u", 1.0, 2.0)
    assert 1.0 <= value <= 2.0
    assert rng.exponential("e", 5.0) >= 0.0
    assert 0 <= rng.integers("i", 0, 10) < 10


def test_shuffled_returns_permutation():
    rng = DeterministicRNG(3)
    items = list(range(20))
    shuffled = rng.shuffled("order", items)
    assert sorted(shuffled) == items
    assert shuffled != items  # overwhelmingly likely for 20 items
