"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.simengine import Simulator


def test_event_starts_pending():
    sim = Simulator()
    event = sim.event()
    assert not event.triggered
    assert not event.processed
    assert event.ok is None


def test_event_succeed_carries_value():
    sim = Simulator()
    event = sim.event()
    event.succeed(42)
    assert event.triggered
    assert event.ok is True
    assert event.value == 42


def test_event_fail_carries_exception():
    sim = Simulator()
    event = sim.event()
    exc = RuntimeError("boom")
    event.fail(exc)
    assert event.triggered
    assert event.ok is False
    assert event.value is exc


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_fail_requires_exception_instance():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_callback_after_processing_runs_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("done")
    sim.run_all()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == ["done"]


def test_timeout_fires_at_requested_time():
    sim = Simulator()
    fired_at = []

    def proc():
        yield sim.timeout(2.5)
        fired_at.append(sim.now)

    sim.process(proc())
    sim.run_all()
    assert fired_at == [2.5]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_timeout_value_passthrough():
    sim = Simulator()
    results = []

    def proc():
        value = yield sim.timeout(1, value="hello")
        results.append(value)

    sim.process(proc())
    sim.run_all()
    assert results == ["hello"]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    order = []

    def waiter():
        yield sim.all_of([sim.timeout(1), sim.timeout(3), sim.timeout(2)])
        order.append(sim.now)

    sim.process(waiter())
    sim.run_all()
    assert order == [3]


def test_any_of_fires_on_first_child():
    sim = Simulator()
    order = []

    def waiter():
        yield sim.any_of([sim.timeout(5), sim.timeout(1)])
        order.append(sim.now)

    sim.process(waiter())
    sim.run_all()
    assert order == [1]


def test_all_of_empty_is_immediately_satisfied():
    sim = Simulator()
    done = []

    def waiter():
        yield sim.all_of([])
        done.append(sim.now)

    sim.process(waiter())
    sim.run_all()
    assert done == [0.0]


def test_condition_value_maps_events_to_values():
    sim = Simulator()
    collected = {}

    def waiter():
        t1 = sim.timeout(1, value="a")
        t2 = sim.timeout(2, value="b")
        result = yield sim.all_of([t1, t2])
        collected.update(result)

    sim.process(waiter())
    sim.run_all()
    assert sorted(collected.values()) == ["a", "b"]
