"""Unit tests for simulated resources, stores and containers."""

import pytest

from repro.errors import SimulationError
from repro.simengine import Container, PriorityResource, Resource, Simulator, Store


def test_resource_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_serializes_users_beyond_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    acquisitions = []

    def user(name, hold):
        request = resource.request()
        yield request
        acquisitions.append((name, sim.now))
        yield sim.timeout(hold)
        resource.release(request)

    sim.process(user("a", 5))
    sim.process(user("b", 5))
    sim.process(user("c", 5))
    sim.run_all()
    assert acquisitions == [("a", 0), ("b", 5), ("c", 10)]


def test_resource_capacity_two_allows_two_concurrent_users():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    acquisitions = []

    def user(name):
        request = resource.request()
        yield request
        acquisitions.append((name, sim.now))
        yield sim.timeout(10)
        resource.release(request)

    for name in ("a", "b", "c"):
        sim.process(user(name))
    sim.run_all()
    assert acquisitions == [("a", 0), ("b", 0), ("c", 10)]


def test_release_unknown_request_raises():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    other = Resource(sim, capacity=1)
    foreign = other.request()
    with pytest.raises(SimulationError):
        resource.release(foreign)


def test_release_queued_request_cancels_it():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    granted = []

    def holder():
        request = resource.request()
        yield request
        yield sim.timeout(10)
        resource.release(request)

    def canceller():
        yield sim.timeout(1)
        request = resource.request()
        yield sim.timeout(1)
        resource.release(request)  # cancel while still queued

    def third():
        yield sim.timeout(3)
        request = resource.request()
        yield request
        granted.append(sim.now)
        resource.release(request)

    sim.process(holder())
    sim.process(canceller())
    sim.process(third())
    sim.run_all()
    assert granted == [10]


def test_priority_resource_grants_lowest_priority_first():
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        request = resource.request()
        yield request
        yield sim.timeout(10)
        resource.release(request)

    def waiter(name, priority, arrival):
        yield sim.timeout(arrival)
        request = resource.request(priority=priority)
        yield request
        order.append(name)
        resource.release(request)

    sim.process(holder())
    sim.process(waiter("low-priority", 5, 1))
    sim.process(waiter("high-priority", 1, 2))
    sim.run_all()
    assert order == ["high-priority", "low-priority"]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for index in range(5):
            yield sim.timeout(1)
            yield store.put(index)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run_all()
    assert received == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        item = yield store.get()
        times.append((item, sim.now))

    def producer():
        yield sim.timeout(7)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run_all()
    assert times == [("x", 7)]


def test_bounded_store_blocks_put_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("first")
        log.append(("put-first", sim.now))
        yield store.put("second")
        log.append(("put-second", sim.now))

    def consumer():
        yield sim.timeout(4)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run_all()
    assert ("put-second", 4) in log


def test_container_levels():
    sim = Simulator()
    container = Container(sim, capacity=100, init=10)
    levels = []

    def user():
        yield container.get(5)
        levels.append(container.level)
        yield container.put(20)
        levels.append(container.level)

    sim.process(user())
    sim.run_all()
    assert levels == [5, 25]


def test_container_get_blocks_until_enough():
    sim = Simulator()
    container = Container(sim, capacity=100, init=0)
    times = []

    def consumer():
        yield container.get(10)
        times.append(sim.now)

    def producer():
        yield sim.timeout(3)
        yield container.put(10)

    sim.process(consumer())
    sim.process(producer())
    sim.run_all()
    assert times == [3]


def test_container_invalid_arguments():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Container(sim, capacity=0)
    with pytest.raises(SimulationError):
        Container(sim, capacity=10, init=20)
    container = Container(sim, capacity=10)
    with pytest.raises(SimulationError):
        container.put(0)
    with pytest.raises(SimulationError):
        container.get(-1)
