"""Property test: both queue backends drain in exactly the same order.

The simulator's results must be a function of the schedule alone, never of
the queue backend — ``(time, priority, seq)`` order, lazy-cancel semantics
and emptiness must agree between :class:`CalendarQueue` and
:class:`HeapQueue` on *any* interleaving of pushes, pops and cancels.  The
delay palette deliberately covers the calendar queue's structural
boundaries: zero (the same-instant fast path), the slot width and its
neighbours, and delays beyond the ring horizon (the overflow heap).
"""

from hypothesis import given, settings, strategies as st

from repro.simengine.scheduler import CalendarQueue, HeapQueue
from repro.simengine.simulator import Simulator

#: slot width / ring horizon of the default CalendarQueue (64e-6 * 8192)
_SLOT = 64e-6
_HORIZON = _SLOT * 8192

DELAYS = st.one_of(
    st.sampled_from([0.0, 1e-9, _SLOT - 1e-9, _SLOT, _SLOT + 1e-9,
                     1e-3, _HORIZON - 1e-6, _HORIZON + 1e-3, 2.0]),
    st.floats(min_value=0.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), DELAYS, st.integers(0, 1)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("cancel"), st.integers(0, 2 ** 30)),
        st.tuples(st.just("peek")),
    ),
    max_size=200,
)


class _Entry:
    """Minimal stand-in for an Event: the queues only read ``_cancelled``."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False


@settings(max_examples=200, deadline=None)
@given(OPS)
def test_backends_drain_identically(ops):
    calendar, heap = CalendarQueue(), HeapQueue()
    now = 0.0
    seq = 0
    #: seq -> (calendar entry, heap entry) for live (pushed, unpopped) pairs
    live = {}
    for op in ops:
        if op[0] == "push":
            _, delay, priority = op
            pair = (_Entry(), _Entry())
            calendar.push(now + delay, priority, seq, pair[0])
            heap.push(now + delay, priority, seq, pair[1])
            live[seq] = pair
            seq += 1
        elif op[0] == "pop":
            assert len(calendar) == len(heap)
            if not len(calendar):
                continue
            time_a, prio_a, seq_a, entry_a = calendar.pop()
            time_b, prio_b, seq_b, entry_b = heap.pop()
            assert (time_a, prio_a, seq_a) == (time_b, prio_b, seq_b)
            assert time_a >= now
            pair = live.pop(seq_a)
            assert entry_a is pair[0] and entry_b is pair[1]
            now = time_a
        elif op[0] == "cancel":
            if not live:
                continue
            key = sorted(live)[op[1] % len(live)]
            pair = live.pop(key)
            for entry, queue in zip(pair, (calendar, heap)):
                entry._cancelled = True
                queue.note_cancel()
        else:  # peek
            assert calendar.peek() == heap.peek()
    # drain whatever is left: the tails must match entry by entry
    assert len(calendar) == len(heap) == len(live)
    while len(calendar):
        tail_a = calendar.pop()
        tail_b = heap.pop()
        assert tail_a[:3] == tail_b[:3]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(DELAYS, st.booleans()), min_size=1, max_size=40))
def test_simulator_traces_identical_under_both_schedulers(plan):
    """End-to-end: the same process workload (timeouts, timers, cancels)
    produces the identical execution trace under either scheduler."""

    def run(backend):
        sim = Simulator(scheduler=backend)
        trace = []
        timers = []

        def record(tag):
            trace.append((sim.now, "timer", tag))

        def driver():
            for index, (delay, cancel_previous) in enumerate(plan):
                timers.append(sim.call_later(delay, record, index))
                if cancel_previous and len(timers) >= 2:
                    timers[-2].cancel()
                yield sim.timeout(delay / 3)
                trace.append((sim.now, "slept", index))

        sim.process(driver())
        sim.run_all()
        return trace, sim.processed_events, sim.now

    assert run("calendar") == run("heapq")
