"""Unit tests for the simulator event loop."""

import pytest

from repro.errors import SimulationError
from repro.simengine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_until_stops_clock_at_bound():
    sim = Simulator()

    def proc():
        yield sim.timeout(10)

    sim.process(proc())
    sim.run(until=4)
    assert sim.now == 4


def test_run_with_stop_event_returns_its_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(3)
        return "result"

    main = sim.process(proc())
    assert sim.run(stop_event=main) == "result"
    assert sim.now == 3


def test_run_stop_event_from_other_simulator_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.event()
    with pytest.raises(SimulationError):
        sim_a.run(stop_event=foreign)


def test_run_raises_if_stop_event_never_fires():
    sim = Simulator()
    never = sim.event()

    def proc():
        yield sim.timeout(1)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run(stop_event=never)


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_same_time_events_processed_in_creation_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in ["a", "b", "c"]:
        sim.process(proc(tag))
    sim.run_all()
    assert order == ["a", "b", "c"]


def test_determinism_across_runs():
    def build_and_run(seed):
        sim = Simulator(seed=seed)
        trace = []

        def worker(name):
            for _ in range(3):
                delay = sim.rng.uniform(f"delay:{name}", 0.1, 1.0)
                yield sim.timeout(delay)
                trace.append((name, round(sim.now, 9)))

        for name in ("w0", "w1", "w2"):
            sim.process(worker(name))
        sim.run_all()
        return trace

    assert build_and_run(7) == build_and_run(7)
    assert build_and_run(7) != build_and_run(8)


def test_defer_runs_callable_later():
    sim = Simulator()
    event = sim.defer(lambda: 99, delay=5)
    sim.run_all()
    assert event.value == 99
    assert sim.now == 5


def test_unhandled_process_failure_propagates():
    sim = Simulator()

    def crashing():
        yield sim.timeout(1)
        raise ValueError("crash")

    sim.process(crashing())
    with pytest.raises(ValueError, match="crash"):
        sim.run_all()


def test_processed_event_counter_increases():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        yield sim.timeout(1)

    sim.process(proc())
    sim.run_all()
    assert sim.processed_events >= 3
