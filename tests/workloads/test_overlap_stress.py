"""Unit tests for the Experiment-1 overlapped-write workload generator."""

import pytest

from repro.errors import BenchmarkError
from repro.workloads.overlap_stress import OverlapStressWorkload


class TestOverlapStressWorkload:
    def test_invalid_parameters(self):
        with pytest.raises(BenchmarkError):
            OverlapStressWorkload(num_clients=0)
        with pytest.raises(BenchmarkError):
            OverlapStressWorkload(num_clients=1, regions_per_client=0)
        with pytest.raises(BenchmarkError):
            OverlapStressWorkload(num_clients=1, region_size=0)
        with pytest.raises(BenchmarkError):
            OverlapStressWorkload(num_clients=1, overlap_fraction=1.0)

    def test_region_counts_and_sizes(self):
        workload = OverlapStressWorkload(num_clients=4, regions_per_client=8,
                                         region_size=1024)
        for client in range(4):
            regions = workload.client_regions(client)
            assert len(regions) == 8
            assert all(region.size == 1024 for region in regions)
        assert workload.bytes_per_client == 8 * 1024
        assert workload.total_bytes == 4 * 8 * 1024

    def test_neighbouring_clients_overlap(self):
        workload = OverlapStressWorkload(num_clients=4, regions_per_client=4,
                                         region_size=1024, overlap_fraction=0.5)
        assert workload.has_overlaps()
        pairs = workload.overlapping_client_pairs()
        assert (0, 1) in pairs and (1, 2) in pairs and (2, 3) in pairs

    def test_zero_overlap_fraction_gives_disjoint_accesses(self):
        workload = OverlapStressWorkload(num_clients=4, regions_per_client=4,
                                         region_size=1024, overlap_fraction=0.0)
        assert not workload.has_overlaps()
        assert workload.overlapping_client_pairs() == []

    def test_higher_overlap_fraction_increases_overlap(self):
        small = OverlapStressWorkload(num_clients=2, regions_per_client=1,
                                      region_size=1000, overlap_fraction=0.25)
        large = OverlapStressWorkload(num_clients=2, regions_per_client=1,
                                      region_size=1000, overlap_fraction=0.75)

        def overlap_bytes(workload):
            return workload.client_regions(0).intersection(
                workload.client_regions(1)).total_bytes()

        assert overlap_bytes(large) > overlap_bytes(small) > 0

    def test_file_size_covers_every_region(self):
        workload = OverlapStressWorkload(num_clients=3, regions_per_client=5,
                                         region_size=512, overlap_fraction=0.5)
        last_end = max(region.end
                       for client in range(3)
                       for region in workload.client_regions(client))
        assert workload.file_size >= last_end

    def test_pairs_are_writer_tagged(self):
        workload = OverlapStressWorkload(num_clients=3, regions_per_client=2,
                                         region_size=128)
        for client in range(3):
            for _offset, data in workload.client_pairs(client):
                assert set(data) == {client + 1}

    def test_client_vector(self):
        workload = OverlapStressWorkload(num_clients=2, regions_per_client=3,
                                         region_size=256)
        vector = workload.client_vector(1)
        assert vector.is_write
        assert vector.total_bytes() == workload.bytes_per_client

    def test_invalid_client_index(self):
        workload = OverlapStressWorkload(num_clients=2)
        with pytest.raises(BenchmarkError):
            workload.client_regions(5)
