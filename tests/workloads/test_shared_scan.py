"""Tests for the shared-scan workload (node-local cache benchmark input)."""

import pytest

from repro.errors import BenchmarkError
from repro.workloads.shared_scan import SharedScanWorkload


class TestIdenticalPattern:
    def test_every_client_reads_the_same_section(self):
        workload = SharedScanWorkload(num_clients=3, rounds=2,
                                      blocks_per_round=4, block_size=128,
                                      pattern="identical")
        for round_index in range(workload.rounds):
            pairs = {workload.read_pairs(client, round_index)[0]
                     for client in range(3)}
            assert len(pairs) == 1
        assert workload.read_pairs(0, 0) != workload.read_pairs(0, 1)

    def test_file_holds_one_section_per_round(self):
        workload = SharedScanWorkload(num_clients=3, rounds=2,
                                      blocks_per_round=4, block_size=128)
        assert workload.file_size == 2 * 4 * 128


class TestStreamingPattern:
    def test_sections_are_disjoint_across_clients_and_rounds(self):
        workload = SharedScanWorkload(num_clients=3, rounds=2,
                                      blocks_per_round=2, block_size=64,
                                      pattern="streaming")
        seen = set()
        for round_index in range(workload.rounds):
            for client in range(workload.num_clients):
                pair = workload.read_pairs(client, round_index)[0]
                assert pair not in seen
                seen.add(pair)
        assert workload.file_size == len(seen) * workload.section_size


class TestContents:
    def test_expected_pieces_match_contents(self):
        workload = SharedScanWorkload(num_clients=2, rounds=2,
                                      blocks_per_round=3, block_size=32,
                                      pattern="streaming")
        content = workload.expected_contents()
        assert len(content) == workload.file_size
        for client in range(2):
            for round_index in range(2):
                (offset, size), = workload.read_pairs(client, round_index)
                assert workload.expected_pieces(client, round_index) \
                    == content[offset:offset + size]

    def test_contents_are_nonzero_and_deterministic(self):
        workload = SharedScanWorkload(num_clients=2)
        content = workload.expected_contents()
        assert 0 not in content
        assert content == workload.expected_contents()


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(BenchmarkError):
            SharedScanWorkload(num_clients=0)
        with pytest.raises(BenchmarkError):
            SharedScanWorkload(num_clients=1, rounds=0)
        with pytest.raises(BenchmarkError):
            SharedScanWorkload(num_clients=1, pattern="zigzag")
        workload = SharedScanWorkload(num_clients=2)
        with pytest.raises(BenchmarkError):
            workload.read_pairs(2, 0)
        with pytest.raises(BenchmarkError):
            workload.read_pairs(0, 99)

    def test_total_read_bytes(self):
        workload = SharedScanWorkload(num_clients=2, rounds=3,
                                      blocks_per_round=2, block_size=64)
        assert workload.total_read_bytes() == 2 * 3 * 2 * 64
