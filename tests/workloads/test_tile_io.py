"""Unit tests for the MPI-tile-IO workload generator."""

import pytest

from repro.core.regions import RegionList
from repro.errors import BenchmarkError
from repro.workloads.tile_io import TileIOWorkload


class TestTileIOWorkload:
    def test_invalid_parameters(self):
        with pytest.raises(BenchmarkError):
            TileIOWorkload(nr_tiles_x=0)
        with pytest.raises(BenchmarkError):
            TileIOWorkload(sz_tile_x=0)
        with pytest.raises(BenchmarkError):
            TileIOWorkload(sz_element=0)
        with pytest.raises(BenchmarkError):
            TileIOWorkload(overlap_x=-1)
        with pytest.raises(BenchmarkError):
            TileIOWorkload(sz_tile_x=16, overlap_x=16)

    def test_array_dimensions_account_for_overlap(self):
        workload = TileIOWorkload(nr_tiles_x=2, nr_tiles_y=2, sz_tile_x=10,
                                  sz_tile_y=10, sz_element=1, overlap_x=2,
                                  overlap_y=2)
        assert workload.array_size_x == 2 * 8 + 2 == 18
        assert workload.array_size_y == 18
        assert workload.file_size == 18 * 18
        assert workload.num_processes == 4

    def test_tile_coords_and_start(self):
        workload = TileIOWorkload(nr_tiles_x=3, nr_tiles_y=2, sz_tile_x=10,
                                  sz_tile_y=10, sz_element=1, overlap_x=2,
                                  overlap_y=2)
        assert workload.tile_coords(0) == (0, 0)
        assert workload.tile_coords(2) == (0, 2)
        assert workload.tile_coords(3) == (1, 0)
        assert workload.tile_start(4) == (8, 8)

    def test_rank_regions_one_per_row(self):
        workload = TileIOWorkload(nr_tiles_x=2, nr_tiles_y=2, sz_tile_x=8,
                                  sz_tile_y=8, sz_element=4, overlap_x=0,
                                  overlap_y=0)
        regions = workload.rank_regions(0)
        assert len(regions) == 8
        assert all(region.size == 8 * 4 for region in regions)
        assert workload.bytes_per_process == 8 * 8 * 4

    def test_adjacent_tiles_overlap(self):
        workload = TileIOWorkload(nr_tiles_x=2, nr_tiles_y=1, sz_tile_x=10,
                                  sz_tile_y=4, sz_element=1, overlap_x=2,
                                  overlap_y=0)
        assert workload.has_overlaps()
        assert workload.rank_regions(0).overlaps(workload.rank_regions(1))

    def test_no_overlap_configuration(self):
        workload = TileIOWorkload(nr_tiles_x=2, nr_tiles_y=2, sz_tile_x=8,
                                  sz_tile_y=8, sz_element=1, overlap_x=0,
                                  overlap_y=0)
        assert not workload.has_overlaps()
        union = RegionList()
        for rank in range(workload.num_processes):
            union = union.union(workload.rank_regions(rank))
        assert union.total_bytes() == workload.file_size

    def test_full_coverage_with_overlap(self):
        workload = TileIOWorkload(nr_tiles_x=2, nr_tiles_y=2, sz_tile_x=6,
                                  sz_tile_y=6, sz_element=2, overlap_x=2,
                                  overlap_y=2)
        union = RegionList()
        for rank in range(workload.num_processes):
            union = union.union(workload.rank_regions(rank))
        assert union.total_bytes() == workload.file_size

    def test_pairs_are_writer_tagged(self):
        workload = TileIOWorkload(nr_tiles_x=2, nr_tiles_y=1, sz_tile_x=4,
                                  sz_tile_y=4, sz_element=1, overlap_x=1,
                                  overlap_y=0)
        for rank in range(workload.num_processes):
            for _offset, data in workload.rank_pairs(rank):
                assert set(data) == {rank + 1}

    def test_scaled_to_keeps_tile_shape(self):
        base = TileIOWorkload(sz_tile_x=32, sz_tile_y=32, sz_element=8,
                              overlap_x=4, overlap_y=4)
        scaled = base.scaled_to(6)
        assert scaled.num_processes == 6
        assert {scaled.nr_tiles_x, scaled.nr_tiles_y} == {2, 3}
        assert scaled.sz_tile_x == 32 and scaled.sz_element == 8

    def test_invalid_rank(self):
        workload = TileIOWorkload(nr_tiles_x=2, nr_tiles_y=2)
        with pytest.raises(BenchmarkError):
            workload.tile_coords(10)
        with pytest.raises(BenchmarkError):
            workload.scaled_to(0)
