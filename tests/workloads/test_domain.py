"""Unit tests for the ghost-cell domain decomposition."""

import pytest

from repro.core.regions import RegionList
from repro.errors import BenchmarkError
from repro.workloads.domain import DomainDecomposition, process_grid


class TestProcessGrid:
    def test_balanced_factorizations(self):
        assert process_grid(4, 2) == (2, 2)
        assert process_grid(8, 2) == (4, 2)
        assert process_grid(12, 2) == (4, 3)
        assert process_grid(6, 3) in ((3, 2, 1), (2, 3, 1))

    def test_prime_counts(self):
        assert process_grid(7, 2) == (7, 1)

    def test_one_process(self):
        assert process_grid(1, 3) == (1, 1, 1)

    def test_invalid_arguments(self):
        with pytest.raises(BenchmarkError):
            process_grid(0, 2)
        with pytest.raises(BenchmarkError):
            process_grid(4, 0)

    def test_product_equals_process_count(self):
        for count in range(1, 33):
            grid = process_grid(count, 2)
            assert grid[0] * grid[1] == count


class TestDomainDecomposition:
    def test_subdomains_cover_domain_without_ghosts(self):
        decomposition = DomainDecomposition((16, 16), num_processes=4, ghost=0,
                                            element_size=1)
        union = RegionList()
        for rank in range(4):
            union = union.union(decomposition.rank_regions(rank, with_ghosts=False))
        assert union.as_tuples() == [(0, 256)]

    def test_ghost_blocks_overlap_neighbours(self):
        decomposition = DomainDecomposition((16, 16), num_processes=4, ghost=2,
                                            element_size=1)
        assert decomposition.overlap_pairs()  # at least one overlapping pair

    def test_no_ghost_no_overlap(self):
        decomposition = DomainDecomposition((16, 16), num_processes=4, ghost=0,
                                            element_size=1)
        assert decomposition.overlap_pairs() == []

    def test_ghost_clipped_at_domain_boundary(self):
        decomposition = DomainDecomposition((8, 8), num_processes=4, ghost=3,
                                            element_size=1)
        for rank in range(4):
            block = decomposition.subdomain(rank)
            for start, size, full in zip(block.starts, block.sizes,
                                         decomposition.sizes):
                assert start >= 0
                assert start + size <= full

    def test_grid_coords_roundtrip(self):
        decomposition = DomainDecomposition((8, 8), num_processes=6, ghost=0,
                                            element_size=1)
        seen = {decomposition.grid_coords(rank) for rank in range(6)}
        assert len(seen) == 6

    def test_rank_write_pairs_match_regions(self):
        decomposition = DomainDecomposition((8, 8), num_processes=4, ghost=1,
                                            element_size=4)
        pairs = decomposition.rank_write_pairs(2)
        regions = decomposition.rank_regions(2)
        assert len(pairs) == len(regions)
        for (offset, data), region in zip(pairs, regions):
            assert offset == region.offset
            assert len(data) == region.size
            assert set(data) == {3}

    def test_file_size_and_total_bytes(self):
        decomposition = DomainDecomposition((8, 8), num_processes=4, ghost=1,
                                            element_size=8)
        assert decomposition.file_size == 8 * 8 * 8
        assert decomposition.total_written_bytes() > decomposition.file_size

    def test_datatype_size_matches_block(self):
        decomposition = DomainDecomposition((16, 8), num_processes=4, ghost=1,
                                            element_size=2)
        for rank in range(4):
            block = decomposition.subdomain(rank)
            datatype = decomposition.rank_datatype(rank)
            assert datatype.size == block.cells * 2

    def test_invalid_parameters(self):
        with pytest.raises(BenchmarkError):
            DomainDecomposition((0, 8), 4)
        with pytest.raises(BenchmarkError):
            DomainDecomposition((8, 8), 4, ghost=-1)
        with pytest.raises(BenchmarkError):
            DomainDecomposition((8, 8), 4, element_size=0)
        with pytest.raises(BenchmarkError):
            DomainDecomposition((2, 2), 64)  # more processes than cells per dim
        decomposition = DomainDecomposition((8, 8), 4)
        with pytest.raises(BenchmarkError):
            decomposition.grid_coords(99)
