"""RandomVectoredWorkload: the fuzzer's randomized noncontiguous pattern."""

import pytest

from repro.errors import BenchmarkError
from repro.workloads import RandomVectoredWorkload

FILE_SIZE = 8 * 1024


def make(seed=5, **overrides):
    params = dict(num_ranks=3, file_size=FILE_SIZE, seed=seed)
    params.update(overrides)
    return RandomVectoredWorkload(**params)


def test_same_seed_same_pattern():
    first = make()
    second = make()
    for rank in range(3):
        assert first.write_pairs(rank) == second.write_pairs(rank)
        assert first.read_regions(rank) == second.read_regions(rank)


def test_different_seeds_differ():
    assert make(seed=1).write_pairs(0) != make(seed=2).write_pairs(0)


def test_regions_are_disjoint_within_a_rank_and_in_bounds():
    workload = make(empty_rank_chance=0.0)
    for rank in range(3):
        spans = sorted((offset, offset + len(payload))
                       for offset, payload in workload.write_pairs(rank))
        assert spans, "empty_rank_chance=0 must give every rank work"
        for (_, prev_hi), (lo, _) in zip(spans, spans[1:]):
            assert prev_hi <= lo
        for lo, hi in spans:
            assert 0 <= lo < hi <= FILE_SIZE


def test_window_confines_every_region():
    workload = make(window=(1024, 2048), max_region_size=400,
                    empty_rank_chance=0.0)
    lo, hi = workload.union_extent()
    assert 1024 <= lo and hi <= 3072


def test_expected_contents_match_serial_application():
    workload = make(empty_rank_chance=0.0)
    manual = bytearray(FILE_SIZE)
    for rank in range(3):
        for offset, payload in workload.write_pairs(rank):
            manual[offset:offset + len(payload)] = payload
    assert workload.expected_contents() == bytes(manual)


def test_read_regions_mirror_write_regions():
    workload = make(empty_rank_chance=0.0)
    for rank in range(3):
        assert workload.read_regions(rank) \
            == [(offset, len(payload))
                for offset, payload in workload.write_pairs(rank)]


def test_halo_read_regions_grow_merge_and_stay_in_bounds():
    workload = make(empty_rank_chance=0.0)
    for rank in range(3):
        halo = workload.halo_read_regions(rank, 64)
        base = workload.read_regions(rank)
        assert sum(size for _o, size in halo) \
            >= sum(size for _o, size in base)
        previous_end = -1
        for offset, size in halo:
            assert offset > previous_end       # merged: strictly disjoint
            assert 0 <= offset and offset + size <= FILE_SIZE
            previous_end = offset + size
        # every base region is covered by some halo region
        for offset, size in base:
            assert any(h_off <= offset and offset + size <= h_off + h_size
                       for h_off, h_size in halo)


def test_total_write_bytes_and_overlap_probe():
    workload = make(empty_rank_chance=0.0)
    assert workload.total_write_bytes() == sum(
        len(payload) for rank in range(3)
        for _offset, payload in workload.write_pairs(rank))
    assert isinstance(workload.has_cross_rank_overlap(), bool)


@pytest.mark.parametrize("params", [
    {"num_ranks": 0},
    {"file_size": 0},
    {"max_regions": 0},
    {"max_region_size": 0},
    {"empty_rank_chance": 1.0},
    {"window": (0, 10 ** 9)},
    {"window": (-1, 128)},
])
def test_invalid_parameters_raise(params):
    with pytest.raises(BenchmarkError):
        make(**params)
