"""Unit tests for the ghost-cell stencil simulation workload."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.workloads.ghost_cells import GhostCellSimulation


class TestGhostCellSimulation:
    def test_invalid_parameters(self):
        with pytest.raises(BenchmarkError):
            GhostCellSimulation(domain_x=0)
        with pytest.raises(BenchmarkError):
            GhostCellSimulation(alpha=0.5)

    def test_initial_field_has_hot_region(self):
        simulation = GhostCellSimulation(domain_x=32, domain_y=32, num_ranks=4)
        assert simulation.field.max() == 100.0
        assert simulation.field.min() == 0.0

    def test_step_diffuses_heat(self):
        simulation = GhostCellSimulation(domain_x=32, domain_y=32, num_ranks=4)
        initial_max = simulation.field.max()
        initial_heat = simulation.total_heat()
        for _ in range(5):
            simulation.step()
        assert simulation.iteration == 5
        assert simulation.field.max() < initial_max
        # interior diffusion conserves heat (no flux leaves in 5 tiny steps
        # because the hot square sits far from the boundary)
        assert simulation.total_heat() == pytest.approx(initial_heat, rel=1e-9)

    def test_dump_pairs_cover_each_rank_block(self):
        simulation = GhostCellSimulation(domain_x=32, domain_y=32, num_ranks=4,
                                         ghost=2)
        for rank in range(4):
            pairs = simulation.rank_dump_pairs(rank)
            regions = simulation.decomposition.rank_regions(rank)
            assert len(pairs) == len(regions)
            assert sum(len(data) for _, data in pairs) == \
                regions.total_bytes()

    def test_dumps_reassemble_to_global_field(self):
        simulation = GhostCellSimulation(domain_x=16, domain_y=16, num_ranks=4,
                                         ghost=1)
        simulation.step()
        content = bytearray(simulation.file_size)
        for rank in range(4):
            for offset, data in simulation.rank_dump_pairs(rank):
                content[offset:offset + len(data)] = data
        reassembled = simulation.decode_file(bytes(content))
        np.testing.assert_array_equal(reassembled, simulation.field)

    def test_overlapping_ranks_write_identical_ghost_values(self):
        simulation = GhostCellSimulation(domain_x=16, domain_y=16, num_ranks=4,
                                         ghost=2)
        simulation.step()
        expected = simulation.expected_file_content()
        # applying ranks in *any* order must give the same file: the ghost
        # bytes written by several ranks carry identical values
        import itertools

        orders = list(itertools.permutations(range(4)))[:6]
        results = set()
        for order in orders:
            content = bytearray(simulation.file_size)
            for rank in order:
                for offset, data in simulation.rank_dump_pairs(rank):
                    content[offset:offset + len(data)] = data
            results.add(bytes(content))
        assert results == {expected}

    def test_decode_file_pads_short_content(self):
        simulation = GhostCellSimulation(domain_x=8, domain_y=8, num_ranks=2)
        decoded = simulation.decode_file(b"")
        assert decoded.shape == (8, 8)
        assert decoded.sum() == 0.0
