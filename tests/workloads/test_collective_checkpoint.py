"""Unit tests of the collective checkpoint workload generator."""

import pytest

from repro.errors import BenchmarkError
from repro.workloads.collective_checkpoint import CollectiveCheckpointWorkload


def test_geometry():
    workload = CollectiveCheckpointWorkload(num_ranks=4, rounds=3,
                                            blocks_per_rank=2, block_size=512)
    assert workload.blocks_per_section == 8
    assert workload.section_size == 8 * 512
    assert workload.file_size == 3 * 8 * 512
    assert workload.rank_bytes_per_round() == 2 * 512
    assert workload.total_write_bytes() == workload.file_size


def test_round_sections_are_dense_and_rank_blocks_disjoint():
    workload = CollectiveCheckpointWorkload(num_ranks=3, rounds=2,
                                            blocks_per_rank=4, block_size=256)
    for round_index in range(workload.rounds):
        base = round_index * workload.section_size
        covered = set()
        for rank in range(workload.num_ranks):
            for offset, payload in workload.write_pairs(rank, round_index):
                assert len(payload) == workload.block_size
                assert base <= offset < base + workload.section_size
                block = (offset - base) // workload.block_size
                assert block % workload.num_ranks == rank  # interleaved
                assert block not in covered                # disjoint
                covered.add(block)
        assert len(covered) == workload.blocks_per_section  # dense


def test_expected_contents_match_serial_application():
    workload = CollectiveCheckpointWorkload(num_ranks=2, rounds=2,
                                            blocks_per_rank=3, block_size=64)
    content = bytearray(workload.file_size)
    for round_index in range(workload.rounds):
        for rank in range(workload.num_ranks):
            for offset, payload in workload.write_pairs(rank, round_index):
                content[offset:offset + len(payload)] = payload
    assert bytes(content) == workload.expected_contents()
    assert 0 not in workload.expected_contents()  # dense: no zero byte left


def test_payloads_differ_across_ranks_and_rounds():
    workload = CollectiveCheckpointWorkload(num_ranks=2, rounds=2,
                                            blocks_per_rank=1, block_size=16)
    fills = {workload.write_pairs(rank, round_index)[0][1][0]
             for rank in range(2) for round_index in range(2)}
    assert len(fills) == 4


def test_validation():
    with pytest.raises(BenchmarkError):
        CollectiveCheckpointWorkload(num_ranks=0)
    with pytest.raises(BenchmarkError):
        CollectiveCheckpointWorkload(num_ranks=2, rounds=0)
    with pytest.raises(BenchmarkError):
        CollectiveCheckpointWorkload(num_ranks=2, block_size=0)
    workload = CollectiveCheckpointWorkload(num_ranks=2)
    with pytest.raises(BenchmarkError):
        workload.write_pairs(2, 0)
    with pytest.raises(BenchmarkError):
        workload.write_pairs(0, 5)
