"""Unit tests of the collective read (scan) workload geometry."""

import pytest

from repro.errors import BenchmarkError
from repro.workloads.collective_read import CollectiveReadWorkload


def test_read_pairs_cover_each_section_exactly_once_without_halo():
    workload = CollectiveReadWorkload(num_ranks=4, rounds=2,
                                      blocks_per_rank=3, block_size=256)
    for round_index in range(workload.rounds):
        covered = set()
        for rank in range(workload.num_ranks):
            for offset, size in workload.read_pairs(rank, round_index):
                for byte in range(offset, offset + size, 256):
                    assert byte not in covered, "ranks overlap without halo"
                    covered.add(byte)
        base = round_index * workload.section_size
        assert covered == set(range(base, base + workload.section_size, 256))


def test_halo_blocks_create_cross_rank_overlap_and_merge_adjacent():
    workload = CollectiveReadWorkload(num_ranks=2, rounds=1,
                                      blocks_per_rank=2, block_size=128,
                                      halo_blocks=1)
    pairs0 = workload.read_pairs(0, 0)
    pairs1 = workload.read_pairs(1, 0)
    # rank 0 owns blocks 0, 2 and halos into 1, 3: one merged dense run
    assert pairs0 == [(0, 4 * 128)]
    # rank 1 owns blocks 1, 3 and halos into 2: blocks 1-3 merged
    assert pairs1 == [(128, 3 * 128)]
    # the halo made the two ranks' reads overlap
    bytes0 = {offset for offset, size in pairs0 for offset in
              range(offset, offset + size)}
    bytes1 = {offset for offset, size in pairs1 for offset in
              range(offset, offset + size)}
    assert bytes0 & bytes1


def test_expected_pieces_match_the_checkpoint_contents():
    workload = CollectiveReadWorkload(num_ranks=3, rounds=2,
                                      blocks_per_rank=2, block_size=64,
                                      halo_blocks=1)
    content = workload.expected_contents()
    assert len(content) == workload.file_size
    for rank in range(workload.num_ranks):
        for round_index in range(workload.rounds):
            expected = b"".join(
                content[offset:offset + size]
                for offset, size in workload.read_pairs(rank, round_index))
            assert workload.expected_pieces(rank, round_index) == expected


def test_byte_accounting():
    workload = CollectiveReadWorkload(num_ranks=4, rounds=3,
                                      blocks_per_rank=2, block_size=512)
    assert workload.rank_bytes_per_round(0) == 2 * 512
    assert workload.total_read_bytes() == workload.file_size  # dense scan
    with_halo = CollectiveReadWorkload(num_ranks=4, rounds=3,
                                       blocks_per_rank=2, block_size=512,
                                       halo_blocks=1)
    assert with_halo.total_read_bytes() > with_halo.file_size


def test_parameter_validation():
    with pytest.raises(BenchmarkError):
        CollectiveReadWorkload(num_ranks=0)
    with pytest.raises(BenchmarkError):
        CollectiveReadWorkload(num_ranks=2, halo_blocks=-1)
    workload = CollectiveReadWorkload(num_ranks=2)
    with pytest.raises(BenchmarkError):
        workload.read_pairs(5, 0)
    with pytest.raises(BenchmarkError):
        workload.read_pairs(0, 9)


def test_sparse_dumps_zero_the_hole_slots():
    workload = CollectiveReadWorkload(num_ranks=2, rounds=2,
                                      blocks_per_rank=2, block_size=64,
                                      hole_every=2)
    content = workload.expected_contents()
    assert len(content) == workload.file_size
    for round_index in range(workload.rounds):
        base = round_index * workload.section_size
        for slot in range(workload.blocks_per_section):
            block = content[base + slot * 64:base + (slot + 1) * 64]
            if workload.is_hole(slot):
                assert block == b"\x00" * 64
            else:
                assert block != b"\x00" * 64
    assert workload.hole_bytes_per_section() == 2 * 64


def test_seed_pairs_reproduce_the_sparse_contents():
    workload = CollectiveReadWorkload(num_ranks=2, rounds=2,
                                      blocks_per_rank=3, block_size=32,
                                      hole_every=3)
    rebuilt = bytearray(workload.file_size)
    for offset, payload in workload.seed_pairs():
        rebuilt[offset:offset + len(payload)] = payload
    assert bytes(rebuilt) == workload.expected_contents()
    # written runs never touch a hole slot
    for offset, payload in workload.seed_pairs():
        assert len(payload) % 32 == 0


def test_dense_seed_is_one_run_and_hole_every_validates():
    workload = CollectiveReadWorkload(num_ranks=2)
    assert workload.seed_pairs() == [(0, workload.expected_contents())]
    with pytest.raises(BenchmarkError):
        CollectiveReadWorkload(num_ranks=2, hole_every=1)
    with pytest.raises(BenchmarkError):
        CollectiveReadWorkload(num_ranks=2, hole_every=-1)
