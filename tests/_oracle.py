"""Shared serial-oracle testlib: one implementation, every suite.

The rank-order serial oracle used to judge collective writes was once
duplicated across the conformance, read-conformance and property suites.
The single implementation now lives in :mod:`repro.fuzz.oracle` — the
scenario fuzzer's byte-identity checker builds on the same code — and this
module is the test-side door to it, plus the datatype helper the MPI
suites share for driving patterns through real file views.

Import from here in tests; never re-implement ``random_pattern`` /
``serial_oracle`` locally, or the fuzzer and the suites can drift apart.
"""

from repro.fuzz.oracle import (  # noqa: F401  (re-exports)
    FILE_SIZE_DEFAULT,
    MaskedOracle,
    apply_pattern,
    pattern_extent,
    random_pattern,
    serial_oracle,
    serial_oracle_vectors,
)
from repro.mpi.datatypes import BYTE, Indexed

__all__ = [
    "FILE_SIZE_DEFAULT",
    "MaskedOracle",
    "apply_pattern",
    "pattern_extent",
    "random_pattern",
    "rank_view",
    "serial_oracle",
    "serial_oracle_vectors",
]


def rank_view(pairs):
    """Indexed filetype + flat payload for one rank's disjoint regions."""
    blocklengths = [len(payload) for _offset, payload in pairs]
    displacements = [offset for offset, _payload in pairs]
    payload = b"".join(payload for _offset, payload in pairs)
    return Indexed(blocklengths, displacements, base=BYTE), payload
