"""Unit tests for BLOB descriptors."""

import pytest

from repro.blobseer.blob import BlobDescriptor
from repro.errors import InvalidRegion, OutOfBounds


def test_capacity_rounded_to_power_of_two_chunks():
    descriptor = BlobDescriptor.create("b", size=5 * 100, chunk_size=100)
    assert descriptor.capacity == 8 * 100
    assert descriptor.num_leaves == 8
    assert descriptor.requested_size == 500


def test_minimum_one_chunk():
    descriptor = BlobDescriptor.create("b", size=0, chunk_size=64)
    assert descriptor.capacity == 64
    assert descriptor.num_leaves == 1
    assert descriptor.tree_depth == 0


def test_exact_power_of_two_not_grown():
    descriptor = BlobDescriptor.create("b", size=4 * 128, chunk_size=128)
    assert descriptor.capacity == 4 * 128
    assert descriptor.tree_depth == 2


def test_leaf_offset():
    descriptor = BlobDescriptor.create("b", size=1000, chunk_size=100)
    assert descriptor.leaf_offset(0) == 0
    assert descriptor.leaf_offset(99) == 0
    assert descriptor.leaf_offset(100) == 100
    assert descriptor.leaf_offset(555) == 500


def test_validate_access():
    descriptor = BlobDescriptor.create("b", size=100, chunk_size=100)
    descriptor.validate_access(0, 100)
    with pytest.raises(OutOfBounds):
        descriptor.validate_access(50, 100)
    with pytest.raises(InvalidRegion):
        descriptor.validate_access(-1, 10)


def test_invalid_creation_parameters():
    with pytest.raises(InvalidRegion):
        BlobDescriptor.create("b", size=10, chunk_size=0)
    with pytest.raises(InvalidRegion):
        BlobDescriptor.create("b", size=-1, chunk_size=10)
