"""Unit and integration tests of the write-pipeline subsystem."""

import pytest

from repro.blobseer.deployment import BlobSeerDeployment
from repro.blobseer.writepath import (
    StagedWrite,
    WriteBatch,
    merge_write_vectors,
)
from repro.cluster import Cluster, ClusterConfig
from repro.core.listio import IOVector
from repro.errors import StorageError
from repro.vstore.client import VectoredClient

BLOB = "wp-test"
BLOB_SIZE = 4096
CHUNK = 256


# ----------------------------------------------------------------------
# pure batch algebra
# ----------------------------------------------------------------------
class TestBatchAlgebra:
    def test_merge_concatenates_in_order(self):
        first = IOVector.for_write([(0, b"aa"), (10, b"bb")])
        second = IOVector.for_write([(20, b"cc")])
        merged = merge_write_vectors([first, second])
        assert [(r.offset, r.data) for r in merged] == [
            (0, b"aa"), (10, b"bb"), (20, b"cc")]

    def test_merge_rejects_empty_input(self):
        with pytest.raises(StorageError):
            merge_write_vectors([])
        with pytest.raises(StorageError):
            merge_write_vectors([IOVector()])
        with pytest.raises(StorageError):
            merge_write_vectors([IOVector.for_read([(0, 4)])])

    def test_batch_rejects_mixed_blobs_and_resolves_receipts(self):
        staged = [StagedWrite("a", IOVector.for_write([(0, b"x")]), index=0),
                  StagedWrite("a", IOVector.for_write([(4, b"y")]), index=1)]
        batch = WriteBatch("a", tuple(staged))
        assert len(batch) == 2
        assert batch.total_bytes() == 2
        with pytest.raises(StorageError):
            WriteBatch("b", tuple(staged))
        with pytest.raises(StorageError):
            WriteBatch("a", ())

    def test_staged_write_version_requires_commit(self):
        staged = StagedWrite("a", IOVector.for_write([(0, b"x")]), index=0)
        assert not staged.committed
        with pytest.raises(StorageError):
            staged.version


# ----------------------------------------------------------------------
# simulated deployments
# ----------------------------------------------------------------------
def make_client(**options):
    cluster = Cluster(config=options.pop("config", ClusterConfig()), seed=1)
    deployment = BlobSeerDeployment(cluster, num_providers=3,
                                    num_metadata_providers=2,
                                    chunk_size=CHUNK)
    client = VectoredClient(deployment, cluster.add_node("compute"),
                            name="wp", **options)
    run(cluster, client.create_blob(BLOB, BLOB_SIZE, chunk_size=CHUNK))
    return cluster, deployment, client


def run(cluster, generator):
    process = cluster.sim.process(generator)
    return cluster.sim.run(stop_event=process)


class TestPipelinedCommit:
    def test_pipelined_write_roundtrips(self):
        cluster, _, client = make_client()
        receipt = run(cluster, client.vwrite(BLOB, [(0, b"p" * 300), (900, b"q" * 50)]))
        assert receipt.version == 1
        assert receipt.logical_writes == 1
        pieces = run(cluster, client.vread(BLOB, [(0, 300), (900, 50)]))
        assert pieces == [b"p" * 300, b"q" * 50]

    def test_pipelined_and_baseline_store_identical_bytes(self):
        vectors = [[(0, b"a" * 100), (500, b"b" * 400)],
                   [(50, b"c" * 200)],
                   [(450, b"d" * 100), (3000, b"e" * 700)]]
        contents = {}
        for pipelining in (False, True):
            cluster, _, client = make_client(write_pipelining=pipelining)
            for pairs in vectors:
                run(cluster, client.vwrite_and_wait(BLOB, pairs))
            contents[pipelining] = run(
                cluster, client.vread(BLOB, [(0, BLOB_SIZE)]))[0]
        assert contents[False] == contents[True]

    def test_pipelined_write_is_not_slower(self):
        elapsed = {}
        for pipelining in (False, True):
            cluster, _, client = make_client(write_pipelining=pipelining)
            receipt = run(cluster, client.vwrite(BLOB, [(0, b"z" * 1024)]))
            elapsed[pipelining] = receipt.elapsed
        assert elapsed[True] <= elapsed[False]

    def test_write_control_rpc_counters(self):
        cluster, _, client = make_client()
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"x" * 64)]))
        # allocate + ticket + complete + wait_published
        assert client.write_control_rpcs == 4
        assert client.metadata_put_rpcs >= 1
        assert client.writes == 1
        assert client.logical_writes == 1


class TestWriteThroughCache:
    def test_writer_cache_is_primed_with_published_nodes(self):
        cluster, _, client = make_client()
        receipt = run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 600)]))
        assert client.cache_primed_nodes == receipt.metadata_nodes
        assert len(client.metadata_cache) >= receipt.metadata_nodes

    def test_read_after_write_hits_from_the_first_read(self):
        cluster, _, client = make_client()
        receipt = run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 600)]))
        before = client.metadata_cache.stats.hits
        run(cluster, client.vread(BLOB, [(0, 600)], version=receipt.version))
        assert client.metadata_cache.stats.hits > before
        # the whole snapshot was self-published: zero node fetches needed
        assert client.metadata_read_rpcs == 0

    def test_write_through_can_be_disabled(self):
        cluster, _, client = make_client(write_through_cache=False)
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 600)]))
        assert client.cache_primed_nodes == 0
        assert len(client.metadata_cache) == 0

    def test_version_hint_table_tracks_publication(self):
        cluster, _, client = make_client()
        assert client.version_hints == {}
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 10)]))
        assert client.version_hints[BLOB] == 1
        run(cluster, client.vwrite_and_wait(BLOB, [(64, b"v" * 10)]))
        assert client.version_hints[BLOB] == 2


class TestCoalescer:
    def test_queued_writes_are_invisible_until_barrier(self):
        cluster, deployment, client = make_client()
        staged = run(cluster, client.vwrite_queued(BLOB, [(0, b"q" * 32)]))
        assert not staged.committed
        assert client.coalescer.pending_writes(BLOB) == 1
        assert deployment.version_manager.manager.latest_published(BLOB) == 0
        receipts = run(cluster, client.vbarrier(BLOB))
        assert staged.committed and staged.version == receipts[0].version
        assert deployment.version_manager.manager.latest_published(BLOB) == 1
        pieces = run(cluster, client.vread(BLOB, [(0, 32)]))
        assert pieces == [b"q" * 32]

    def test_coalesced_batch_is_one_snapshot_applied_in_queue_order(self):
        cluster, deployment, client = make_client()

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"1" * 100)])
            yield from client.vwrite_queued(BLOB, [(50, b"2" * 100)])
            yield from client.vwrite_queued(BLOB, [(25, b"3" * 50)])
            receipts = yield from client.vbarrier(BLOB)
            return receipts

        receipts = run(cluster, scenario())
        assert len(receipts) == 1
        assert receipts[0].logical_writes == 3
        assert deployment.version_manager.manager.latest_published(BLOB) == 1
        data = run(cluster, client.vread(BLOB, [(0, 150)]))[0]
        # later queued writes win on overlap: serial application order
        expected = bytearray(150)
        expected[0:100] = b"1" * 100
        expected[50:150] = b"2" * 100
        expected[25:75] = b"3" * 50
        assert data == bytes(expected)
        assert client.coalescer.stats.coalescing_factor == 3.0

    def test_max_batch_writes_auto_flushes(self):
        cluster, _, client = make_client()
        client.coalescer.max_batch_writes = 2

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"a" * 10)])
            assert client.coalescer.pending_writes(BLOB) == 1
            yield from client.vwrite_queued(BLOB, [(20, b"b" * 10)])
            # the second enqueue crossed the bound and flushed the batch
            assert client.coalescer.pending_writes(BLOB) == 0
            yield from client.vbarrier(BLOB)

        run(cluster, scenario())
        assert client.coalescer.stats.auto_flushes == 1
        assert client.writes == 1
        assert client.logical_writes == 2

    def test_max_batch_bytes_auto_flushes(self):
        cluster, _, client = make_client()
        client.coalescer.max_batch_bytes = 64

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"a" * 40)])
            assert client.coalescer.pending_writes(BLOB) == 1
            yield from client.vwrite_queued(BLOB, [(100, b"b" * 40)])
            assert client.coalescer.pending_writes(BLOB) == 0
            yield from client.vbarrier(BLOB)

        run(cluster, scenario())
        assert client.writes == 1

    def test_barrier_without_queued_writes_is_a_noop(self):
        cluster, _, client = make_client()
        receipts = run(cluster, client.vbarrier(BLOB))
        assert receipts == []
        assert client.writes == 0

    def test_deferred_completes_are_drained_by_barrier(self):
        cluster, _, client = make_client()

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"a" * 8)])
            yield from client.vflush(BLOB)
            yield from client.vwrite_queued(BLOB, [(16, b"b" * 8)])
            yield from client.vflush(BLOB)
            outstanding = client.writepath.outstanding(BLOB)
            yield from client.vbarrier(BLOB)
            return outstanding

        outstanding = run(cluster, scenario())
        assert outstanding >= 1  # at least one complete was still in flight
        assert client.writepath.outstanding() == 0
        assert client.version_hints[BLOB] == 2

    def test_enqueue_rejects_empty_and_read_vectors(self):
        cluster, _, client = make_client()
        with pytest.raises(StorageError):
            run(cluster, client.vwrite_queued(BLOB, []))

    def test_immediate_write_flushes_queued_writes_first(self):
        """Program order: a direct vwrite must not overtake queued writes."""
        cluster, _, client = make_client()

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"old")])
            yield from client.vwrite(BLOB, [(0, b"new")])
            yield from client.vbarrier(BLOB)
            piece = yield from client.vread(BLOB, [(0, 3)])
            return piece[0]

        data = run(cluster, scenario())
        # the queued write took the earlier ticket; the later direct write wins
        assert data == b"new"
        assert client.writes == 2 and client.logical_writes == 2


class TestCommitFailureRecovery:
    def test_failed_flush_keeps_the_queue_staged(self):
        """A commit failure must not discard queued writes (retryable)."""
        cluster, deployment, client = make_client()
        run(cluster, client.vwrite_queued(BLOB, [(0, b"keep" * 8)]))
        for provider_id in list(deployment.data_providers):
            deployment.fail_provider(provider_id)
        with pytest.raises(Exception):
            run(cluster, client.vflush(BLOB))
        assert client.coalescer.pending_writes(BLOB) == 1
        for provider_id in list(deployment.data_providers):
            deployment.recover_provider(provider_id)
        receipts = run(cluster, client.vbarrier(BLOB))
        assert len(receipts) == 1
        assert run(cluster, client.vread(BLOB, [(0, 32)])) == [b"keep" * 8]

    def test_enqueue_validates_like_an_immediate_write(self):
        """Out-of-range queued writes fail at their own call site."""
        from repro.errors import OutOfBounds
        cluster, _, client = make_client()
        with pytest.raises(OutOfBounds):
            run(cluster, client.vwrite_queued(BLOB, [(BLOB_SIZE, b"over")]))
        assert client.coalescer.pending_writes(BLOB) == 0

    def test_failed_pipelined_write_releases_its_ticket(self):
        """An upload failure must not stall publication for other writers."""
        from repro.errors import ProviderUnavailable
        cluster = Cluster(config=ClusterConfig(), seed=1)
        deployment = BlobSeerDeployment(cluster, num_providers=2,
                                        num_metadata_providers=1,
                                        chunk_size=64 * 1024)
        writer_a = VectoredClient(deployment, cluster.add_node("a"), name="a")
        writer_b = VectoredClient(deployment, cluster.add_node("b"), name="b")
        run(cluster, writer_a.create_blob(BLOB, 256 * 1024))

        def doomed_writer():
            # two 64 KiB chunks spread over both providers; data1 dies while
            # the uploads (and the overlapped ticket RPC) are in flight
            try:
                yield from writer_a.vwrite(BLOB, [(0, b"x" * (128 * 1024))])
            except ProviderUnavailable:
                return "failed"
            return "ok"

        def fail_mid_upload():
            yield cluster.sim.timeout(3e-4)  # after allocate, before upload ends
            deployment.fail_provider("bs-data1")

        def scenario():
            doomed = cluster.sim.process(doomed_writer())
            cluster.sim.process(fail_mid_upload())
            yield doomed
            outcome = doomed.value
            # the failed writer's ticket was released, so a later writer
            # can still publish (this hangs forever without the abort)
            receipt = yield from writer_b.vwrite_and_wait(
                BLOB, [(0, b"y" * 100)])
            return outcome, receipt.version

        process = cluster.sim.process(scenario())
        outcome, version = cluster.sim.run(stop_event=process)
        assert outcome == "failed"
        assert version == 2  # ticket 1 was assigned, aborted, and skipped
        assert deployment.version_manager.manager.tickets_aborted == 1
        data = run(cluster, writer_b.vread(BLOB, [(0, 100)]))
        assert data == [b"y" * 100]

    def test_metadata_store_failure_rolls_back_and_releases_the_ticket(self):
        """A put_nodes failure must not leave torn nodes or a stuck ticket."""
        from repro.errors import ProviderUnavailable
        cluster, deployment, client = make_client()
        other = VectoredClient(deployment, cluster.add_node("other"),
                               name="other")
        broken = deployment.metadata_providers[1]

        def down(nodes):
            raise ProviderUnavailable("metadata shard down")
            yield  # pragma: no cover - generator handler shape

        broken.put_nodes = down
        with pytest.raises(ProviderUnavailable):
            run(cluster, client.vwrite(BLOB, [(0, b"torn" * 200)]))
        del broken.put_nodes  # shard comes back
        # no partial nodes survived the rollback on the healthy shard
        assert deployment.metadata_store.node_count() == 0
        assert deployment.version_manager.manager.tickets_aborted == 1
        # a later writer publishes and reads back normally (no stall)
        receipt = run(cluster, other.vwrite_and_wait(BLOB, [(0, b"y" * 50)]))
        assert receipt.version == 2
        assert run(cluster, other.vread(BLOB, [(0, 50)])) == [b"y" * 50]
        # the aborted version reads as its predecessor (all zeros)
        assert run(cluster, other.vread(BLOB, [(0, 8)], version=1)) \
            == [b"\x00" * 8]

    def test_version_manager_abort_unit(self):
        from repro.blobseer.blob import BlobDescriptor
        from repro.blobseer.version_manager import VersionManager
        from repro.errors import StorageError as SE, VersionNotFound as VNF
        manager = VersionManager()
        manager.create_blob(BlobDescriptor.create("b", 1024, 64))
        v1, _ = manager.assign_ticket("b")
        v2, _ = manager.assign_ticket("b")
        with pytest.raises(VNF):
            manager.abort("b", 99)
        latest, newly = manager.abort("b", v1)
        assert latest == 1 and newly == [1]
        assert manager.snapshots_published == 0  # aborted versions don't count
        latest, newly = manager.complete("b", v2)
        assert latest == 2 and newly == [2]
        assert manager.snapshots_published == 1
        with pytest.raises(SE):
            manager.abort("b", v2)  # already published


class TestCacheCapacityConfig:
    def test_cluster_config_default_capacity_applies(self):
        config = ClusterConfig(metadata_cache_capacity=4)
        cluster, _, client = make_client(config=config)
        assert client.metadata_cache.capacity == 4
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 1024)]))
        assert len(client.metadata_cache) <= 4

    def test_client_option_overrides_config(self):
        config = ClusterConfig(metadata_cache_capacity=4)
        cluster = Cluster(config=config, seed=1)
        deployment = BlobSeerDeployment(cluster, num_providers=2,
                                        num_metadata_providers=1,
                                        chunk_size=CHUNK)
        client = VectoredClient(deployment, cluster.add_node("compute"),
                                metadata_cache_capacity=9)
        assert client.metadata_cache.capacity == 9
        # an explicit None forces unbounded even against a bounded default
        unbounded = VectoredClient(deployment, cluster.add_node("compute2"),
                                   metadata_cache_capacity=None)
        assert unbounded.metadata_cache.capacity is None


class TestFlushMaxDelay:
    """The coalescer's time-based flush bound (publication-latency SLO)."""

    def test_slow_producer_batch_publishes_within_the_bound(self):
        """A queued write flushes after flush_max_delay with no explicit
        flush — the bound FUT1's producer/consumer pattern needs."""
        cluster, deployment, client = make_client(coalesce_max_delay=0.05)
        observations = {}

        def producer():
            yield from client.vwrite_queued(BLOB, [(0, b"tick")])
            # the producer goes quiet: no flush, no barrier, no size bound
            yield cluster.sim.timeout(10.0)

        def checker():
            manager = deployment.version_manager.manager
            yield cluster.sim.timeout(0.049)
            observations["before_deadline"] = manager.latest_published(BLOB)
            yield cluster.sim.timeout(0.151)  # deadline + commit round-trips
            observations["after_deadline"] = manager.latest_published(BLOB)

        check = cluster.sim.process(checker())
        cluster.sim.process(producer())
        cluster.sim.run(stop_event=check)
        assert observations["before_deadline"] == 0  # no early flush
        assert observations["after_deadline"] == 1   # published within bound
        assert client.coalescer.stats.delay_flushes == 1
        assert client.coalescer.pending_writes(BLOB) == 0

    def test_delay_flush_commits_the_whole_accumulated_batch(self):
        cluster, deployment, client = make_client(coalesce_max_delay=0.05)

        def producer():
            # three writes inside one delay window -> one merged snapshot
            for step in range(3):
                yield from client.vwrite_queued(
                    BLOB, [(step * 16, bytes([65 + step]) * 16)])
                yield cluster.sim.timeout(0.01)
            yield cluster.sim.timeout(0.3)

        run(cluster, producer())
        assert deployment.version_manager.manager.latest_published(BLOB) == 1
        assert client.coalescer.stats.delay_flushes == 1
        assert client.coalescer.stats.batches == 1
        assert client.coalescer.stats.coalesced_writes == 3
        assert run(cluster, client.vread(BLOB, [(0, 48)])) \
            == [b"A" * 16 + b"B" * 16 + b"C" * 16]

    def test_explicit_flush_cancels_the_timer_and_rearms_for_the_next_batch(self):
        cluster, deployment, client = make_client(coalesce_max_delay=0.05)
        observations = {}

        def producer():
            yield from client.vwrite_queued(BLOB, [(0, b"one")])
            yield cluster.sim.timeout(0.01)
            yield from client.vflush(BLOB)          # beats the timer
            yield from client.vwrite_queued(BLOB, [(16, b"two")])
            # the second batch gets its own full window measured from its
            # first write (t=0.01+commit), not from the stale first timer
            yield cluster.sim.timeout(10.0)

        def checker():
            manager = deployment.version_manager.manager
            yield cluster.sim.timeout(0.055)
            # the first timer (armed at t=0) must not cut batch 2 short
            observations["after_stale_deadline"] = client.coalescer.pending_writes(BLOB)
            yield cluster.sim.timeout(0.2)
            observations["published"] = manager.latest_published(BLOB)

        check = cluster.sim.process(checker())
        cluster.sim.process(producer())
        cluster.sim.run(stop_event=check)
        assert observations["after_stale_deadline"] == 1
        assert observations["published"] == 2
        assert client.coalescer.stats.delay_flushes == 1

    def test_rejects_non_positive_delay(self):
        with pytest.raises(StorageError):
            make_client(coalesce_max_delay=0.0)


class TestReadHints:
    """vread(version=None) consumes piggybacked watermarks (elided latest RPC)."""

    def test_barrier_plants_a_hint_that_elides_the_latest_rpc(self):
        cluster, _, client = make_client()

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"data")])
            yield from client.vbarrier(BLOB)
            piece = yield from client.vread(BLOB, [(0, 4)])
            return piece[0]

        assert run(cluster, scenario()) == b"data"
        assert client.latest_rpcs_elided == 1
        # one-shot: the next read goes back to the version manager
        assert run(cluster, client.vread(BLOB, [(0, 4)])) == [b"data"]
        assert client.latest_rpcs_elided == 1

    def test_a_barrier_drops_stale_hints_so_other_writers_stay_visible(self):
        """sync->barrier->sync visibility: a hint planted before the fence
        must not hide data another client published in between."""
        cluster, deployment, client = make_client()
        other = VectoredClient(deployment, cluster.add_node("other"),
                               name="other")

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"AAAA")])
            yield from client.vbarrier(BLOB)       # plants hint at v1
            yield from other.vwrite_and_wait(BLOB, [(0, b"BBBB")])  # v2
            yield from client.vbarrier(BLOB)       # fence: flushes nothing,
                                                   # drops the stale hint
            piece = yield from client.vread(BLOB, [(0, 4)])
            return piece[0]

        assert run(cluster, scenario()) == b"BBBB"
        # only the fenced read went to the version manager
        assert client.latest_rpcs_elided == 0

    def test_note_collective_commit_plants_a_consumable_hint(self):
        cluster, _, client = make_client()
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"coll")]))
        # simulate the watermark share that closes a collective write
        client.note_collective_commit(BLOB, 1)
        assert run(cluster, client.vread(BLOB, [(0, 4)])) == [b"coll"]
        assert client.latest_rpcs_elided == 1

    def test_own_immediate_write_invalidates_a_stale_hint(self):
        """Read-your-writes: a commit after a planted hint must not let the
        next default read serve the pre-commit snapshot."""
        cluster, _, client = make_client()

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"AAAA")])
            yield from client.vbarrier(BLOB)           # plants hint at v1
            yield from client.vwrite_and_wait(BLOB, [(0, b"BBBB")])  # v2
            piece = yield from client.vread(BLOB, [(0, 4)])
            return piece[0]

        assert run(cluster, scenario()) == b"BBBB"
        assert client.latest_rpcs_elided == 0


class TestFlushWatchdogRaces:
    def test_watchdog_firing_during_an_explicit_flush_does_not_double_commit(self):
        """The staged batch stays queued while its commit's RPCs are in
        flight; a timer expiring in that window must not flush it again."""
        cluster, deployment, client = make_client(coalesce_max_delay=0.05)

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"once" * 4)])
            # start the explicit flush just before the deadline: its commit
            # round-trips span t=0.05, where the armed timer fires
            yield cluster.sim.timeout(0.049)
            yield from client.vflush(BLOB)
            yield cluster.sim.timeout(0.3)

        run(cluster, scenario())
        assert client.writes == 1
        assert client.coalescer.stats.batches == 1
        assert client.coalescer.pending_bytes(BLOB) == 0
        assert deployment.version_manager.manager.latest_published(BLOB) == 1

    def test_failed_explicit_flush_rearms_the_latency_bound(self):
        """A failed flush keeps the batch staged *and* keeps its max-delay
        bound: once the fault clears, the watchdog publishes it."""
        cluster, deployment, client = make_client(coalesce_max_delay=0.05)
        run(cluster, client.vwrite_queued(BLOB, [(0, b"bounce")]))
        for provider_id in list(deployment.data_providers):
            deployment.fail_provider(provider_id)
        with pytest.raises(Exception):
            run(cluster, client.vflush(BLOB))
        for provider_id in list(deployment.data_providers):
            deployment.recover_provider(provider_id)

        def wait_out():
            yield cluster.sim.timeout(0.3)

        run(cluster, wait_out())
        assert deployment.version_manager.manager.latest_published(BLOB) >= 1
        assert client.coalescer.pending_writes(BLOB) == 0

    def test_explicit_flush_during_a_watchdog_commit_does_not_double_commit(self):
        """The reverse race: the watchdog's commit is in flight when an
        explicit flush arrives — it must wait, not re-commit the batch."""
        cluster, deployment, client = make_client(coalesce_max_delay=0.05)

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"once" * 4)])
            # the watchdog fires at t=0.05 and starts its commit; this
            # explicit flush lands inside the commit's round-trips
            yield cluster.sim.timeout(0.051)
            receipts = yield from client.vflush(BLOB)
            yield cluster.sim.timeout(0.3)
            return receipts

        receipts = run(cluster, scenario())
        assert receipts == []  # nothing left for the explicit flush
        assert client.writes == 1
        assert client.coalescer.stats.batches == 1
        assert client.coalescer.pending_bytes(BLOB) == 0
        assert deployment.version_manager.manager.latest_published(BLOB) == 1

    def test_discard_waits_out_an_inflight_flush(self):
        """discard() must not pop a batch whose commit round-trips are in
        flight — those writes are about to publish, not to be dropped."""
        cluster, deployment, client = make_client()
        outcome = {}

        def flusher():
            yield from client.vwrite_queued(BLOB, [(0, b"keep" * 4)])
            yield from client.vflush(BLOB)

        def discarder():
            yield cluster.sim.timeout(1e-4)  # inside the commit's RPC window
            dropped = yield from client.coalescer.discard(BLOB)
            outcome["dropped"] = dropped

        processes = [cluster.sim.process(flusher()),
                     cluster.sim.process(discarder())]

        def driver():
            yield cluster.sim.all_of(processes)
            yield cluster.sim.timeout(0.1)  # let the deferred complete land

        cluster.sim.run(stop_event=cluster.sim.process(driver()))
        # the discard waited for the commit, then found nothing to drop
        assert outcome["dropped"] == []
        assert client.coalescer.stats.discarded_writes == 0
        assert client.coalescer.pending_bytes(BLOB) == 0
        assert client.writes == 1
        assert deployment.version_manager.manager.latest_published(BLOB) == 1

    def test_watchdog_retries_back_off_and_recover_on_their_own(self):
        """Persistent failure slows the retry rate (no fixed-period RPC
        spam), but the queue still publishes by itself once the backend
        recovers — no explicit flush needed."""
        cluster, deployment, client = make_client(coalesce_max_delay=0.01)
        run(cluster, client.vwrite_queued(BLOB, [(0, b"stuck")]))
        for provider_id in list(deployment.data_providers):
            deployment.fail_provider(provider_id)

        def wait_through_outage():
            yield cluster.sim.timeout(2.0)  # room for ~200 naive retries

        run(cluster, wait_through_outage())
        # exponential backoff: far fewer attempts than one per base period
        assert 2 <= client.coalescer.stats.delay_flushes <= 12
        assert client.coalescer.stats.delay_flush_failures \
            == client.coalescer.stats.delay_flushes
        assert client.coalescer.pending_writes(BLOB) == 1  # still staged

        for provider_id in list(deployment.data_providers):
            deployment.recover_provider(provider_id)

        def wait_for_retry():
            # the next backed-off retry (at most 64x the base delay away)
            # publishes without any explicit flush
            yield cluster.sim.timeout(1.0)

        run(cluster, wait_for_retry())
        assert client.coalescer.pending_writes(BLOB) == 0
        assert deployment.version_manager.manager.latest_published(BLOB) >= 1
        assert run(cluster, client.vread(BLOB, [(0, 5)])) == [b"stuck"]

    def test_batch_bound_ignores_a_batch_already_committing(self):
        """Writes staged in an in-flight commit must not count toward the
        next batch's size bound (no premature undersized snapshots)."""
        cluster, deployment, client = make_client(coalesce_max_writes=4)

        def first_batch():
            for index in range(3):
                yield from client.vwrite_queued(
                    BLOB, [(index * 16, bytes([65 + index]) * 16)])
            yield from client.vflush(BLOB)

        def late_write():
            yield cluster.sim.timeout(1e-4)  # inside the commit's RPC window
            yield from client.vwrite_queued(BLOB, [(256, b"late" * 4)])

        processes = [cluster.sim.process(first_batch()),
                     cluster.sim.process(late_write())]

        def driver():
            yield cluster.sim.all_of(processes)
            yield cluster.sim.timeout(0.1)

        cluster.sim.run(stop_event=cluster.sim.process(driver()))
        # the late write alone (1 < 4) must not have auto-flushed
        assert client.coalescer.stats.auto_flushes == 0
        assert client.coalescer.pending_writes(BLOB) == 1
        assert client.writes == 1

    def test_hint_never_serves_older_than_an_observed_watermark(self):
        """Monotonic reads: after this client observes a newer published
        version, a consumed hint must resolve to at least that version."""
        cluster, deployment, client = make_client()
        other = VectoredClient(deployment, cluster.add_node("other2"),
                               name="other2")

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"OLD!")])
            yield from client.vbarrier(BLOB)        # plants hint at v1
            yield from other.vwrite_and_wait(BLOB, [(0, b"NEW!")])  # v2
            latest = yield from client.latest_version(BLOB)  # observes 2
            piece = yield from client.vread(BLOB, [(0, 4)])
            return latest, piece[0]

        latest, data = run(cluster, scenario())
        assert latest == 2
        assert data == b"NEW!"  # the stale v1 hint resolved up to v2
        assert client.latest_rpcs_elided == 1  # still elided, now safely

    def test_global_barrier_drops_hints_for_blobs_it_never_committed(self):
        """vbarrier() with no blob argument is a global visibility fence: it
        must clear hints planted by collective commits even on clients whose
        own coalescer never committed to that BLOB."""
        cluster, deployment, client = make_client()
        other = VectoredClient(deployment, cluster.add_node("other3"),
                               name="other3")

        def scenario():
            yield from other.vwrite_and_wait(BLOB, [(0, b"v1v1")])
            # simulate a collective watermark share on a non-aggregator
            # client: a hint exists although this client never committed
            client.note_collective_commit(BLOB, 1)
            yield from other.vwrite_and_wait(BLOB, [(0, b"v2v2")])
            yield from client.vbarrier()           # global fence, no args
            piece = yield from client.vread(BLOB, [(0, 4)])
            return piece[0]

        assert run(cluster, scenario()) == b"v2v2"
        assert client.latest_rpcs_elided == 0
