"""Unit and integration tests of the write-pipeline subsystem."""

import pytest

from repro.blobseer.deployment import BlobSeerDeployment
from repro.blobseer.writepath import (
    StagedWrite,
    WriteBatch,
    merge_write_vectors,
)
from repro.cluster import Cluster, ClusterConfig
from repro.core.listio import IOVector
from repro.errors import StorageError
from repro.vstore.client import VectoredClient

BLOB = "wp-test"
BLOB_SIZE = 4096
CHUNK = 256


# ----------------------------------------------------------------------
# pure batch algebra
# ----------------------------------------------------------------------
class TestBatchAlgebra:
    def test_merge_concatenates_in_order(self):
        first = IOVector.for_write([(0, b"aa"), (10, b"bb")])
        second = IOVector.for_write([(20, b"cc")])
        merged = merge_write_vectors([first, second])
        assert [(r.offset, r.data) for r in merged] == [
            (0, b"aa"), (10, b"bb"), (20, b"cc")]

    def test_merge_rejects_empty_input(self):
        with pytest.raises(StorageError):
            merge_write_vectors([])
        with pytest.raises(StorageError):
            merge_write_vectors([IOVector()])
        with pytest.raises(StorageError):
            merge_write_vectors([IOVector.for_read([(0, 4)])])

    def test_batch_rejects_mixed_blobs_and_resolves_receipts(self):
        staged = [StagedWrite("a", IOVector.for_write([(0, b"x")]), index=0),
                  StagedWrite("a", IOVector.for_write([(4, b"y")]), index=1)]
        batch = WriteBatch("a", tuple(staged))
        assert len(batch) == 2
        assert batch.total_bytes() == 2
        with pytest.raises(StorageError):
            WriteBatch("b", tuple(staged))
        with pytest.raises(StorageError):
            WriteBatch("a", ())

    def test_staged_write_version_requires_commit(self):
        staged = StagedWrite("a", IOVector.for_write([(0, b"x")]), index=0)
        assert not staged.committed
        with pytest.raises(StorageError):
            staged.version


# ----------------------------------------------------------------------
# simulated deployments
# ----------------------------------------------------------------------
def make_client(**options):
    cluster = Cluster(config=options.pop("config", ClusterConfig()), seed=1)
    deployment = BlobSeerDeployment(cluster, num_providers=3,
                                    num_metadata_providers=2,
                                    chunk_size=CHUNK)
    client = VectoredClient(deployment, cluster.add_node("compute"),
                            name="wp", **options)
    run(cluster, client.create_blob(BLOB, BLOB_SIZE, chunk_size=CHUNK))
    return cluster, deployment, client


def run(cluster, generator):
    process = cluster.sim.process(generator)
    return cluster.sim.run(stop_event=process)


class TestPipelinedCommit:
    def test_pipelined_write_roundtrips(self):
        cluster, _, client = make_client()
        receipt = run(cluster, client.vwrite(BLOB, [(0, b"p" * 300), (900, b"q" * 50)]))
        assert receipt.version == 1
        assert receipt.logical_writes == 1
        pieces = run(cluster, client.vread(BLOB, [(0, 300), (900, 50)]))
        assert pieces == [b"p" * 300, b"q" * 50]

    def test_pipelined_and_baseline_store_identical_bytes(self):
        vectors = [[(0, b"a" * 100), (500, b"b" * 400)],
                   [(50, b"c" * 200)],
                   [(450, b"d" * 100), (3000, b"e" * 700)]]
        contents = {}
        for pipelining in (False, True):
            cluster, _, client = make_client(write_pipelining=pipelining)
            for pairs in vectors:
                run(cluster, client.vwrite_and_wait(BLOB, pairs))
            contents[pipelining] = run(
                cluster, client.vread(BLOB, [(0, BLOB_SIZE)]))[0]
        assert contents[False] == contents[True]

    def test_pipelined_write_is_not_slower(self):
        elapsed = {}
        for pipelining in (False, True):
            cluster, _, client = make_client(write_pipelining=pipelining)
            receipt = run(cluster, client.vwrite(BLOB, [(0, b"z" * 1024)]))
            elapsed[pipelining] = receipt.elapsed
        assert elapsed[True] <= elapsed[False]

    def test_write_control_rpc_counters(self):
        cluster, _, client = make_client()
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"x" * 64)]))
        # allocate + ticket + complete + wait_published
        assert client.write_control_rpcs == 4
        assert client.metadata_put_rpcs >= 1
        assert client.writes == 1
        assert client.logical_writes == 1


class TestWriteThroughCache:
    def test_writer_cache_is_primed_with_published_nodes(self):
        cluster, _, client = make_client()
        receipt = run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 600)]))
        assert client.cache_primed_nodes == receipt.metadata_nodes
        assert len(client.metadata_cache) >= receipt.metadata_nodes

    def test_read_after_write_hits_from_the_first_read(self):
        cluster, _, client = make_client()
        receipt = run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 600)]))
        before = client.metadata_cache.stats.hits
        run(cluster, client.vread(BLOB, [(0, 600)], version=receipt.version))
        assert client.metadata_cache.stats.hits > before
        # the whole snapshot was self-published: zero node fetches needed
        assert client.metadata_read_rpcs == 0

    def test_write_through_can_be_disabled(self):
        cluster, _, client = make_client(write_through_cache=False)
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 600)]))
        assert client.cache_primed_nodes == 0
        assert len(client.metadata_cache) == 0

    def test_version_hint_table_tracks_publication(self):
        cluster, _, client = make_client()
        assert client.version_hints == {}
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 10)]))
        assert client.version_hints[BLOB] == 1
        run(cluster, client.vwrite_and_wait(BLOB, [(64, b"v" * 10)]))
        assert client.version_hints[BLOB] == 2


class TestCoalescer:
    def test_queued_writes_are_invisible_until_barrier(self):
        cluster, deployment, client = make_client()
        staged = run(cluster, client.vwrite_queued(BLOB, [(0, b"q" * 32)]))
        assert not staged.committed
        assert client.coalescer.pending_writes(BLOB) == 1
        assert deployment.version_manager.manager.latest_published(BLOB) == 0
        receipts = run(cluster, client.vbarrier(BLOB))
        assert staged.committed and staged.version == receipts[0].version
        assert deployment.version_manager.manager.latest_published(BLOB) == 1
        pieces = run(cluster, client.vread(BLOB, [(0, 32)]))
        assert pieces == [b"q" * 32]

    def test_coalesced_batch_is_one_snapshot_applied_in_queue_order(self):
        cluster, deployment, client = make_client()

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"1" * 100)])
            yield from client.vwrite_queued(BLOB, [(50, b"2" * 100)])
            yield from client.vwrite_queued(BLOB, [(25, b"3" * 50)])
            receipts = yield from client.vbarrier(BLOB)
            return receipts

        receipts = run(cluster, scenario())
        assert len(receipts) == 1
        assert receipts[0].logical_writes == 3
        assert deployment.version_manager.manager.latest_published(BLOB) == 1
        data = run(cluster, client.vread(BLOB, [(0, 150)]))[0]
        # later queued writes win on overlap: serial application order
        expected = bytearray(150)
        expected[0:100] = b"1" * 100
        expected[50:150] = b"2" * 100
        expected[25:75] = b"3" * 50
        assert data == bytes(expected)
        assert client.coalescer.stats.coalescing_factor == 3.0

    def test_max_batch_writes_auto_flushes(self):
        cluster, _, client = make_client()
        client.coalescer.max_batch_writes = 2

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"a" * 10)])
            assert client.coalescer.pending_writes(BLOB) == 1
            yield from client.vwrite_queued(BLOB, [(20, b"b" * 10)])
            # the second enqueue crossed the bound and flushed the batch
            assert client.coalescer.pending_writes(BLOB) == 0
            yield from client.vbarrier(BLOB)

        run(cluster, scenario())
        assert client.coalescer.stats.auto_flushes == 1
        assert client.writes == 1
        assert client.logical_writes == 2

    def test_max_batch_bytes_auto_flushes(self):
        cluster, _, client = make_client()
        client.coalescer.max_batch_bytes = 64

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"a" * 40)])
            assert client.coalescer.pending_writes(BLOB) == 1
            yield from client.vwrite_queued(BLOB, [(100, b"b" * 40)])
            assert client.coalescer.pending_writes(BLOB) == 0
            yield from client.vbarrier(BLOB)

        run(cluster, scenario())
        assert client.writes == 1

    def test_barrier_without_queued_writes_is_a_noop(self):
        cluster, _, client = make_client()
        receipts = run(cluster, client.vbarrier(BLOB))
        assert receipts == []
        assert client.writes == 0

    def test_deferred_completes_are_drained_by_barrier(self):
        cluster, _, client = make_client()

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"a" * 8)])
            yield from client.vflush(BLOB)
            yield from client.vwrite_queued(BLOB, [(16, b"b" * 8)])
            yield from client.vflush(BLOB)
            outstanding = client.writepath.outstanding(BLOB)
            yield from client.vbarrier(BLOB)
            return outstanding

        outstanding = run(cluster, scenario())
        assert outstanding >= 1  # at least one complete was still in flight
        assert client.writepath.outstanding() == 0
        assert client.version_hints[BLOB] == 2

    def test_enqueue_rejects_empty_and_read_vectors(self):
        cluster, _, client = make_client()
        with pytest.raises(StorageError):
            run(cluster, client.vwrite_queued(BLOB, []))

    def test_immediate_write_flushes_queued_writes_first(self):
        """Program order: a direct vwrite must not overtake queued writes."""
        cluster, _, client = make_client()

        def scenario():
            yield from client.vwrite_queued(BLOB, [(0, b"old")])
            yield from client.vwrite(BLOB, [(0, b"new")])
            yield from client.vbarrier(BLOB)
            piece = yield from client.vread(BLOB, [(0, 3)])
            return piece[0]

        data = run(cluster, scenario())
        # the queued write took the earlier ticket; the later direct write wins
        assert data == b"new"
        assert client.writes == 2 and client.logical_writes == 2


class TestCommitFailureRecovery:
    def test_failed_flush_keeps_the_queue_staged(self):
        """A commit failure must not discard queued writes (retryable)."""
        cluster, deployment, client = make_client()
        run(cluster, client.vwrite_queued(BLOB, [(0, b"keep" * 8)]))
        for provider_id in list(deployment.data_providers):
            deployment.fail_provider(provider_id)
        with pytest.raises(Exception):
            run(cluster, client.vflush(BLOB))
        assert client.coalescer.pending_writes(BLOB) == 1
        for provider_id in list(deployment.data_providers):
            deployment.recover_provider(provider_id)
        receipts = run(cluster, client.vbarrier(BLOB))
        assert len(receipts) == 1
        assert run(cluster, client.vread(BLOB, [(0, 32)])) == [b"keep" * 8]

    def test_enqueue_validates_like_an_immediate_write(self):
        """Out-of-range queued writes fail at their own call site."""
        from repro.errors import OutOfBounds
        cluster, _, client = make_client()
        with pytest.raises(OutOfBounds):
            run(cluster, client.vwrite_queued(BLOB, [(BLOB_SIZE, b"over")]))
        assert client.coalescer.pending_writes(BLOB) == 0

    def test_failed_pipelined_write_releases_its_ticket(self):
        """An upload failure must not stall publication for other writers."""
        from repro.errors import ProviderUnavailable
        cluster = Cluster(config=ClusterConfig(), seed=1)
        deployment = BlobSeerDeployment(cluster, num_providers=2,
                                        num_metadata_providers=1,
                                        chunk_size=64 * 1024)
        writer_a = VectoredClient(deployment, cluster.add_node("a"), name="a")
        writer_b = VectoredClient(deployment, cluster.add_node("b"), name="b")
        run(cluster, writer_a.create_blob(BLOB, 256 * 1024))

        def doomed_writer():
            # two 64 KiB chunks spread over both providers; data1 dies while
            # the uploads (and the overlapped ticket RPC) are in flight
            try:
                yield from writer_a.vwrite(BLOB, [(0, b"x" * (128 * 1024))])
            except ProviderUnavailable:
                return "failed"
            return "ok"

        def fail_mid_upload():
            yield cluster.sim.timeout(3e-4)  # after allocate, before upload ends
            deployment.fail_provider("bs-data1")

        def scenario():
            doomed = cluster.sim.process(doomed_writer())
            cluster.sim.process(fail_mid_upload())
            yield doomed
            outcome = doomed.value
            # the failed writer's ticket was released, so a later writer
            # can still publish (this hangs forever without the abort)
            receipt = yield from writer_b.vwrite_and_wait(
                BLOB, [(0, b"y" * 100)])
            return outcome, receipt.version

        process = cluster.sim.process(scenario())
        outcome, version = cluster.sim.run(stop_event=process)
        assert outcome == "failed"
        assert version == 2  # ticket 1 was assigned, aborted, and skipped
        assert deployment.version_manager.manager.tickets_aborted == 1
        data = run(cluster, writer_b.vread(BLOB, [(0, 100)]))
        assert data == [b"y" * 100]

    def test_metadata_store_failure_rolls_back_and_releases_the_ticket(self):
        """A put_nodes failure must not leave torn nodes or a stuck ticket."""
        from repro.errors import ProviderUnavailable
        cluster, deployment, client = make_client()
        other = VectoredClient(deployment, cluster.add_node("other"),
                               name="other")
        broken = deployment.metadata_providers[1]

        def down(nodes):
            raise ProviderUnavailable("metadata shard down")
            yield  # pragma: no cover - generator handler shape

        broken.put_nodes = down
        with pytest.raises(ProviderUnavailable):
            run(cluster, client.vwrite(BLOB, [(0, b"torn" * 200)]))
        del broken.put_nodes  # shard comes back
        # no partial nodes survived the rollback on the healthy shard
        assert deployment.metadata_store.node_count() == 0
        assert deployment.version_manager.manager.tickets_aborted == 1
        # a later writer publishes and reads back normally (no stall)
        receipt = run(cluster, other.vwrite_and_wait(BLOB, [(0, b"y" * 50)]))
        assert receipt.version == 2
        assert run(cluster, other.vread(BLOB, [(0, 50)])) == [b"y" * 50]
        # the aborted version reads as its predecessor (all zeros)
        assert run(cluster, other.vread(BLOB, [(0, 8)], version=1)) \
            == [b"\x00" * 8]

    def test_version_manager_abort_unit(self):
        from repro.blobseer.blob import BlobDescriptor
        from repro.blobseer.version_manager import VersionManager
        from repro.errors import StorageError as SE, VersionNotFound as VNF
        manager = VersionManager()
        manager.create_blob(BlobDescriptor.create("b", 1024, 64))
        v1, _ = manager.assign_ticket("b")
        v2, _ = manager.assign_ticket("b")
        with pytest.raises(VNF):
            manager.abort("b", 99)
        latest, newly = manager.abort("b", v1)
        assert latest == 1 and newly == [1]
        assert manager.snapshots_published == 0  # aborted versions don't count
        latest, newly = manager.complete("b", v2)
        assert latest == 2 and newly == [2]
        assert manager.snapshots_published == 1
        with pytest.raises(SE):
            manager.abort("b", v2)  # already published


class TestCacheCapacityConfig:
    def test_cluster_config_default_capacity_applies(self):
        config = ClusterConfig(metadata_cache_capacity=4)
        cluster, _, client = make_client(config=config)
        assert client.metadata_cache.capacity == 4
        run(cluster, client.vwrite_and_wait(BLOB, [(0, b"w" * 1024)]))
        assert len(client.metadata_cache) <= 4

    def test_client_option_overrides_config(self):
        config = ClusterConfig(metadata_cache_capacity=4)
        cluster = Cluster(config=config, seed=1)
        deployment = BlobSeerDeployment(cluster, num_providers=2,
                                        num_metadata_providers=1,
                                        chunk_size=CHUNK)
        client = VectoredClient(deployment, cluster.add_node("compute"),
                                metadata_cache_capacity=9)
        assert client.metadata_cache.capacity == 9
        # an explicit None forces unbounded even against a bounded default
        unbounded = VectoredClient(deployment, cluster.add_node("compute2"),
                                   metadata_cache_capacity=None)
        assert unbounded.metadata_cache.capacity is None
