"""Unit tests for the shared-cache eviction policies."""

import pytest

from repro.blobseer.metadata.policy import (
    LevelAwarePolicy,
    LRUPolicy,
    SegmentedLRUPolicy,
    make_policy,
)
from repro.errors import StorageError


def key(offset, size, hint=1, blob="b"):
    return (blob, offset, size, hint)


class TestLRUPolicy:
    def test_victim_is_least_recently_used(self):
        policy = LRUPolicy()
        policy.record_insert(key(0, 4))
        policy.record_insert(key(4, 4))
        policy.record_insert(key(8, 4))
        assert policy.select_victim() == key(0, 4)

    def test_hit_refreshes_recency(self):
        policy = LRUPolicy()
        policy.record_insert(key(0, 4))
        policy.record_insert(key(4, 4))
        policy.record_hit(key(0, 4))
        assert policy.select_victim() == key(4, 4)

    def test_remove_forgets_the_key(self):
        policy = LRUPolicy()
        policy.record_insert(key(0, 4))
        policy.record_remove(key(0, 4))
        assert policy.select_victim() is None

    def test_reinsert_refreshes_recency(self):
        policy = LRUPolicy()
        policy.record_insert(key(0, 4))
        policy.record_insert(key(4, 4))
        policy.record_insert(key(0, 4))
        assert policy.select_victim() == key(4, 4)


class TestSegmentedLRUPolicy:
    def test_new_entries_are_probationary_victims_first(self):
        policy = SegmentedLRUPolicy()
        policy.record_insert(key(0, 4))
        policy.record_hit(key(0, 4))  # promoted to protected
        policy.record_insert(key(4, 4))
        # the probationary newcomer goes before the proven entry
        assert policy.select_victim() == key(4, 4)

    def test_scan_resistance(self):
        """A streaming scan of fresh keys cannot flush a proven entry."""
        policy = SegmentedLRUPolicy()
        hot = key(0, 4)
        policy.record_insert(hot)
        policy.record_hit(hot)
        for index in range(1, 20):
            policy.record_insert(key(index * 4, 4))
            assert policy.select_victim() != hot

    def test_protected_segment_is_bounded(self):
        policy = SegmentedLRUPolicy(protected_fraction=0.5)
        for index in range(4):
            policy.record_insert(key(index * 4, 4))
        for index in range(4):
            policy.record_hit(key(index * 4, 4))
        # at most half the entries stay protected; demoted ones are
        # evictable again
        assert len(policy._protected) <= 2
        assert policy.select_victim() is not None

    def test_bad_fraction_rejected(self):
        with pytest.raises(StorageError):
            SegmentedLRUPolicy(protected_fraction=1.5)


class TestLevelAwarePolicy:
    ROOT = 1024

    def setup_policy(self, pin_levels=2):
        policy = LevelAwarePolicy(pin_levels=pin_levels)
        # a traversal always resolves the root first
        policy.record_insert(key(0, self.ROOT))
        return policy

    def test_root_span_is_learned_and_pins_top_levels(self):
        policy = self.setup_policy(pin_levels=2)
        assert policy.pinned(key(0, self.ROOT))
        assert policy.pinned(key(0, self.ROOT // 2))
        assert not policy.pinned(key(0, self.ROOT // 4))

    def test_victims_are_deepest_first(self):
        policy = self.setup_policy(pin_levels=1)
        policy.record_insert(key(0, self.ROOT // 2))   # level 1
        policy.record_insert(key(0, self.ROOT // 8))   # level 3 (deepest)
        policy.record_insert(key(0, self.ROOT // 4))   # level 2
        assert policy.select_victim() == key(0, self.ROOT // 8)

    def test_pinned_entries_survive_unpinned_ones(self):
        policy = self.setup_policy(pin_levels=2)
        policy.record_insert(key(0, self.ROOT // 4))
        # root and its child level are pinned; only the deeper entry leaves
        assert policy.select_victim() == key(0, self.ROOT // 4)

    def test_lru_breaks_ties_within_a_level(self):
        policy = self.setup_policy(pin_levels=1)
        policy.record_insert(key(0, self.ROOT // 4))
        policy.record_insert(key(256, self.ROOT // 4))
        policy.record_hit(key(0, self.ROOT // 4))
        assert policy.select_victim() == key(256, self.ROOT // 4)

    def test_falls_back_to_lru_when_everything_is_pinned(self):
        policy = self.setup_policy(pin_levels=5)
        policy.record_insert(key(0, self.ROOT // 2))
        # both entries pinned: degrade to LRU instead of refusing
        assert policy.select_victim() == key(0, self.ROOT)

    def test_per_blob_root_spans(self):
        policy = LevelAwarePolicy(pin_levels=1)
        policy.record_insert(key(0, 1024, blob="big"))
        policy.record_insert(key(0, 64, blob="small"))
        assert policy.pinned(key(0, 1024, blob="big"))
        # 64 is "small"'s root (largest span seen for that BLOB)
        assert policy.pinned(key(0, 64, blob="small"))
        assert not policy.pinned(key(0, 64, blob="big"))

    def test_bad_pin_levels_rejected(self):
        with pytest.raises(StorageError):
            LevelAwarePolicy(pin_levels=0)


class TestMakePolicy:
    def test_names_resolve(self):
        assert make_policy("lru").name == "lru"
        assert make_policy("slru").name == "slru"
        assert make_policy("2q").name == "slru"
        assert make_policy("level").name == "level"

    def test_level_argument(self):
        policy = make_policy("level:5")
        assert isinstance(policy, LevelAwarePolicy)
        assert policy.pin_levels == 5

    def test_instance_passthrough(self):
        instance = LRUPolicy()
        assert make_policy(instance) is instance

    def test_bad_specs_rejected(self):
        with pytest.raises(StorageError):
            make_policy("clock")
        with pytest.raises(StorageError):
            make_policy("lru:3")
        with pytest.raises(StorageError):
            make_policy("level:many")
        with pytest.raises(StorageError):
            make_policy(42)
