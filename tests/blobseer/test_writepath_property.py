"""Property-based tests of the write pipeline.

Two guarantees are exercised under randomized write sequences:

1. **Equivalence** — committing a sequence of vectored writes through the
   coalescer (arbitrary batch boundaries, pipelined commits, deferred
   completions) yields snapshots byte-identical to a model that applies the
   same writes serially; checked at *every* published version, not just the
   final one.
2. **Ticket order under interleaved writers** — with several clients
   queueing and flushing concurrently, every published snapshot still equals
   the serial application of the committed batches in version-ticket order
   (the paper's MPI-atomicity argument, lifted to batch granularity).
"""

from hypothesis import given, settings, strategies as st

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.vstore.client import VectoredClient

BLOB = "prop"
BLOB_SIZE = 512
CHUNK = 32


@st.composite
def write_sequences(draw, max_writes=6, max_regions=3, max_region_size=48):
    """A sequence of vectored writes plus random batch boundaries."""
    write_count = draw(st.integers(1, max_writes))
    writes = []
    for index in range(write_count):
        region_count = draw(st.integers(1, max_regions))
        pairs = []
        for _ in range(region_count):
            offset = draw(st.integers(0, BLOB_SIZE - max_region_size))
            size = draw(st.integers(1, max_region_size))
            fill = bytes([33 + (index * 7) % 90]) * size
            pairs.append((offset, fill))
        writes.append(pairs)
    # flush after write i iff boundaries[i] (the last batch always flushes)
    boundaries = [draw(st.booleans()) for _ in writes]
    return writes, boundaries


def apply_serially(initial, writes):
    """Reference model: apply whole vectored writes in order."""
    content = bytearray(initial)
    for pairs in writes:
        for offset, payload in pairs:
            content[offset:offset + len(payload)] = payload
    return bytes(content)


def make_deployment(num_clients=1):
    cluster = Cluster(config=ClusterConfig(network_latency=1e-5), seed=7)
    deployment = BlobSeerDeployment(cluster, num_providers=2,
                                    num_metadata_providers=2,
                                    chunk_size=CHUNK)
    clients = [VectoredClient(deployment, cluster.add_node(f"rank{i}"),
                              name=f"rank{i}")
               for i in range(num_clients)]
    return cluster, deployment, clients


@settings(max_examples=25, deadline=None)
@given(sequence=write_sequences())
def test_coalesced_commits_equal_serial_application_at_every_version(sequence):
    writes, boundaries = sequence
    cluster, deployment, (client,) = make_deployment()

    def scenario():
        yield from client.create_blob(BLOB, BLOB_SIZE, chunk_size=CHUNK)
        batches = []  # list of write-index lists, one per flushed batch
        current = []
        for index, pairs in enumerate(writes):
            yield from client.vwrite_queued(BLOB, pairs)
            current.append(index)
            if boundaries[index]:
                yield from client.vflush(BLOB)
                batches.append(current)
                current = []
        yield from client.vbarrier(BLOB)
        if current:
            batches.append(current)
        snapshots = {}
        latest = deployment.version_manager.manager.latest_published(BLOB)
        for version in range(1, latest + 1):
            piece = yield from client.vread(BLOB, [(0, BLOB_SIZE)], version)
            snapshots[version] = piece[0]
        return batches, snapshots

    process = cluster.sim.process(scenario())
    batches, snapshots = cluster.sim.run(stop_event=process)

    # every published version equals the serial application of the writes
    # of all batches committed up to it, in queue order
    assert len(snapshots) == len(batches)
    done = []
    for version, batch in enumerate(batches, start=1):
        done.extend(batch)
        expected = apply_serially(b"\x00" * BLOB_SIZE,
                                  [writes[i] for i in done])
        assert snapshots[version] == expected, (
            f"version {version} diverges from serial application")


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_interleaved_coalescing_writers_publish_in_ticket_order(data):
    writer_count = data.draw(st.integers(2, 3), label="writers")
    sequences = [data.draw(write_sequences(max_writes=4), label=f"writer{i}")
                 for i in range(writer_count)]
    cluster, deployment, clients = make_deployment(num_clients=writer_count)

    batch_contents = {}  # version -> list of write pair-lists, queue order

    def writer(rank):
        client = clients[rank]
        writes, boundaries = sequences[rank]
        current = []
        for index, pairs in enumerate(writes):
            # per-writer jitter interleaves enqueues and flushes across ranks
            delay = cluster.sim.rng.uniform(f"w{rank}.{index}", 0, 1e-3)
            yield cluster.sim.timeout(delay)
            yield from client.vwrite_queued(BLOB, pairs)
            current.append(pairs)
            if boundaries[index]:
                receipts = yield from client.vflush(BLOB)
                batch_contents[receipts[-1].version] = list(current)
                current = []
        receipts = yield from client.vbarrier(BLOB)
        if current:
            batch_contents[receipts[-1].version] = list(current)

    def scenario():
        yield from clients[0].create_blob(BLOB, BLOB_SIZE, chunk_size=CHUNK)
        processes = [cluster.sim.process(writer(rank))
                     for rank in range(writer_count)]
        yield cluster.sim.all_of(processes)
        latest = deployment.version_manager.manager.latest_published(BLOB)
        snapshots = {}
        for version in range(1, latest + 1):
            piece = yield from clients[0].vread(BLOB, [(0, BLOB_SIZE)], version)
            snapshots[version] = piece[0]
        return latest, snapshots

    process = cluster.sim.process(scenario())
    latest, snapshots = cluster.sim.run(stop_event=process)

    # every ticket that was handed out got published, in order, and each
    # snapshot equals the serial application of batches in ticket order
    assert sorted(batch_contents) == list(range(1, latest + 1))
    content = b"\x00" * BLOB_SIZE
    for version in range(1, latest + 1):
        content = apply_serially(content, batch_contents[version])
        assert snapshots[version] == content, (
            f"version {version} diverges from ticket-order application")
