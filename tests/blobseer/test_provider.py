"""Unit tests for data providers and the provider manager."""

import pytest

from repro.blobseer.chunk import ChunkKey, ChunkKeyFactory
from repro.blobseer.provider import DataProviderStore
from repro.blobseer.provider_manager import (
    LoadBalancedAllocation,
    ProviderManager,
    RandomAllocation,
    RoundRobinAllocation,
    make_strategy,
)
from repro.errors import ChunkNotFound, ProviderUnavailable


class TestChunkKeys:
    def test_factory_generates_unique_keys(self):
        factory = ChunkKeyFactory("writer-a")
        keys = {factory.next_key() for _ in range(100)}
        assert len(keys) == 100

    def test_keys_from_different_writers_differ(self):
        assert ChunkKeyFactory("a").next_key() != ChunkKeyFactory("b").next_key()


class TestDataProviderStore:
    def test_put_and_get(self):
        store = DataProviderStore("p0")
        key = ChunkKey("w", 0)
        store.put_chunk(key, b"payload")
        assert store.get_chunk(key) == b"payload"
        assert store.has_chunk(key)
        assert store.chunk_count() == 1
        assert store.stored_bytes() == 7

    def test_missing_chunk_raises(self):
        with pytest.raises(ChunkNotFound):
            DataProviderStore("p0").get_chunk(ChunkKey("w", 0))

    def test_idempotent_reput(self):
        store = DataProviderStore("p0")
        key = ChunkKey("w", 0)
        store.put_chunk(key, b"data")
        store.put_chunk(key, b"data")
        assert store.chunk_count() == 1

    def test_reput_with_different_content_rejected(self):
        store = DataProviderStore("p0")
        key = ChunkKey("w", 0)
        store.put_chunk(key, b"data")
        with pytest.raises(ProviderUnavailable):
            store.put_chunk(key, b"DIFFERENT")

    def test_failed_provider_rejects_access(self):
        store = DataProviderStore("p0")
        key = ChunkKey("w", 0)
        store.put_chunk(key, b"data")
        store.fail()
        with pytest.raises(ProviderUnavailable):
            store.get_chunk(key)
        with pytest.raises(ProviderUnavailable):
            store.put_chunk(ChunkKey("w", 1), b"x")
        store.recover()
        assert store.get_chunk(key) == b"data"

    def test_counters(self):
        store = DataProviderStore("p0")
        key = ChunkKey("w", 0)
        store.put_chunk(key, b"1234")
        store.get_chunk(key)
        assert store.bytes_written == 4
        assert store.bytes_read == 4


class TestAllocationStrategies:
    def test_round_robin_cycles(self):
        strategy = RoundRobinAllocation()
        chosen = strategy.select(["a", "b", "c"], [1] * 7, {})
        assert chosen == ["a", "b", "c", "a", "b", "c", "a"]

    def test_round_robin_continues_across_calls(self):
        strategy = RoundRobinAllocation()
        strategy.select(["a", "b"], [1], {})
        assert strategy.select(["a", "b"], [1], {}) == ["b"]

    def test_load_balanced_prefers_least_loaded(self):
        strategy = LoadBalancedAllocation()
        chosen = strategy.select(["a", "b"], [10, 10, 10], {"a": 100, "b": 0})
        assert chosen == ["b", "b", "b"][:1] + chosen[1:]
        assert chosen[0] == "b"

    def test_load_balanced_spreads_equal_load(self):
        strategy = LoadBalancedAllocation()
        chosen = strategy.select(["a", "b"], [10, 10, 10, 10], {})
        assert sorted(chosen) == ["a", "a", "b", "b"]

    def test_random_is_deterministic_per_seed(self):
        a = RandomAllocation(seed=5).select(["a", "b", "c"], [1] * 20, {})
        b = RandomAllocation(seed=5).select(["a", "b", "c"], [1] * 20, {})
        assert a == b

    def test_make_strategy(self):
        assert make_strategy("round_robin").name == "round_robin"
        assert make_strategy("load_balanced").name == "load_balanced"
        assert make_strategy("random").name == "random"
        with pytest.raises(ValueError):
            make_strategy("nope")


class TestProviderManager:
    def test_allocation_updates_load(self):
        manager = ProviderManager(RoundRobinAllocation())
        manager.register("a")
        manager.register("b")
        chosen = manager.allocate([100, 200, 300])
        assert chosen == ["a", "b", "a"]
        assert manager.allocated_bytes["a"] == 400
        assert manager.allocated_bytes["b"] == 200

    def test_no_providers_raises(self):
        with pytest.raises(ProviderUnavailable):
            ProviderManager().allocate([1])

    def test_failed_provider_excluded(self):
        manager = ProviderManager(RoundRobinAllocation())
        manager.register("a")
        manager.register("b")
        manager.mark_failed("a")
        assert manager.alive_providers == ["b"]
        assert manager.allocate([1, 1]) == ["b", "b"]
        manager.mark_recovered("a")
        assert "a" in manager.alive_providers

    def test_recover_unknown_provider_raises(self):
        with pytest.raises(ProviderUnavailable):
            ProviderManager().mark_recovered("ghost")

    def test_load_imbalance_metric(self):
        manager = ProviderManager(RoundRobinAllocation())
        manager.register("a")
        manager.register("b")
        assert manager.load_imbalance() == 1.0
        manager.allocate([100, 100])
        assert manager.load_imbalance() == pytest.approx(1.0)
