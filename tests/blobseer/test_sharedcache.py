"""Unit tests for the node-local shared metadata cache service.

The load-bearing property is the *admission gate*: the shared tier outlives
its clients, so it must never hold an entry whose version hint exceeds the
newest published version the node has observed — that is what keeps a
crashed co-tenant's pre-publication write-through state from poisoning every
later reader on the node (aborted tickets publish empty, so a stale entry
under that version would serve rolled-back nodes).
"""

import pytest

from repro.blobseer.metadata.nodes import MetadataNode, NodeKey
from repro.blobseer.metadata.policy import LevelAwarePolicy
from repro.blobseer.metadata.sharedcache import NodeCacheService
from repro.errors import StorageError


def make_node(version=1, offset=0, size=64, blob="b"):
    return MetadataNode(key=NodeKey(blob, version, offset, size),
                        is_leaf=True, segments=(), base_version=0)


class TestAdmissionGate:
    def test_unpublished_version_is_rejected(self):
        """RED-FIRST for the gate: an entry of a version nobody has seen
        published must never enter the shared pool."""
        service = NodeCacheService("n0")
        node = make_node(version=5)
        assert not service.publish("b", 0, 64, 5, node)
        assert len(service) == 0
        assert service.stats.unpublished_rejections == 1
        found, _ = service.get("b", 0, 64, 5)
        assert not found

    def test_published_version_is_admitted(self):
        service = NodeCacheService("n0")
        service.note_published("b", 5)
        node = make_node(version=5)
        assert service.publish("b", 0, 64, 5, node)
        found, cached = service.get("b", 0, 64, 5)
        assert found and cached is node

    def test_gate_opens_when_the_watermark_advances(self):
        service = NodeCacheService("n0")
        node = make_node(version=5)
        assert not service.publish("b", 0, 64, 5, node)
        service.note_published("b", 5)
        assert service.publish("b", 0, 64, 5, node)

    def test_negative_entries_pass_the_same_gate(self):
        service = NodeCacheService("n0")
        assert not service.publish("b", 0, 64, 3, None)
        service.note_published("b", 3)
        assert service.publish("b", 0, 64, 3, None)
        found, cached = service.get("b", 0, 64, 3)
        assert found and cached is None

    def test_watermarks_are_per_blob(self):
        service = NodeCacheService("n0")
        service.note_published("a", 9)
        assert not service.publish("b", 0, 64, 1, make_node())
        assert service.publish("a", 0, 64, 9, make_node(version=9, blob="a"))

    def test_watermark_never_regresses(self):
        service = NodeCacheService("n0")
        service.note_published("b", 7)
        service.note_published("b", 3)
        assert service.watermark("b") == 7


class TestLookupSemantics:
    def test_miss_then_hit_with_stats(self):
        service = NodeCacheService("n0")
        service.note_published("b", 1)
        found, _ = service.get("b", 0, 64, 1)
        assert not found
        service.publish("b", 0, 64, 1, make_node())
        found, _ = service.get("b", 0, 64, 1)
        assert found
        assert service.stats.hits == 1
        assert service.stats.misses == 1
        assert service.stats.hit_rate == 0.5

    def test_alias_under_exact_version(self):
        """A node fetched under a newer hint is also visible under its own
        version — co-located traversals of other snapshots share it."""
        service = NodeCacheService("n0")
        service.note_published("b", 9)
        node = make_node(version=4)
        service.publish("b", 0, 64, 9, node)
        found, cached = service.get("b", 0, 64, 4)
        assert found and cached is node

    def test_clear_keeps_watermarks_and_counters(self):
        service = NodeCacheService("n0")
        service.note_published("b", 2)
        service.publish("b", 0, 64, 2, make_node(version=2))
        service.clear()
        assert len(service) == 0
        assert service.watermark("b") == 2
        assert service.stats.insertions == 1


class TestEviction:
    def test_capacity_bound_evicts_via_the_policy(self):
        service = NodeCacheService("n0", capacity=2)
        service.note_published("b", 1)
        for offset in (0, 64, 128):
            service.publish("b", offset, 64, 1,
                            make_node(offset=offset))
        assert len(service) == 2
        assert service.stats.evictions == 1
        found, _ = service.get("b", 0, 64, 1)
        assert not found  # the LRU entry left

    def test_level_policy_keeps_the_root_resident(self):
        service = NodeCacheService("n0", capacity=2,
                                   policy=LevelAwarePolicy(pin_levels=1))
        service.note_published("b", 1)
        root = make_node(size=1024)
        service.publish("b", 0, 1024, 1, root)
        for offset in (0, 64, 128, 192):
            service.publish("b", offset, 64, 1, make_node(offset=offset))
        found, cached = service.get("b", 0, 1024, 1)
        assert found and cached is root

    def test_declined_admission_rolls_its_insertion_back(self):
        """When everything resident is pinned and the policy picks the
        newcomer itself, the decline must not leave a phantom insertion —
        insertions - evictions always reconciles with resident entries."""
        service = NodeCacheService("n0", capacity=2,
                                   policy=LevelAwarePolicy(pin_levels=2))
        service.note_published("b", 1)
        service.publish("b", 0, 1024, 1, make_node(size=1024))
        service.publish("b", 0, 512, 1, make_node(size=512))
        # both residents are pinned top levels; a leaf newcomer is declined
        assert not service.publish("b", 0, 64, 1, make_node())
        assert service.stats.capacity_rejections == 1
        assert service.stats.evictions == 0
        assert service.stats.insertions == len(service) == 2

    def test_policy_spec_from_string(self):
        service = NodeCacheService("n0", policy="level:4")
        assert service.policy.pin_levels == 4

    def test_bad_capacity_rejected(self):
        with pytest.raises(StorageError):
            NodeCacheService("n0", capacity=0)


class TestAttachment:
    def test_attach_detach_bookkeeping(self):
        service = NodeCacheService("n0")
        service.attach("rank0")
        service.attach("rank1")
        service.detach("rank0")
        assert service.attached == ["rank1"]
        service.detach("rank0")  # idempotent
        assert service.attached == ["rank1"]

    def test_entries_survive_detach(self):
        service = NodeCacheService("n0")
        service.attach("rank0")
        service.note_published("b", 1)
        service.publish("b", 0, 64, 1, make_node())
        service.detach("rank0")
        found, _ = service.get("b", 0, 64, 1)
        assert found

    def test_reattach_is_idempotent(self):
        """RED-FIRST for the phantom-attachment bug: a client re-attaching
        (e.g. a retried constructor path) must not hold two slots, or a
        single detach leaves a phantom tenant behind forever."""
        service = NodeCacheService("n0")
        service.attach("rank0")
        service.attach("rank0")
        assert service.attached == ["rank0"]
        service.detach("rank0")
        assert service.attached == []

    def test_deployment_stats_assert_no_duplicate_attachments(self):
        """The aggregate stats walk doubles as the invariant's tripwire:
        a duplicate smuggled past attach() must raise, not be summed."""
        from repro.blobseer.deployment import BlobSeerDeployment
        from repro.cluster import Cluster, ClusterConfig

        cluster = Cluster(config=ClusterConfig(shared_metadata_cache=True))
        deployment = BlobSeerDeployment(cluster, num_providers=1,
                                        num_metadata_providers=1,
                                        chunk_size=4096)
        service = deployment.node_cache(cluster.add_node("cn0"))
        assert deployment.shared_cache_stats()["attached_clients"] == 0
        service.attached.append("ghost")  # forced corruption
        service.attached.append("ghost")
        with pytest.raises(StorageError):
            deployment.shared_cache_stats()
