"""Unit tests for the client-side metadata node cache."""

import pytest

from repro.blobseer.chunk import ChunkKey
from repro.blobseer.metadata.cache import MetadataNodeCache
from repro.blobseer.metadata.nodes import LeafSegment, MetadataNode, NodeKey


def leaf(version, offset=0, size=64):
    segment = LeafSegment(0, 8, ChunkKey("w", version), 0, "p0")
    return MetadataNode(NodeKey("b", version, offset, size), True,
                        segments=(segment,), base_version=version - 1)


class TestMetadataNodeCache:
    def test_miss_then_hit(self):
        cache = MetadataNodeCache()
        found, node = cache.get("b", 0, 64, 3)
        assert (found, node) == (False, None)
        stored = leaf(3)
        cache.put("b", 0, 64, 3, stored)
        found, node = cache.get("b", 0, 64, 3)
        assert found and node is stored
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_negative_result_is_cached(self):
        cache = MetadataNodeCache()
        cache.put("b", 0, 64, 0, None)
        found, node = cache.get("b", 0, 64, 0)
        assert found and node is None
        assert cache.stats.hits == 1

    def test_hint_resolution_aliases_exact_version(self):
        cache = MetadataNodeCache()
        stored = leaf(2)
        # a lookup with hint 7 resolved to the version-2 node ...
        cache.put("b", 0, 64, 7, stored)
        # ... so a later traversal hinting exactly at version 2 also hits
        found, node = cache.get("b", 0, 64, 2)
        assert found and node is stored
        # but an intermediate hint that was never resolved stays a miss
        assert cache.get("b", 0, 64, 5) == (False, None)

    def test_distinct_ranges_and_blobs_do_not_collide(self):
        cache = MetadataNodeCache()
        cache.put("b", 0, 64, 1, leaf(1))
        assert cache.get("b", 64, 64, 1) == (False, None)
        assert cache.get("other", 0, 64, 1) == (False, None)

    def test_lru_eviction_respects_capacity(self):
        cache = MetadataNodeCache(capacity=2)
        cache.put("b", 0, 64, 1, None)
        cache.put("b", 64, 64, 1, None)
        # touch the first entry so the second becomes least recently used
        assert cache.get("b", 0, 64, 1)[0]
        cache.put("b", 128, 64, 1, None)
        assert cache.get("b", 0, 64, 1)[0]          # survivor (recently used)
        assert not cache.get("b", 64, 64, 1)[0]     # evicted
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_unbounded_by_default(self):
        cache = MetadataNodeCache()
        for offset in range(0, 100 * 64, 64):
            cache.put("b", offset, 64, 1, None)
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MetadataNodeCache(capacity=0)

    def test_clear_keeps_counters(self):
        cache = MetadataNodeCache()
        cache.put("b", 0, 64, 1, None)
        cache.get("b", 0, 64, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.get("b", 0, 64, 1) == (False, None)

    def test_snapshot_dict(self):
        cache = MetadataNodeCache()
        cache.put("b", 0, 64, 1, None)
        cache.get("b", 0, 64, 1)
        cache.get("b", 64, 64, 1)
        snap = cache.stats.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
