"""Property-based tests of the versioned segment tree.

A reference model (a plain list of full-file byte arrays, one per version)
is compared against the segment-tree metadata for arbitrary sequences of
non-contiguous writes: every snapshot must read back exactly as the reference
content of that version, for arbitrary read ranges.
"""

from hypothesis import given, settings, strategies as st

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.chunk import ChunkKey
from repro.blobseer.metadata.segment_tree import (
    build_leaf_segments,
    build_write_metadata,
    plan_read,
    split_vector_into_pieces,
)
from repro.blobseer.metadata.store import MetadataStore
from repro.core.listio import IOVector
from repro.core.regions import RegionList

CHUNK = 32
BLOB = BlobDescriptor.create("prop", size=16 * CHUNK, chunk_size=CHUNK)


@st.composite
def write_sequences(draw):
    """A sequence of vectored writes, each a few random regions."""
    num_writes = draw(st.integers(1, 5))
    sequence = []
    for _ in range(num_writes):
        num_regions = draw(st.integers(1, 4))
        pairs = []
        for _ in range(num_regions):
            offset = draw(st.integers(0, BLOB.capacity - 1))
            size = draw(st.integers(1, min(3 * CHUNK, BLOB.capacity - offset)))
            fill = draw(st.integers(1, 255))
            pairs.append((offset, bytes([fill]) * size))
        sequence.append(pairs)
    return sequence


class TreeModel:
    """Segment tree + chunk payloads, next to a plain byte-array reference."""

    def __init__(self):
        self.store = MetadataStore()
        self.chunks = {}
        self.reference = [bytes(BLOB.capacity)]  # version 0 = zeros

    def write(self, version, pairs):
        vector = IOVector.for_write(pairs)
        pieces = split_vector_into_pieces(BLOB, vector)
        for index, piece in enumerate(pieces):
            piece.chunk = ChunkKey(f"v{version}", index)
            piece.provider_id = "p0"
            self.chunks[piece.chunk] = piece.data
        for node in build_write_metadata(BLOB, version, version - 1,
                                         build_leaf_segments(BLOB, pieces)):
            self.store.put_node(node)
        content = bytearray(self.reference[version - 1])
        vector.apply_to(content)
        self.reference.append(bytes(content[:BLOB.capacity]))

    def read(self, version, regions):
        plan = plan_read(BLOB, version, regions,
                         lambda offset, size, hint: self.store.get_at_or_before(
                             BLOB.blob_id, offset, size, hint))
        buffer = bytearray()
        extents = sorted(plan.extents, key=lambda extent: extent.offset)
        for extent in extents:
            if extent.is_zero:
                buffer.extend(b"\x00" * extent.length)
            else:
                chunk = self.chunks[extent.chunk]
                buffer.extend(chunk[extent.chunk_offset:
                                    extent.chunk_offset + extent.length])
        return bytes(buffer)

    def reference_read(self, version, regions):
        content = self.reference[version]
        return b"".join(content[region.offset:region.end]
                        for region in regions.normalized())


@settings(max_examples=60, deadline=None)
@given(sequence=write_sequences(), data=st.data())
def test_every_snapshot_reads_like_the_reference(sequence, data):
    model = TreeModel()
    for index, pairs in enumerate(sequence, start=1):
        model.write(index, pairs)

    for version in range(len(sequence) + 1):
        # a random read range plus the full-blob read
        offset = data.draw(st.integers(0, BLOB.capacity - 1))
        size = data.draw(st.integers(1, BLOB.capacity - offset))
        for regions in (RegionList([(offset, size)]),
                        RegionList([(0, BLOB.capacity)])):
            assert model.read(version, regions) == \
                model.reference_read(version, regions)


@settings(max_examples=30, deadline=None)
@given(sequence=write_sequences())
def test_old_snapshots_are_immutable(sequence):
    """Writing new versions never changes what older versions read."""
    model = TreeModel()
    full = RegionList([(0, BLOB.capacity)])
    snapshots = {0: model.read(0, full)}
    for index, pairs in enumerate(sequence, start=1):
        model.write(index, pairs)
        snapshots[index] = model.read(index, full)
        # every previously captured snapshot still reads identically
        for version, captured in snapshots.items():
            assert model.read(version, full) == captured


@settings(max_examples=30, deadline=None)
@given(sequence=write_sequences())
def test_metadata_node_count_is_bounded(sequence):
    """Copy-on-write publishes O(touched leaves × depth) nodes per write —
    never O(file size): untouched subtrees are shadowed, not copied."""
    model = TreeModel()
    for index, pairs in enumerate(sequence, start=1):
        before = model.store.node_count()
        model.write(index, pairs)
        created = model.store.node_count() - before
        touched_leaves = {BLOB.leaf_offset(offset + delta)
                          for offset, payload in pairs
                          for delta in range(0, len(payload), CHUNK)} | \
                         {BLOB.leaf_offset(offset + len(payload) - 1)
                          for offset, payload in pairs}
        # at most one full root-to-leaf path of new nodes per touched leaf,
        # and at least the leaves themselves plus a new root
        upper_bound = len(touched_leaves) * (BLOB.tree_depth + 1)
        assert len(touched_leaves) + 1 <= created <= upper_bound
