"""Tests for speculative child prefetch on the metadata read path.

The shard answering a frontier ``get_nodes`` also resolves, for every inner
node it returns, the child lookups the traversal will issue next — but only
for range keys it *owns*: a foreign key missing from a shard's map means
"stored elsewhere", not "never written", and shipping it as a negative
would poison every cache it lands in.  The tests pin the authoritative-only
rule, the round-trip reduction, and byte-identical results.
"""

import pytest

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.chunk import ChunkKey
from repro.blobseer.deployment import BlobSeerDeployment
from repro.blobseer.metadata.segment_tree import (
    build_leaf_segments,
    build_write_metadata,
    split_vector_into_pieces,
)
from repro.blobseer.metadata.store import MetadataStore, PartitionedMetadataStore
from repro.cluster import Cluster, ClusterConfig
from repro.core.listio import IOVector
from repro.vstore.client import VectoredClient

CHUNK = 32
BLOB = BlobDescriptor.create("pf", size=16 * CHUNK, chunk_size=CHUNK)


def store_with_history(versions=1):
    """One unsharded store holding `versions` full-cover writes."""
    store = MetadataStore()
    for version in range(1, versions + 1):
        vector = IOVector.contiguous_write(0, bytes([version]) * BLOB.capacity)
        pieces = split_vector_into_pieces(BLOB, vector)
        for index, piece in enumerate(pieces):
            piece.chunk = ChunkKey(f"w{version}", index)
            piece.provider_id = "p0"
        nodes = build_write_metadata(
            BLOB, version, version - 1, build_leaf_segments(BLOB, pieces))
        for node in nodes:
            store.put_node(node)
    return store


class TestStorePrefetchCandidates:
    def test_children_of_inner_nodes_are_resolved(self):
        store = store_with_history()
        root = store.get_at_or_before(BLOB.blob_id, 0, BLOB.capacity, 1)
        extras = dict(store.prefetch_candidates(BLOB.blob_id, [root]))
        left = (root.left.offset, root.left.size, root.left.version_hint)
        right = (root.right.offset, root.right.size, root.right.version_hint)
        assert set(extras) == {left, right}
        assert all(node is not None for node in extras.values())

    def test_leaf_base_version_is_resolved(self):
        store = store_with_history(versions=2)
        leaf = store.get_at_or_before(BLOB.blob_id, 0, CHUNK, 2)
        assert leaf.is_leaf and leaf.base_version == 1
        extras = dict(store.prefetch_candidates(BLOB.blob_id, [leaf]))
        assert (0, CHUNK, 1) in extras
        assert extras[(0, CHUNK, 1)].key.version == 1

    def test_owns_filter_excludes_foreign_keys(self):
        store = store_with_history()
        root = store.get_at_or_before(BLOB.blob_id, 0, BLOB.capacity, 1)
        extras = store.prefetch_candidates(BLOB.blob_id, [root],
                                           owns=lambda offset, size: False)
        assert extras == []

    def test_none_nodes_are_skipped(self):
        store = store_with_history()
        assert store.prefetch_candidates(BLOB.blob_id, [None]) == []

    def test_results_are_deduplicated(self):
        store = store_with_history()
        root = store.get_at_or_before(BLOB.blob_id, 0, BLOB.capacity, 1)
        extras = store.prefetch_candidates(BLOB.blob_id, [root, root])
        assert len(extras) == 2


class TestProviderAuthority:
    """Provider-level prefetch only ships keys its shard owns."""

    def build(self, num_shards):
        cluster = Cluster(config=ClusterConfig(metadata_prefetch=True))
        deployment = BlobSeerDeployment(cluster, num_providers=2,
                                        num_metadata_providers=num_shards,
                                        chunk_size=CHUNK)
        return cluster, deployment

    def test_extras_are_owned_by_the_answering_shard(self):
        cluster, deployment = self.build(num_shards=3)
        client = VectoredClient(deployment, cluster.add_node("cn"), name="c")

        def main():
            yield from client.create_blob("b", 16 * CHUNK)
            yield from client.vwrite_and_wait("b", [(0, b"q" * 16 * CHUNK)])
            client.metadata_cache.clear()
            pieces = yield from client.vread("b", [(0, 16 * CHUNK)], 1)
            return pieces

        process = cluster.sim.process(main())
        cluster.sim.run(stop_event=process)
        assert process.value == [b"q" * 16 * CHUNK]

        # re-ask each provider directly and check ownership of every extra
        shard_count = len(deployment.metadata_providers)
        for provider in deployment.metadata_providers:
            requests = [(0, 16 * CHUNK, 1)]
            handler = provider.get_nodes("b", requests, True)
            result = None
            try:
                while True:
                    next(handler)
            except StopIteration as stop:
                result = stop.value
            _nodes, extras = result
            for (offset, size, _hint), _node in extras:
                index = PartitionedMetadataStore.partition_index(
                    "b", offset, size, shard_count)
                assert index == provider.shard_index

    def test_prefetch_counter_and_rpc_reduction(self):
        """With one shard every level's children prefetch, roughly halving
        the level round-trips of a cold traversal."""
        results = {}
        for prefetch in (False, True):
            cluster = Cluster(
                config=ClusterConfig(metadata_prefetch=prefetch))
            deployment = BlobSeerDeployment(cluster, num_providers=2,
                                            num_metadata_providers=1,
                                            chunk_size=CHUNK)
            client = VectoredClient(deployment, cluster.add_node("cn"),
                                    name="c", write_through_cache=False)

            def main():
                yield from client.create_blob("b", 16 * CHUNK)
                yield from client.vwrite_and_wait(
                    "b", [(0, b"r" * 16 * CHUNK)])
                pieces = yield from client.vread("b", [(0, 16 * CHUNK)], 1)
                return pieces

            process = cluster.sim.process(main())
            cluster.sim.run(stop_event=process)
            results[prefetch] = (process.value, client.metadata_read_rpcs,
                                 client.metadata_prefetched_nodes,
                                 deployment.stats())

        assert results[True][0] == results[False][0]
        assert results[True][1] < results[False][1]
        assert results[True][2] > 0
        assert results[False][2] == 0
        assert results[True][3]["metadata_prefetched_nodes"] > 0

    def test_prefetch_is_byte_identical_on_sharded_deployments(self):
        """Cross-shard children are skipped, never mis-answered: a sharded
        deployment with prefetch returns the same bytes as without."""
        data = bytes(range(256)) * (16 * CHUNK // 256)
        pieces_by_mode = {}
        for prefetch in (False, True):
            cluster, deployment = self.build(num_shards=3)
            writer = VectoredClient(deployment, cluster.add_node("w"),
                                    name="w", metadata_prefetch=False)
            reader = VectoredClient(deployment, cluster.add_node("r"),
                                    name="r", metadata_prefetch=prefetch)

            def main():
                yield from writer.create_blob("b", 16 * CHUNK)
                yield from writer.vwrite_and_wait("b", [(0, data)])
                yield from writer.vwrite_and_wait(
                    "b", [(3 * CHUNK, b"#" * CHUNK)])
                pieces = yield from reader.vread(
                    "b", [(0, 16 * CHUNK), (2 * CHUNK, 4 * CHUNK)], 2)
                return pieces

            process = cluster.sim.process(main())
            cluster.sim.run(stop_event=process)
            pieces_by_mode[prefetch] = process.value

        assert pieces_by_mode[True] == pieces_by_mode[False]
        expected = bytearray(data)
        expected[3 * CHUNK:4 * CHUNK] = b"#" * CHUNK
        assert pieces_by_mode[True][0] == bytes(expected)
