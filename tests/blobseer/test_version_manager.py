"""Unit tests for the version manager (tickets and in-order publication)."""

import pytest

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.version_manager import VersionManager
from repro.errors import BlobNotFound, StorageError, VersionNotFound


def make_manager():
    manager = VersionManager()
    manager.create_blob(BlobDescriptor.create("b", 1024, 64))
    return manager


class TestNamespace:
    def test_create_and_get(self):
        manager = make_manager()
        assert manager.get_blob("b").blob_id == "b"
        assert manager.blob_exists("b")
        assert not manager.blob_exists("other")

    def test_duplicate_create_rejected(self):
        manager = make_manager()
        with pytest.raises(StorageError):
            manager.create_blob(BlobDescriptor.create("b", 10, 64))

    def test_unknown_blob_rejected(self):
        with pytest.raises(BlobNotFound):
            VersionManager().get_blob("nope")


class TestTickets:
    def test_tickets_are_sequential(self):
        manager = make_manager()
        assert manager.assign_ticket("b") == (1, 0)
        assert manager.assign_ticket("b") == (2, 1)
        assert manager.assign_ticket("b") == (3, 2)
        assert manager.tickets_assigned == 3

    def test_initial_published_version_is_zero(self):
        manager = make_manager()
        assert manager.latest_published("b") == 0
        assert manager.is_published("b", 0)
        assert not manager.is_published("b", 1)


class TestPublication:
    def test_in_order_completion_publishes_immediately(self):
        manager = make_manager()
        manager.assign_ticket("b")
        latest, newly = manager.complete("b", 1)
        assert latest == 1
        assert newly == [1]

    def test_out_of_order_completion_waits_for_predecessor(self):
        manager = make_manager()
        manager.assign_ticket("b")
        manager.assign_ticket("b")
        manager.assign_ticket("b")

        latest, newly = manager.complete("b", 3)
        assert latest == 0 and newly == []
        latest, newly = manager.complete("b", 2)
        assert latest == 0 and newly == []
        latest, newly = manager.complete("b", 1)
        assert latest == 3 and newly == [1, 2, 3]
        assert manager.snapshots_published == 3

    def test_unassigned_version_rejected(self):
        manager = make_manager()
        with pytest.raises(VersionNotFound):
            manager.complete("b", 5)

    def test_double_completion_rejected(self):
        manager = make_manager()
        manager.assign_ticket("b")
        manager.complete("b", 1)
        with pytest.raises(StorageError):
            manager.complete("b", 1)

    def test_completion_after_publication_names_the_real_problem(self):
        """Completing an already-*published* version is not 'completed twice'."""
        manager = make_manager()
        manager.assign_ticket("b")
        manager.complete("b", 1)  # publishes immediately (in ticket order)
        with pytest.raises(StorageError, match="already published"):
            manager.complete("b", 1)

    def test_double_completion_before_publication_says_twice(self):
        manager = make_manager()
        manager.assign_ticket("b")
        manager.assign_ticket("b")
        manager.complete("b", 2)  # waits for version 1: completed, unpublished
        with pytest.raises(StorageError, match="complete twice"):
            manager.complete("b", 2)

    def test_pending_versions(self):
        manager = make_manager()
        manager.assign_ticket("b")
        manager.assign_ticket("b")
        manager.complete("b", 2)
        assert manager.pending_versions("b") == [1, 2]
        manager.complete("b", 1)
        assert manager.pending_versions("b") == []
