"""Failure-injection tests at the deployment level."""

import pytest

from repro.blobseer import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import ProviderUnavailable


def make_deployment(num_providers=3):
    cluster = Cluster(config=ClusterConfig(network_latency=1e-5))
    deployment = BlobSeerDeployment(cluster, num_providers=num_providers,
                                    chunk_size=64)
    return cluster, deployment


def run(cluster, generator):
    process = cluster.sim.process(generator)
    return cluster.sim.run(stop_event=process)


class TestProviderFailure:
    def test_writes_avoid_failed_provider(self):
        cluster, deployment = make_deployment(num_providers=3)
        client = deployment.client(cluster.add_node("c0"))
        deployment.fail_provider("bs-data1")

        def scenario():
            yield from client.create_blob("b", size=1024)
            yield from client.write("b", 0, b"x" * 1024)
            data = yield from client.read("b", 0, 1024)
            return data

        assert run(cluster, scenario()) == b"x" * 1024
        assert deployment.data_provider("bs-data1").store.chunk_count() == 0
        # the surviving providers hold everything
        total = sum(service.store.chunk_count()
                    for service in deployment.data_providers.values())
        assert total == 1024 // 64

    def test_reads_of_old_data_fail_when_its_provider_dies(self):
        cluster, deployment = make_deployment(num_providers=2)
        client = deployment.client(cluster.add_node("c0"))

        def write_phase():
            yield from client.create_blob("b", size=256)
            yield from client.write("b", 0, b"y" * 256)

        run(cluster, write_phase())
        deployment.fail_provider("bs-data0")

        def read_phase():
            data = yield from client.read("b", 0, 256)
            return data

        with pytest.raises(ProviderUnavailable):
            run(cluster, read_phase())

    def test_recovered_provider_serves_its_chunks_again(self):
        cluster, deployment = make_deployment(num_providers=2)
        client = deployment.client(cluster.add_node("c0"))

        def write_phase():
            yield from client.create_blob("b", size=256)
            yield from client.write("b", 0, b"z" * 256)

        run(cluster, write_phase())
        deployment.fail_provider("bs-data0")
        deployment.recover_provider("bs-data0")

        def read_phase():
            data = yield from client.read("b", 0, 256)
            return data

        assert run(cluster, read_phase()) == b"z" * 256

    def test_all_providers_failed_rejects_writes(self):
        cluster, deployment = make_deployment(num_providers=1)
        client = deployment.client(cluster.add_node("c0"))
        deployment.fail_provider("bs-data0")

        def scenario():
            yield from client.create_blob("b", size=256)
            yield from client.write("b", 0, b"a" * 64)

        with pytest.raises(ProviderUnavailable):
            run(cluster, scenario())

    def test_unpublished_writer_blocks_later_snapshots_not_earlier(self):
        """A crashed writer (assigned ticket, never completed) stalls
        publication of later tickets — the documented trade-off of in-order
        publication — but already-published snapshots stay readable."""
        cluster, deployment = make_deployment(num_providers=2)
        client_a = deployment.client(cluster.add_node("c0"))
        client_b = deployment.client(cluster.add_node("c1"))

        def scenario():
            yield from client_a.create_blob("b", size=256)
            receipt = yield from client_a.write("b", 0, b"first")
            # writer B grabs a ticket but "crashes" before completing
            yield from client_b._control(
                deployment.version_manager, "assign_ticket", "b")
            # writer A writes again: its snapshot cannot publish yet
            receipt_late = yield from client_a.write("b", 0, b"later")
            latest = yield from client_a.latest_version("b")
            early = yield from client_a.read("b", 0, 5, version=receipt.version)
            return receipt.version, receipt_late.version, latest, early

        first, late, latest, early = run(cluster, scenario())
        assert first == 1 and late == 3
        assert latest == 1          # version 2 never completed, 3 is held back
        assert early == b"first"    # published data remains readable
