"""Unit and property tests for the cooperative cross-node cache tier.

The tier's load-bearing properties:

* **role purity** — :func:`role_for` / :func:`custodian_index` are pure
  stable-hash functions of names alone: no RNG scope is consulted (so the
  tier can never perturb workload bytes or fuzz replay) and every process
  and every replay computes the same roles;
* **routing** — a prober asks the key's custodian, a self-custodian asks
  the first provider along the ring, one-node clusters ask nobody;
* **probe semantics** — pool answers come from the stat-free ``peek``
  (the fall-through identity stays exact), providers read through on a
  miss (coalesced, gated), samplers answer :data:`PEER_MISS`, a dead
  service answers "unavailable";
* **byte identity** — for any placement of clients onto nodes, reads
  return the same bytes with the tier on or off.
"""

import random

import pytest

from repro.blobseer.deployment import BlobSeerDeployment
from repro.blobseer.metadata.coopcache import (
    PEER_MISS,
    PROVIDER,
    SAMPLER,
    custodian_index,
    role_for,
)
from repro.blobseer.metadata.nodes import MetadataNode, NodeKey
from repro.blobseer.metadata.sharedcache import FETCH_FAILED
from repro.cluster import Cluster, ClusterConfig
from repro.vstore.client import VectoredClient

BLOB = "coop-blob"
FILE_SIZE = 1 << 20
CHUNK = 4096


def build(num_nodes=3, **config_overrides):
    config_overrides.setdefault("shared_metadata_cache", True)
    config_overrides.setdefault("cooperative_cache", True)
    cluster = Cluster(config=ClusterConfig(**config_overrides))
    deployment = BlobSeerDeployment(cluster, num_providers=2,
                                    num_metadata_providers=2,
                                    chunk_size=CHUNK)
    nodes = [cluster.add_node(f"cn{index}") for index in range(num_nodes)]
    return cluster, deployment, nodes


def enroll(deployment, nodes):
    return [deployment.coop_peer(node) for node in nodes]


def run(cluster, generator):
    process = cluster.sim.process(generator)
    cluster.sim.run(stop_event=process)
    return process.value


def complete(generator):
    """Exhaust a generator that must finish without yielding."""
    try:
        next(generator)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator yielded where none was expected")


def finish(generator, send):
    """Resume a parked generator and return its final value."""
    try:
        generator.send(send)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator yielded again")


def make_node(version=1, offset=0, size=64, blob=BLOB):
    return MetadataNode(key=NodeKey(blob, version, offset, size),
                        is_leaf=True, segments=(), base_version=0)


class TestRoles:
    def test_role_is_a_pure_function_of_the_names(self):
        for node in ("cn0", "cn1", "compute-17"):
            for blob in ("a", "b", "/dump"):
                first = role_for(node, blob)
                assert first in (PROVIDER, SAMPLER)
                assert all(role_for(node, blob) == first for _ in range(5))

    def test_fraction_bounds(self):
        names = [f"cn{index}" for index in range(64)]
        assert all(role_for(name, BLOB, 0.0) == SAMPLER for name in names)
        assert all(role_for(name, BLOB, 1.0) == PROVIDER for name in names)
        roles = {role_for(name, BLOB, 0.5) for name in names}
        assert roles == {PROVIDER, SAMPLER}  # both roles actually occur

    def test_roles_differ_per_blob(self):
        # one node is not globally a provider: the role re-rolls per blob
        blobs = [f"blob{index}" for index in range(64)]
        roles = {role_for("cn0", blob, 0.5) for blob in blobs}
        assert roles == {PROVIDER, SAMPLER}

    def test_custody_is_stable_and_in_range(self):
        for count in (1, 2, 3, 7):
            for offset in (0, 64, 4096):
                slot = custodian_index(BLOB, offset, 64, count)
                assert 0 <= slot < count
                assert custodian_index(BLOB, offset, 64, count) == slot

    def test_role_and_custody_draw_from_no_rng_stream(self):
        """The purity property: computing roles, custody and routes for
        many keys must neither create a new RNG stream nor advance any
        existing stream — replacing the tier's determinism with sampling
        would silently couple it to workload bytes and fuzz replay."""
        cluster, deployment, nodes = build()
        directory = deployment.coop_peer(nodes[0]).directory
        enroll(deployment, nodes)
        rng = cluster.sim.rng
        rng.scope("network").stream("jitter")  # a live stream to watch
        before = {name: repr(stream.bit_generator.state)
                  for name, stream in rng._streams.items()}
        for index in range(200):
            role_for(nodes[index % 3].name, f"blob{index}", 0.5)
            custodian_index(f"blob{index}", index * 64, 64, 3)
            directory.route(nodes[index % 3].name, BLOB, index * 64, 64)
        after = {name: repr(stream.bit_generator.state)
                 for name, stream in rng._streams.items()}
        assert before == after


class TestRouting:
    def test_lonely_cluster_routes_nowhere(self):
        _, deployment, nodes = build(num_nodes=1)
        service, = enroll(deployment, nodes[:1])
        assert service.directory.route("cn0", BLOB, 0, 64) is None

    def test_prober_is_sent_to_the_custodian(self):
        _, deployment, nodes = build()
        enroll(deployment, nodes)
        directory = deployment.coop_directory
        participants = directory.participants()
        for offset in range(0, 64 * 64, 64):
            custodian = participants[
                custodian_index(BLOB, offset, 64, len(participants))]
            for prober in participants:
                target = directory.route(prober, BLOB, offset, 64)
                if custodian != prober:
                    assert target is directory.services[custodian]
                else:
                    assert target is None \
                        or target.node.name != prober

    def test_self_custodian_falls_back_to_a_ring_provider(self):
        _, deployment, nodes = build(coop_provider_fraction=1.0)
        enroll(deployment, nodes)
        directory = deployment.coop_directory
        participants = directory.participants()
        # find a key this prober has custody of; with every node a
        # provider the fallback is the next ring member after the slot
        for offset in range(0, 64 * 256, 64):
            slot = custodian_index(BLOB, offset, 64, len(participants))
            prober = participants[slot]
            target = directory.route(prober, BLOB, offset, 64)
            expected = participants[(slot + 1) % len(participants)]
            assert target is directory.services[expected]
            break

    def test_self_custodian_with_no_providers_goes_to_the_shards(self):
        _, deployment, nodes = build(coop_provider_fraction=0.0)
        enroll(deployment, nodes)
        directory = deployment.coop_directory
        participants = directory.participants()
        for offset in range(0, 64 * 256, 64):
            slot = custodian_index(BLOB, offset, 64, len(participants))
            assert directory.route(participants[slot], BLOB,
                                   offset, 64) is None

    def test_registration_is_idempotent(self):
        _, deployment, nodes = build()
        first = deployment.coop_peer(nodes[0])
        again = deployment.coop_peer(nodes[0])
        assert first is again
        assert deployment.coop_directory.participants() == ["cn0"]


class TestProbe:
    def _sampler_service(self, **overrides):
        overrides.setdefault("coop_provider_fraction", 0.0)
        cluster, deployment, nodes = build(**overrides)
        services = enroll(deployment, nodes)
        return cluster, services[0]

    def test_dead_service_answers_unavailable_and_drops_its_pool(self):
        cluster, service = self._sampler_service()
        pool = service.pool
        pool.note_published(BLOB, 1)
        pool.publish(BLOB, 0, 64, 1, make_node())
        service.kill()
        assert len(pool) == 0  # its memory died with the daemon
        answer = complete(service.probe(BLOB, [(0, 64, 1)], watermark=1))
        assert answer is None
        assert service.stats.unavailable_probes == 1
        assert service.stats.served_lookups == 0

    def test_sampler_miss_is_a_peer_miss(self):
        _, service = self._sampler_service()
        answer = complete(service.probe(BLOB, [(0, 64, 1)], watermark=1))
        assert answer == [PEER_MISS]
        assert service.stats.served_misses == 1
        assert service.stats.read_throughs == 0

    def test_pool_hit_is_served_stat_free(self):
        """A remote probe must not count as a pool lookup: the local
        fall-through identity equates pool lookups with the node's own
        tenants' private misses, and a probe is neither."""
        _, service = self._sampler_service()
        pool = service.pool
        pool.note_published(BLOB, 1)
        node = make_node()
        pool.publish(BLOB, 0, 64, 1, node)
        hits, misses = pool.stats.hits, pool.stats.misses
        answer = complete(service.probe(BLOB, [(0, 64, 1)], watermark=1))
        assert answer == [node]
        assert service.stats.served_hits == 1
        assert (pool.stats.hits, pool.stats.misses) == (hits, misses)

    def test_probe_watermark_feeds_the_receiving_gate(self):
        _, service = self._sampler_service()
        assert service.pool.watermark(BLOB) == 0
        complete(service.probe(BLOB, [(0, 64, 7)], watermark=7))
        assert service.pool.watermark(BLOB) == 7

    def test_cached_negative_is_an_answer_not_a_miss(self):
        _, service = self._sampler_service()
        pool = service.pool
        pool.note_published(BLOB, 1)
        pool.publish(BLOB, 0, 64, 1, None)
        answer = complete(service.probe(BLOB, [(0, 64, 1)], watermark=1))
        assert answer == [None]
        assert service.stats.served_hits == 1

    def _provider_service(self):
        cluster, deployment, nodes = build(coop_provider_fraction=1.0)
        services = enroll(deployment, nodes)
        return cluster, services[0]

    def test_provider_reads_through_and_admits_gated(self):
        cluster, service = self._provider_service()
        node = make_node()
        fetches = []

        def fake_fetch(blob_id, offset, size, hint):
            fetches.append((blob_id, offset, size, hint))
            return node
            yield  # pragma: no cover - generator shape

        service._fetch_authoritative = fake_fetch
        answer = complete(service.probe(BLOB, [(0, 64, 1)], watermark=1))
        assert answer == [node]
        assert fetches == [(BLOB, 0, 64, 1)]
        assert service.stats.read_throughs == 1
        assert service.stats.served_hits == 1
        # admitted through the gate the prober's watermark opened
        found, cached = service.pool.peek(BLOB, 0, 64, 1)
        assert found and cached is node
        assert not service.pool._inflight  # leader resolved its entry

    def test_failed_read_through_degrades_to_a_miss(self):
        cluster, service = self._provider_service()

        def dying_fetch(blob_id, offset, size, hint):
            raise RuntimeError("shard unreachable")
            yield  # pragma: no cover - generator shape

        service._fetch_authoritative = dying_fetch
        answer = complete(service.probe(BLOB, [(0, 64, 1)], watermark=1))
        assert answer == [PEER_MISS]
        assert service.stats.served_misses == 1
        assert not service.pool._inflight  # aborted, never leaked

    def test_read_through_parks_on_a_service_led_fetch(self):
        cluster, service = self._provider_service()
        node = make_node()
        leader, _owner, event = service.pool.coalesce(
            cluster.sim, BLOB, 0, 64, 1, owner="service")
        assert leader
        generator = service.probe(BLOB, [(0, 64, 1)], watermark=1)
        parked_on = next(generator)  # the probe parked instead of fetching
        assert parked_on is event
        assert finish(generator, node) == [node]
        assert service.pool.stats.coalesced_fetches == 1
        assert service.stats.read_throughs == 0  # the leader's fetch, not ours

    def test_parked_read_through_survives_a_failed_leader(self):
        cluster, service = self._provider_service()
        service.pool.coalesce(cluster.sim, BLOB, 0, 64, 1, owner="service")
        generator = service.probe(BLOB, [(0, 64, 1)], watermark=1)
        next(generator)
        assert finish(generator, FETCH_FAILED) == [PEER_MISS]

    def test_read_through_never_parks_on_a_client_led_fetch(self):
        """Cycle prevention: an RPC handler parked behind a *client*-led
        fetch could close a cross-node wait cycle (two clients each
        leading a key while their probes park on each other); the handler
        must answer "miss" instead."""
        cluster, service = self._provider_service()
        service.pool.coalesce(cluster.sim, BLOB, 0, 64, 1, owner="client")
        answer = complete(service.probe(BLOB, [(0, 64, 1)], watermark=1))
        assert answer == [PEER_MISS]
        assert service.pool.stats.coalesced_fetches == 0


class TestEndToEnd:
    def _scan(self, client, size=16 * CHUNK):
        pieces = yield from client.vread(BLOB, [(0, size)], 1)
        return pieces

    def test_remote_peer_answers_a_cold_node(self):
        """With every node a provider, a cold node's first reader resolves
        the whole walk over peer probes — zero authoritative fetches of
        its own."""
        cluster, deployment, nodes = build(coop_provider_fraction=1.0)
        seeder = VectoredClient(deployment, cluster.add_node("seed"),
                                name="s", shared_metadata_cache=False)
        warm = VectoredClient(deployment, nodes[0], name="warm")
        cold = VectoredClient(deployment, nodes[1], name="cold")
        VectoredClient(deployment, nodes[2], name="bystander")

        def main():
            yield from seeder.create_blob(BLOB, FILE_SIZE)
            yield from seeder.vwrite_and_wait(BLOB, [(0, b"p" * 16 * CHUNK)])
            yield from self._scan(warm)
            pieces = yield from self._scan(cold)
            return pieces

        assert run(cluster, main()) == [b"p" * 16 * CHUNK]
        assert cold.peer_cache_hits > 0
        assert cold.metadata_lookup_fetches == 0
        assert cold.peer_probe_rpcs > 0
        stats = deployment.coop_stats()
        assert stats["served_hits"] \
            == cold.peer_cache_hits + cold.peer_rejections \
            + warm.peer_cache_hits + warm.peer_rejections

    def test_dead_peer_costs_rpcs_never_bytes(self):
        cluster, deployment, nodes = build(coop_provider_fraction=1.0)
        seeder = VectoredClient(deployment, cluster.add_node("seed"),
                                name="s", shared_metadata_cache=False)
        reader = VectoredClient(deployment, nodes[0], name="r")
        for node in nodes[1:]:
            VectoredClient(deployment, node, name=f"tenant-{node.name}")

        def main():
            yield from seeder.create_blob(BLOB, FILE_SIZE)
            yield from seeder.vwrite_and_wait(BLOB, [(0, b"d" * 16 * CHUNK)])
            for service in deployment.coop_directory.services.values():
                if service.node.name != nodes[0].name:
                    service.kill()
            pieces = yield from self._scan(reader)
            return pieces

        assert run(cluster, main()) == [b"d" * 16 * CHUNK]
        assert reader.peer_cache_hits == 0
        assert reader.metadata_lookup_fetches > 0  # authoritative fallback
        assert deployment.coop_stats()["unavailable_probes"] > 0

    def test_disabled_tier_has_no_directory_and_no_counters(self):
        cluster, deployment, nodes = build(cooperative_cache=False)
        seeder = VectoredClient(deployment, cluster.add_node("seed"),
                                name="s", shared_metadata_cache=False)
        readers = [VectoredClient(deployment, node, name=f"r{index}")
                   for index, node in enumerate(nodes)]

        def main():
            yield from seeder.create_blob(BLOB, FILE_SIZE)
            yield from seeder.vwrite_and_wait(BLOB, [(0, b"q" * 16 * CHUNK)])
            for reader in readers:
                yield from self._scan(reader)

        run(cluster, main())
        assert deployment.coop_directory is None
        for reader in readers:
            assert reader.coop_peer is None
            assert reader.peer_probe_rpcs == 0
            assert reader.peer_cache_hits == 0

    @pytest.mark.parametrize("placement_seed", [0, 1, 2])
    def test_any_placement_reads_byte_identically_coop_on_and_off(
            self, placement_seed):
        """The byte-identity property: for an arbitrary assignment of
        clients to compute nodes, every client reads exactly the same
        bytes with the cooperative tier on or off."""
        payload = bytes(range(256)) * (16 * CHUNK // 256)
        placement = [random.Random(placement_seed).randrange(3)
                     for _ in range(5)]

        def run_mode(cooperative):
            cluster, deployment, nodes = build(
                cooperative_cache=cooperative, coop_provider_fraction=0.5)
            seeder = VectoredClient(deployment, cluster.add_node("seed"),
                                    name="s", shared_metadata_cache=False)
            clients = [
                VectoredClient(deployment, nodes[node_index],
                               name=f"r{index}")
                for index, node_index in enumerate(placement)]
            observed = {}

            def main():
                yield from seeder.create_blob(BLOB, FILE_SIZE)
                yield from seeder.vwrite_and_wait(BLOB, [(0, payload)])
                for index, client in enumerate(clients):
                    offset = (index % 3) * 4 * CHUNK
                    pieces = yield from client.vread(
                        BLOB, [(offset, 4 * CHUNK)], 1)
                    observed[index] = pieces[0]

            run(cluster, main())
            return observed

        with_coop = run_mode(True)
        without = run_mode(False)
        assert with_coop == without
        for index, node_index in enumerate(placement):
            expected_offset = (index % 3) * 4 * CHUNK
            assert with_coop[index] \
                == payload[expected_offset:expected_offset + 4 * CHUNK]

    def test_replay_is_identical(self):
        """Two fresh runs of the same cooperative scenario produce the
        same counters everywhere — roles and custody are replay-stable."""

        def one_run():
            cluster, deployment, nodes = build(coop_provider_fraction=0.5)
            seeder = VectoredClient(deployment, cluster.add_node("seed"),
                                    name="s", shared_metadata_cache=False)
            clients = [VectoredClient(deployment, node, name=f"r{index}")
                       for index, node in enumerate(nodes)]

            def main():
                yield from seeder.create_blob(BLOB, FILE_SIZE)
                yield from seeder.vwrite_and_wait(
                    BLOB, [(0, b"i" * 16 * CHUNK)])
                for client in clients:
                    yield from self._scan(client)

            run(cluster, main())
            return ([(client.peer_cache_hits, client.peer_rejections,
                      client.peer_probe_rpcs, client.peer_probe_misses,
                      client.metadata_lookup_fetches)
                     for client in clients],
                    deployment.coop_stats(), cluster.sim.now)

        assert one_run() == one_run()
