"""Property test: the cached/batched read planner is extent-identical to the
uncached one-lookup-per-node baseline.

For arbitrary randomized write histories and arbitrary read ranges, planning
a read through

* the scalar ``get_node`` callback with no cache (the baseline),
* the batched per-level ``get_nodes`` callback,
* the batched callback with a shared warm :class:`MetadataNodeCache`

must produce byte-identical extent lists — same offsets, lengths, chunks,
chunk offsets and providers.  The cache may only remove round-trips, never
change what a snapshot reads.
"""

from hypothesis import given, settings, strategies as st

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.chunk import ChunkKey
from repro.blobseer.metadata.cache import MetadataNodeCache
from repro.blobseer.metadata.segment_tree import (
    build_leaf_segments,
    build_write_metadata,
    plan_read,
    split_vector_into_pieces,
)
from repro.blobseer.metadata.store import MetadataStore
from repro.core.listio import IOVector
from repro.core.regions import RegionList

CHUNK = 32
BLOB = BlobDescriptor.create("equiv", size=16 * CHUNK, chunk_size=CHUNK)


@st.composite
def write_histories(draw):
    num_writes = draw(st.integers(1, 6))
    history = []
    for _ in range(num_writes):
        num_regions = draw(st.integers(1, 4))
        pairs = []
        for _ in range(num_regions):
            offset = draw(st.integers(0, BLOB.capacity - 1))
            size = draw(st.integers(1, min(3 * CHUNK, BLOB.capacity - offset)))
            fill = draw(st.integers(1, 255))
            pairs.append((offset, bytes([fill]) * size))
        history.append(pairs)
    return history


@st.composite
def read_accesses(draw):
    num_regions = draw(st.integers(1, 4))
    regions = []
    for _ in range(num_regions):
        offset = draw(st.integers(0, BLOB.capacity - 1))
        size = draw(st.integers(1, BLOB.capacity - offset))
        regions.append((offset, size))
    return RegionList(regions)


def populate(history):
    store = MetadataStore()
    for version, pairs in enumerate(history, start=1):
        pieces = split_vector_into_pieces(BLOB, IOVector.for_write(pairs))
        for index, piece in enumerate(pieces):
            piece.chunk = ChunkKey(f"v{version}", index)
            piece.provider_id = "p0"
        for node in build_write_metadata(BLOB, version, version - 1,
                                         build_leaf_segments(BLOB, pieces)):
            store.put_node(node)
    return store


def extent_tuples(plan):
    return [(e.offset, e.length, e.chunk, e.chunk_offset, e.provider_id)
            for e in plan.extents]


@settings(max_examples=60, deadline=None)
@given(history=write_histories(), data=st.data())
def test_batched_and_cached_plans_match_baseline(history, data):
    store = populate(history)

    def get_node(offset, size, hint):
        return store.get_at_or_before(BLOB.blob_id, offset, size, hint)

    def get_nodes(requests):
        return store.get_nodes(BLOB.blob_id, requests)

    cache = MetadataNodeCache()
    for _ in range(data.draw(st.integers(1, 3))):
        version = data.draw(st.integers(0, len(history)))
        regions = data.draw(read_accesses())

        baseline = plan_read(BLOB, version, regions, get_node)
        batched = plan_read(BLOB, version, regions, get_nodes=get_nodes)
        cached = plan_read(BLOB, version, regions, get_nodes=get_nodes,
                           cache=cache)

        expected = extent_tuples(baseline)
        assert extent_tuples(batched) == expected
        assert extent_tuples(cached) == expected
        assert batched.nodes_fetched == baseline.nodes_fetched
        assert cached.nodes_fetched == baseline.nodes_fetched
        # batching collapses round-trips to at most one per level
        assert batched.metadata_rpcs <= batched.levels
        assert batched.metadata_rpcs <= baseline.metadata_rpcs


@settings(max_examples=40, deadline=None)
@given(history=write_histories(), access=read_accesses())
def test_warm_cache_answers_repeat_reads_without_lookups(history, access):
    store = populate(history)
    version = len(history)

    def get_nodes(requests):
        return store.get_nodes(BLOB.blob_id, requests)

    cache = MetadataNodeCache()
    cold = plan_read(BLOB, version, access, get_nodes=get_nodes, cache=cache)
    warm = plan_read(BLOB, version, access, get_nodes=get_nodes, cache=cache)

    assert extent_tuples(warm) == extent_tuples(cold)
    # the repeat read resolves every node from the cache: zero RPCs
    assert warm.metadata_rpcs == 0
    assert warm.cache_misses == 0
    assert warm.cache_hits > 0
