"""Integration tests: BlobSeer deployment + client on a simulated cluster."""

import pytest

from repro.blobseer import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import VersionNotFound


def small_config():
    return ClusterConfig(network_latency=1e-5, disk_overhead=1e-4)


def make_deployment(num_providers=3, num_metadata_providers=2, chunk_size=64,
                    **kwargs):
    cluster = Cluster(config=small_config())
    deployment = BlobSeerDeployment(
        cluster, num_providers=num_providers,
        num_metadata_providers=num_metadata_providers,
        chunk_size=chunk_size, **kwargs)
    return cluster, deployment


def run(cluster, generator):
    process = cluster.sim.process(generator)
    return cluster.sim.run(stop_event=process)


class TestContiguousReadWrite:
    def test_write_then_read_roundtrip(self):
        cluster, deployment = make_deployment()
        node = cluster.add_node("c0")
        client = deployment.client(node)

        def scenario():
            yield from client.create_blob("data", size=1024)
            receipt = yield from client.write("data", 100, b"hello world")
            yield from client.wait_published("data", receipt.version)
            content = yield from client.read("data", 100, 11)
            return receipt, content

        receipt, content = run(cluster, scenario())
        assert content == b"hello world"
        assert receipt.version == 1
        assert receipt.elapsed > 0

    def test_unwritten_bytes_read_as_zero(self):
        cluster, deployment = make_deployment()
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create_blob("data", size=256)
            yield from client.write("data", 0, b"abc")
            content = yield from client.read("data", 0, 10)
            return content

        assert run(cluster, scenario()) == b"abc" + b"\x00" * 7

    def test_write_spanning_multiple_chunks(self):
        cluster, deployment = make_deployment(chunk_size=64)
        client = deployment.client(cluster.add_node("c0"))
        payload = bytes(range(256)) * 2  # 512 bytes over 8+ chunks

        def scenario():
            yield from client.create_blob("data", size=1024)
            receipt = yield from client.write("data", 30, payload)
            content = yield from client.read("data", 30, len(payload))
            return receipt, content

        receipt, content = run(cluster, scenario())
        assert content == payload
        assert receipt.chunks >= 8

    def test_chunks_distributed_round_robin(self):
        cluster, deployment = make_deployment(num_providers=4, chunk_size=64)
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create_blob("data", size=4096)
            yield from client.write("data", 0, b"z" * 4096)

        run(cluster, scenario())
        counts = [service.store.chunk_count()
                  for service in deployment.data_providers.values()]
        assert sum(counts) == 4096 // 64
        assert max(counts) - min(counts) <= 1  # evenly striped

    def test_versioned_reads_see_old_snapshots(self):
        cluster, deployment = make_deployment()
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create_blob("data", size=256)
            first = yield from client.write("data", 0, b"AAAA")
            second = yield from client.write("data", 0, b"BBBB")
            yield from client.wait_published("data", second.version)
            old = yield from client.read("data", 0, 4, version=first.version)
            new = yield from client.read("data", 0, 4, version=second.version)
            latest = yield from client.read("data", 0, 4)
            return old, new, latest

        old, new, latest = run(cluster, scenario())
        assert old == b"AAAA"
        assert new == b"BBBB"
        assert latest == b"BBBB"

    def test_reading_unpublished_version_rejected(self):
        cluster, deployment = make_deployment()
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create_blob("data", size=256)
            yield from client.write("data", 0, b"abcd")
            yield from client.read("data", 0, 4, version=99)

        with pytest.raises(VersionNotFound):
            run(cluster, scenario())


class TestConcurrentWriters:
    def test_concurrent_disjoint_writers_all_published(self):
        cluster, deployment = make_deployment(num_providers=4)
        nodes = cluster.add_nodes("client", 4)
        clients = [deployment.client(node) for node in nodes]

        def writer(client, rank):
            receipt = yield from client.write("data", rank * 128, bytes([rank]) * 128)
            return receipt.version

        def scenario():
            yield from clients[0].create_blob("data", size=1024)
            processes = [cluster.sim.process(writer(client, rank))
                         for rank, client in enumerate(clients)]
            yield cluster.sim.all_of(processes)
            yield from clients[0].wait_published("data", 4)
            content = yield from clients[0].read("data", 0, 512)
            return content

        content = run(cluster, scenario())
        for rank in range(4):
            assert content[rank * 128:(rank + 1) * 128] == bytes([rank]) * 128

    def test_concurrent_overlapping_writers_serialize_by_version(self):
        cluster, deployment = make_deployment(num_providers=4)
        nodes = cluster.add_nodes("client", 3)
        clients = [deployment.client(node) for node in nodes]

        def writer(client, rank):
            receipt = yield from client.write("data", 0, bytes([65 + rank]) * 64)
            return receipt.version

        def scenario():
            yield from clients[0].create_blob("data", size=256)
            processes = [cluster.sim.process(writer(client, rank))
                         for rank, client in enumerate(clients)]
            yield cluster.sim.all_of(processes)
            versions = [process.value for process in processes]
            yield from clients[0].wait_published("data", max(versions))
            final = yield from clients[0].read("data", 0, 64)
            per_version = []
            for version in versions:
                content = yield from clients[0].read("data", 0, 64, version=version)
                per_version.append((version, content))
            return versions, final, per_version

        versions, final, per_version = run(cluster, scenario())
        assert sorted(versions) == [1, 2, 3]
        # the final state is exactly the content of the highest version
        highest = max(per_version)[1]
        assert final == highest
        # every published snapshot is uniform (no mixing inside one write)
        for _version, content in per_version:
            assert len(set(content)) == 1

    def test_deployment_stats(self):
        cluster, deployment = make_deployment()
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create_blob("data", size=1024)
            yield from client.write("data", 0, b"x" * 512)

        run(cluster, scenario())
        stats = deployment.stats()
        assert stats["chunks"] == 8
        assert stats["stored_bytes"] == 512
        assert stats["snapshots_published"] == 1
        assert stats["metadata_nodes"] > 0


class TestMetadataReadPathModes:
    """The cached/batched read path and the per-node baseline agree byte-for-byte."""

    PAIRS = [(0, b"a" * 100), (150, b"b" * 40), (400, b"c" * 200)]
    READS = [(0, 120), (140, 60), (380, 240), (900, 100)]

    def _read_all(self, **client_options):
        cluster, deployment = make_deployment(chunk_size=64)
        client = deployment.client(cluster.add_node("c0"), **client_options)

        def scenario():
            yield from client.create_blob("data", size=1024)
            for offset, payload in self.PAIRS:
                receipt = yield from client.write("data", offset, payload)
                yield from client.wait_published("data", receipt.version)
            results = []
            for _ in range(2):  # second pass exercises the warm cache
                for offset, size in self.READS:
                    content = yield from client.read("data", offset, size)
                    results.append(content)
            return results

        return run(cluster, scenario()), client, deployment

    def test_all_modes_read_identical_bytes(self):
        baseline, base_client, _ = self._read_all(
            enable_metadata_cache=False, metadata_batching=False)
        for options in ({"enable_metadata_cache": False},
                        {"metadata_batching": False},
                        {}):
            content, client, _ = self._read_all(**options)
            assert content == baseline
            assert client.metadata_read_rpcs <= base_client.metadata_read_rpcs

    def test_batching_and_cache_cut_round_trips(self):
        _, base_client, base_deployment = self._read_all(
            enable_metadata_cache=False, metadata_batching=False)
        _, fast_client, fast_deployment = self._read_all()
        assert base_client.metadata_read_rpcs > fast_client.metadata_read_rpcs
        # the client-side counter agrees with the service-side accounting
        assert (base_deployment.stats()["metadata_read_rpcs"]
                == base_client.metadata_read_rpcs)
        assert (fast_deployment.stats()["metadata_read_rpcs"]
                == fast_client.metadata_read_rpcs)
        # warm second pass means a real hit rate
        assert fast_client.metadata_cache.stats.hit_rate > 0.4
