"""Integration tests: co-located clients sharing one node's metadata cache.

Covers the subsystem end to end — sharing between clients on one node,
write-through publication warming co-tenants, isolation between nodes —
plus the fault scenario the admission gate exists for: a client dying
mid-commit (metadata stored, ``complete`` never issued) must never leave
the shared tier holding nodes of its unpublished version, because the
version manager later publishes that aborted version *empty* and readers
resolving it must see base data, not the dead writer's.
"""

import pytest

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import StorageError
from repro.vstore.client import VectoredClient

BLOB = "shared-blob"
FILE_SIZE = 1 << 20
CHUNK = 4096


def build(num_metadata_providers=2, **config_overrides):
    config = ClusterConfig(shared_metadata_cache=True, **config_overrides)
    cluster = Cluster(config=config)
    deployment = BlobSeerDeployment(
        cluster, num_providers=2,
        num_metadata_providers=num_metadata_providers, chunk_size=CHUNK)
    return cluster, deployment


def run(cluster, generator):
    process = cluster.sim.process(generator)
    cluster.sim.run(stop_event=process)
    return process.value


def assert_gate_invariant(deployment):
    """No shared tier ever holds an entry above its node's watermark."""
    for service in deployment.node_caches.values():
        for (blob_id, _offset, _size, hint) in service._entries:
            assert hint <= service.watermark(blob_id), (
                f"{service.node_name} holds unpublished hint {hint} "
                f"(watermark {service.watermark(blob_id)})")


class TestCoLocatedSharing:
    def test_second_reader_on_the_node_fetches_nothing(self):
        cluster, deployment = build()
        node = cluster.add_node("cn0")
        first = VectoredClient(deployment, node, name="r0")
        second = VectoredClient(deployment, node, name="r1")

        def main():
            yield from first.create_blob(BLOB, FILE_SIZE)
            yield from first.vwrite_and_wait(BLOB, [(0, b"x" * 64 * 1024)])
            yield from first.vread(BLOB, [(0, 64 * 1024)], 1)
            pieces = yield from second.vread(BLOB, [(0, 64 * 1024)], 1)
            return pieces

        pieces = run(cluster, main())
        assert pieces == [b"x" * 64 * 1024]
        assert second.metadata_read_rpcs == 0
        assert second.metadata_lookup_fetches == 0
        assert second.shared_cache_hits > 0
        assert_gate_invariant(deployment)

    def test_clients_on_different_nodes_do_not_share(self):
        cluster, deployment = build()
        first = VectoredClient(deployment, cluster.add_node("cn0"), name="r0")
        other = VectoredClient(deployment, cluster.add_node("cn1"), name="r1")

        def main():
            yield from first.create_blob(BLOB, FILE_SIZE)
            yield from first.vwrite_and_wait(BLOB, [(0, b"y" * CHUNK)])
            yield from first.vread(BLOB, [(0, CHUNK)], 1)
            yield from other.vread(BLOB, [(0, CHUNK)], 1)

        run(cluster, main())
        assert other.shared_cache_hits == 0
        assert other.metadata_lookup_fetches > 0
        assert len(deployment.node_caches) == 2

    def test_write_through_publication_warms_co_tenants(self):
        """One writer's commit leaves the whole node warm: a co-tenant's
        first read costs zero metadata RPCs."""
        cluster, deployment = build()
        node = cluster.add_node("cn0")
        writer = VectoredClient(deployment, node, name="w")
        reader = VectoredClient(deployment, node, name="r")

        def main():
            yield from writer.create_blob(BLOB, FILE_SIZE)
            yield from writer.vwrite_and_wait(BLOB, [(0, b"z" * 32 * 1024)])
            pieces = yield from reader.vread(BLOB, [(0, 32 * 1024)], 1)
            return pieces

        pieces = run(cluster, main())
        assert pieces == [b"z" * 32 * 1024]
        assert reader.metadata_read_rpcs == 0
        assert reader.shared_cache_hits > 0
        assert_gate_invariant(deployment)

    def test_detach_keeps_published_entries_for_the_next_tenant(self):
        cluster, deployment = build()
        node = cluster.add_node("cn0")
        first = VectoredClient(deployment, node, name="r0")

        def phase1():
            yield from first.create_blob(BLOB, FILE_SIZE)
            yield from first.vwrite_and_wait(BLOB, [(0, b"k" * CHUNK)])
            yield from first.vread(BLOB, [(0, CHUNK)], 1)

        run(cluster, phase1())
        first.detach()
        successor = VectoredClient(deployment, node, name="r1")

        def phase2():
            pieces = yield from successor.vread(BLOB, [(0, CHUNK)], 1)
            return pieces

        assert run(cluster, phase2()) == [b"k" * CHUNK]
        assert successor.metadata_read_rpcs == 0


class TestDeathBeforePublication:
    """The satellite's fault scenario, end to end."""

    def _die_before_complete(self, cluster, deployment, writer):
        """Run a commit whose ``complete`` RPC never happens (process
        death after the metadata was stored): the ticket stays assigned,
        the private cache is primed — the shared tier must hold nothing."""
        original = writer.writepath._complete

        def dying_complete(blob_id, version, nodes=None, trace_parent=None):
            raise StorageError("writer process died before complete")
            yield  # pragma: no cover - generator shape

        writer.writepath._complete = dying_complete

        def doomed():
            try:
                yield from writer.vwrite(BLOB, [(0, b"D" * 16 * 1024)])
            except StorageError:
                return "died"
            return "survived"

        outcome = run(cluster, doomed())
        writer.writepath._complete = original
        return outcome

    def test_dead_writer_leaves_no_unpublished_state_in_the_shared_tier(self):
        cluster, deployment = build()
        node = cluster.add_node("cn0")
        writer = VectoredClient(deployment, node, name="w")
        reader = VectoredClient(deployment, node, name="r")

        def setup():
            yield from writer.create_blob(BLOB, FILE_SIZE)

        run(cluster, setup())
        assert self._die_before_complete(cluster, deployment, writer) == "died"

        # the writer's own (dying) private cache may hold version-1 nodes;
        # the node's shared tier must not
        service = deployment.node_caches[node.name]
        assert service.watermark(BLOB) == 0
        assert_gate_invariant(deployment)
        assert all(hint == 0 for (_b, _o, _s, hint) in service._entries)

        # recovery: the fault handler scrubs the dead writer's stored nodes
        # (exactly what the engine's own failure paths do before aborting),
        # then the version manager aborts the dead ticket — version 1
        # publishes *empty*, so a reader resolving it must see base data
        # (zeros).  The scrub can reach the metadata shards, but it can
        # never reach a poisoned node-local cache on some compute node:
        # only the admission gate keeps those clean.
        from repro.blobseer.metadata.nodes import NodeKey
        for shard in deployment.metadata_store.shards:
            for blob_id, offset, size in list(shard._versions):
                shard.remove_node(NodeKey(blob_id, 1, offset, size))
        manager = deployment.version_manager.manager
        manager.abort(BLOB, 1)

        def read_aborted_version():
            pieces = yield from reader.vread(BLOB, [(0, 16 * 1024)], 1)
            return pieces

        assert run(cluster, read_aborted_version()) == [b"\x00" * 16 * 1024]
        assert_gate_invariant(deployment)

    def test_completion_blocked_by_an_earlier_ticket_stays_gated(self):
        """A commit whose ``complete`` returns a lagging watermark (an
        earlier ticket still open) must not shared-publish its nodes yet."""
        cluster, deployment = build()
        node = cluster.add_node("cn0")
        blocker = VectoredClient(deployment, node, name="blocker")
        writer = VectoredClient(deployment, node, name="w")

        def main():
            yield from writer.create_blob(BLOB, FILE_SIZE)
            # the blocker takes ticket 1 and never completes it
            yield from blocker._control(
                deployment.version_manager, "assign_ticket", BLOB)
            # the writer commits ticket 2; publication cannot advance
            receipt = yield from writer.vwrite(BLOB, [(0, b"W" * CHUNK)])
            return receipt

        receipt = run(cluster, main())
        assert receipt.version == 2
        service = deployment.node_caches[node.name]
        assert service.watermark(BLOB) == 0
        assert len(service) == 0
        assert_gate_invariant(deployment)

        # once the blocker's ticket aborts, version 2 publishes and normal
        # reads repopulate the tier — correctness was never at risk
        deployment.version_manager.manager.abort(BLOB, 1)
        reader = VectoredClient(deployment, node, name="r")

        def read_back():
            pieces = yield from reader.vread(BLOB, [(0, CHUNK)], 2)
            return pieces

        assert run(cluster, read_back()) == [b"W" * CHUNK]
        assert len(service) > 0
        assert_gate_invariant(deployment)


class TestConcurrentWriters:
    def test_shared_tier_reads_match_private_baseline_under_racing_writers(self):
        """The acceptance conformance: while writers keep publishing new
        snapshots, co-located readers resolving explicit versions through
        the shared tier return exactly what a private-cache client reads —
        version by version, byte for byte."""
        rounds = 6

        def run_mode(shared):
            config = ClusterConfig(shared_metadata_cache=shared)
            cluster = Cluster(config=config)
            deployment = BlobSeerDeployment(cluster, num_providers=2,
                                            num_metadata_providers=2,
                                            chunk_size=CHUNK)
            node = cluster.add_node("cn0")
            writer_a = VectoredClient(deployment, cluster.add_node("wa"),
                                      name="wa", shared_metadata_cache=False)
            writer_b = VectoredClient(deployment, cluster.add_node("wb"),
                                      name="wb", shared_metadata_cache=False)
            readers = [VectoredClient(deployment, node, name=f"r{index}")
                       for index in range(3)]
            observed = {}

            def write_loop(writer, fill):
                for round_index in range(rounds):
                    offset = (round_index % 4) * 4 * CHUNK
                    payload = bytes([fill + round_index]) * (2 * CHUNK)
                    yield from writer.vwrite_and_wait(BLOB, [(offset,
                                                             payload)])

            def read_loop(index):
                reader = readers[index]
                for round_index in range(rounds):
                    # chase publication: read whatever is published *now*
                    version = yield from reader.latest_version(BLOB)
                    pieces = yield from reader.vread(
                        BLOB, [(0, 16 * CHUNK)], version)
                    observed[(index, round_index)] = (version, pieces[0])
                    yield cluster.sim.timeout(0.002)

            def main():
                yield from writer_a.create_blob(BLOB, FILE_SIZE)
                processes = [cluster.sim.process(write_loop(writer_a, 1)),
                             cluster.sim.process(write_loop(writer_b, 100))]
                processes += [cluster.sim.process(read_loop(index))
                              for index in range(len(readers))]
                yield cluster.sim.all_of(processes)

            process = cluster.sim.process(main())
            cluster.sim.run(stop_event=process)

            # ground truth per observed version, from a fresh private client
            truth_client = VectoredClient(deployment,
                                          cluster.add_node("truth"),
                                          name="truth",
                                          shared_metadata_cache=False)
            truth = {}

            def resolve_truth():
                for version in sorted({version for version, _data
                                       in observed.values()}):
                    pieces = yield from truth_client.vread(
                        BLOB, [(0, 16 * CHUNK)], version)
                    truth[version] = pieces[0]

            process = cluster.sim.process(resolve_truth())
            cluster.sim.run(stop_event=process)
            return observed, truth

        observed, truth = run_mode(shared=True)
        for key, (version, data) in observed.items():
            assert data == truth[version], (key, version)
        # and the snapshot images themselves match a fully private run
        # re-executing the same deterministic write schedule
        observed_private, truth_private = run_mode(shared=False)
        common = set(truth) & set(truth_private)
        assert common
        for version in common:
            assert truth[version] == truth_private[version], version


class TestCollectiveWarmsTheNode:
    def test_absorbed_plan_reaches_the_shared_tier(self):
        """absorb_plan_nodes (the collective read broadcast) populates the
        shared tier, so one collective warms the whole node — co-tenants
        that never participated read at zero RPCs."""
        cluster, deployment = build()
        node = cluster.add_node("cn0")
        participant = VectoredClient(deployment, node, name="p")
        bystander = VectoredClient(deployment, node, name="b")
        seeder = VectoredClient(deployment, cluster.add_node("seed"),
                                name="s", shared_metadata_cache=False)

        def main():
            yield from seeder.create_blob(BLOB, FILE_SIZE)
            yield from seeder.vwrite_and_wait(BLOB, [(0, b"c" * CHUNK)])
            # a resolver elsewhere shipped its trace; the participant
            # absorbs it exactly as the collective read protocol does
            trace = {}
            yield from seeder._vectored_read(
                BLOB, seeder._as_read_vector([(0, CHUNK)]), 1, trace=trace)
            participant.note_collective_read(BLOB, 1)
            participant.absorb_plan_nodes(BLOB, list(trace.items()))
            pieces = yield from bystander.vread(BLOB, [(0, CHUNK)], 1)
            return pieces

        assert run(cluster, main()) == [b"c" * CHUNK]
        assert bystander.metadata_read_rpcs == 0
        assert bystander.shared_cache_hits > 0
        assert participant.plan_nodes_absorbed > 0
        assert_gate_invariant(deployment)
