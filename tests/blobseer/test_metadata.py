"""Unit tests for the versioned segment tree (nodes, store, build, read plan)."""

import pytest

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.chunk import ChunkKey
from repro.blobseer.metadata.nodes import ChildRef, LeafSegment, MetadataNode, NodeKey
from repro.blobseer.metadata.segment_tree import (
    build_leaf_segments,
    build_write_metadata,
    leaf_pieces_for_vector,
    overlay_segments,
    plan_read,
    split_vector_into_pieces,
)
from repro.blobseer.metadata.store import MetadataStore, PartitionedMetadataStore
from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.errors import InvalidRegion, OutOfBounds, VersionNotFound


def seg(rel, length, writer="w", seq=0, chunk_offset=0, provider="p0"):
    return LeafSegment(rel, length, ChunkKey(writer, seq), chunk_offset, provider)


BLOB = BlobDescriptor.create("blob", size=8 * 64, chunk_size=64)


class TestNodes:
    def test_leaf_segments_must_be_sorted_disjoint(self):
        key = NodeKey("b", 1, 0, 64)
        MetadataNode(key, True, segments=(seg(0, 8), seg(8, 8)), base_version=0)
        with pytest.raises(InvalidRegion):
            MetadataNode(key, True, segments=(seg(0, 10), seg(5, 8)), base_version=0)

    def test_leaf_segment_must_fit_leaf(self):
        key = NodeKey("b", 1, 0, 64)
        with pytest.raises(InvalidRegion):
            MetadataNode(key, True, segments=(seg(60, 10),), base_version=0)

    def test_inner_node_needs_children(self):
        key = NodeKey("b", 1, 0, 128)
        with pytest.raises(InvalidRegion):
            MetadataNode(key, False)
        MetadataNode(key, False, left=ChildRef(0, 0, 64), right=ChildRef(0, 64, 64))

    def test_leaf_cannot_have_children(self):
        key = NodeKey("b", 1, 0, 64)
        with pytest.raises(InvalidRegion):
            MetadataNode(key, True, left=ChildRef(0, 0, 32), right=ChildRef(0, 32, 32))

    def test_invalid_segment(self):
        with pytest.raises(InvalidRegion):
            seg(-1, 5)
        with pytest.raises(InvalidRegion):
            seg(0, 0)


class TestMetadataStore:
    def test_at_or_before_resolution(self):
        store = MetadataStore()
        for version in (1, 3, 7):
            store.put_node(MetadataNode(NodeKey("b", version, 0, 64), True,
                                        segments=(seg(0, 8, seq=version),),
                                        base_version=version - 1))
        assert store.get_at_or_before("b", 0, 64, 0) is None
        assert store.get_at_or_before("b", 0, 64, 1).key.version == 1
        assert store.get_at_or_before("b", 0, 64, 2).key.version == 1
        assert store.get_at_or_before("b", 0, 64, 6).key.version == 3
        assert store.get_at_or_before("b", 0, 64, 100).key.version == 7

    def test_reput_same_version_is_idempotent(self):
        store = MetadataStore()
        node = MetadataNode(NodeKey("b", 1, 0, 64), True,
                            segments=(seg(0, 8),), base_version=0)
        store.put_node(node)
        store.put_node(node)
        assert store.node_count() == 1

    def test_get_exact(self):
        store = MetadataStore()
        node = MetadataNode(NodeKey("b", 2, 0, 64), True,
                            segments=(seg(0, 8),), base_version=1)
        store.put_node(node)
        assert store.get_exact(NodeKey("b", 2, 0, 64)) is node
        with pytest.raises(VersionNotFound):
            store.get_exact(NodeKey("b", 3, 0, 64))

    def test_partitioning_is_stable_and_covers_all_shards(self):
        shards = [MetadataStore(f"m{i}") for i in range(4)]
        partitioned = PartitionedMetadataStore(shards)
        seen = set()
        for offset in range(0, 64 * 64, 64):
            index = PartitionedMetadataStore.partition_index("b", offset, 64, 4)
            assert 0 <= index < 4
            assert index == PartitionedMetadataStore.partition_index("b", offset, 64, 4)
            seen.add(index)
        assert seen == {0, 1, 2, 3}

    def test_partitioned_put_get(self):
        partitioned = PartitionedMetadataStore([MetadataStore("m0"), MetadataStore("m1")])
        node = MetadataNode(NodeKey("b", 1, 64, 64), True,
                            segments=(seg(0, 8),), base_version=0)
        partitioned.put_node(node)
        assert partitioned.get_at_or_before("b", 64, 64, 1) is node
        assert partitioned.node_count() == 1

    def test_batched_get_nodes_aligned_with_requests(self):
        shards = [MetadataStore("m0"), MetadataStore("m1")]
        partitioned = PartitionedMetadataStore(shards)
        nodes = [MetadataNode(NodeKey("b", 1, offset, 64), True,
                              segments=(seg(0, 8),), base_version=0)
                 for offset in (0, 64, 192)]
        for node in nodes:
            partitioned.put_node(node)
        requests = [(0, 64, 5), (128, 64, 5), (64, 64, 5), (192, 64, 0)]
        # routed across shards, results aligned with request order;
        # never-written (128) and too-old-hint (192 at hint 0) come back None
        assert partitioned.get_nodes("b", requests) == \
            [nodes[0], None, nodes[1], None]
        # the per-shard form (what one get_nodes RPC executes) agrees
        for shard in shards:
            assert shard.get_nodes("b", requests[:2]) == [
                shard.get_at_or_before("b", 0, 64, 5),
                shard.get_at_or_before("b", 128, 64, 5)]

    def test_group_by_shard_partitions_consistently(self):
        partitioned = PartitionedMetadataStore([MetadataStore("m0"), MetadataStore("m1")])
        requests = [(offset, 64, 3) for offset in range(0, 16 * 64, 64)]
        grouped = partitioned.group_by_shard("b", requests)
        assert sorted(r for reqs in grouped.values() for r in reqs) == requests
        for index, shard_requests in grouped.items():
            for offset, size, _ in shard_requests:
                assert PartitionedMetadataStore.partition_index(
                    "b", offset, size, 2) == index

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            PartitionedMetadataStore([])


class TestSplitVector:
    def test_split_respects_chunk_boundaries(self):
        vector = IOVector.for_write([(50, b"x" * 100)])
        pieces = split_vector_into_pieces(BLOB, vector)
        assert [(p.leaf_offset, p.rel_offset, p.length) for p in pieces] == [
            (0, 50, 14), (64, 0, 64), (128, 0, 22)]
        assert b"".join(p.data for p in pieces) == b"x" * 100

    def test_split_multiple_requests_keeps_order(self):
        vector = IOVector.for_write([(0, b"a" * 10), (100, b"b" * 10)])
        pieces = split_vector_into_pieces(BLOB, vector)
        assert [p.request_index for p in pieces] == [0, 1]

    def test_zero_length_requests_skipped(self):
        vector = IOVector.for_write([(0, b""), (10, b"xy")])
        pieces = split_vector_into_pieces(BLOB, vector)
        assert len(pieces) == 1

    def test_out_of_bounds_rejected(self):
        vector = IOVector.for_write([(8 * 64 - 1, b"ab")])
        with pytest.raises(OutOfBounds):
            split_vector_into_pieces(BLOB, vector)

    def test_read_vector_rejected(self):
        with pytest.raises(InvalidRegion):
            split_vector_into_pieces(BLOB, IOVector.for_read([(0, 4)]))

    def test_leaf_pieces_for_vector_counts(self):
        vector = IOVector.for_write([(0, b"a" * 70), (130, b"b" * 10)])
        counts = leaf_pieces_for_vector(BLOB, vector)
        assert counts == {0: 64, 64: 6, 128: 10}


class TestOverlaySegments:
    def test_non_overlapping_appended_sorted(self):
        result = overlay_segments([seg(0, 10)], seg(20, 10, seq=1))
        assert [(s.rel_offset, s.length) for s in result] == [(0, 10), (20, 10)]

    def test_new_segment_wins_on_overlap(self):
        result = overlay_segments([seg(0, 20)], seg(5, 10, seq=1))
        assert [(s.rel_offset, s.length) for s in result] == [(0, 5), (5, 10), (15, 5)]
        # the surviving right piece must skip the overwritten bytes
        assert result[2].chunk_offset == 15

    def test_new_segment_fully_covers_old(self):
        result = overlay_segments([seg(5, 10)], seg(0, 30, seq=1))
        assert [(s.rel_offset, s.length) for s in result] == [(0, 30)]

    def test_chain_of_overlays(self):
        segments = []
        for index in range(4):
            segments = overlay_segments(segments, seg(index * 4, 8, seq=index))
        assert [(s.rel_offset, s.length) for s in segments] == \
            [(0, 4), (4, 4), (8, 4), (12, 8)]


class TestBuildWriteMetadata:
    def _segments_for(self, vector, version=1, base=0):
        pieces = split_vector_into_pieces(BLOB, vector)
        for index, piece in enumerate(pieces):
            piece.chunk = ChunkKey("w", index)
            piece.provider_id = "p0"
        leaf_segments = build_leaf_segments(BLOB, pieces)
        return build_write_metadata(BLOB, version, base, leaf_segments)

    def test_single_leaf_write_creates_path_to_root(self):
        nodes = self._segments_for(IOVector.for_write([(0, b"x" * 10)]))
        sizes = sorted(node.key.size for node in nodes)
        # leaf (64) + inner 128, 256, 512 (root) for an 8-leaf tree
        assert sizes == [64, 128, 256, 512]
        root = [n for n in nodes if n.key.size == BLOB.capacity][0]
        assert not root.is_leaf
        assert root.left.version_hint == 1      # touched side
        assert root.right.version_hint == 0     # shadowed side

    def test_two_distant_leaves_share_root(self):
        nodes = self._segments_for(IOVector.for_write([(0, b"x" * 10),
                                                       (7 * 64, b"y" * 10)]))
        roots = [n for n in nodes if n.key.size == BLOB.capacity]
        assert len(roots) == 1
        assert roots[0].left.version_hint == 1
        assert roots[0].right.version_hint == 1

    def test_unplaced_pieces_rejected(self):
        pieces = split_vector_into_pieces(BLOB, IOVector.for_write([(0, b"ab")]))
        with pytest.raises(InvalidRegion):
            build_leaf_segments(BLOB, pieces)

    def test_empty_write_rejected(self):
        with pytest.raises(InvalidRegion):
            build_write_metadata(BLOB, 1, 0, {})

    def test_full_blob_write_creates_all_nodes(self):
        nodes = self._segments_for(IOVector.for_write([(0, b"z" * BLOB.capacity)]))
        # 8 leaves + 4 + 2 + 1 inner nodes
        assert len(nodes) == 15


class _StoreReader:
    """Adapter store -> get_node callback used by plan_read tests."""

    def __init__(self, blob):
        self.blob = blob
        self.store = MetadataStore()

    def write(self, version, base, vector, writer="w"):
        pieces = split_vector_into_pieces(self.blob, vector)
        for index, piece in enumerate(pieces):
            piece.chunk = ChunkKey(f"{writer}v{version}", index)
            piece.provider_id = "p0"
        leaf_segments = build_leaf_segments(self.blob, pieces)
        for node in build_write_metadata(self.blob, version, base, leaf_segments):
            self.store.put_node(node)
        return pieces

    def get_node(self, offset, size, hint):
        return self.store.get_at_or_before(self.blob.blob_id, offset, size, hint)


class TestPlanRead:
    def test_unwritten_blob_reads_zero(self):
        reader = _StoreReader(BLOB)
        plan = plan_read(BLOB, 0, RegionList([(0, 100)]), reader.get_node)
        assert plan.chunk_bytes() == 0
        assert plan.zero_bytes() == 100

    def test_read_resolves_written_chunks(self):
        reader = _StoreReader(BLOB)
        reader.write(1, 0, IOVector.for_write([(10, b"a" * 20)]))
        plan = plan_read(BLOB, 1, RegionList([(0, 64)]), reader.get_node)
        assert plan.chunk_bytes() == 20
        assert plan.zero_bytes() == 44
        covered = sorted((e.offset, e.length) for e in plan.extents)
        assert sum(length for _, length in covered) == 64

    def test_snapshot_isolation_older_version_unaffected(self):
        reader = _StoreReader(BLOB)
        reader.write(1, 0, IOVector.for_write([(0, b"a" * 64)]))
        reader.write(2, 1, IOVector.for_write([(0, b"b" * 64)]))
        plan_v1 = plan_read(BLOB, 1, RegionList([(0, 64)]), reader.get_node)
        plan_v2 = plan_read(BLOB, 2, RegionList([(0, 64)]), reader.get_node)
        assert plan_v1.extents[0].chunk.writer == "wv1"
        assert plan_v2.extents[0].chunk.writer == "wv2"

    def test_partial_leaf_falls_back_to_base_version(self):
        reader = _StoreReader(BLOB)
        reader.write(1, 0, IOVector.for_write([(0, b"a" * 64)]))
        reader.write(2, 1, IOVector.for_write([(16, b"b" * 16)]))
        plan = plan_read(BLOB, 2, RegionList([(0, 64)]), reader.get_node)
        by_writer = {}
        for extent in plan.extents:
            by_writer.setdefault(extent.chunk.writer, 0)
            by_writer[extent.chunk.writer] += extent.length
        assert by_writer == {"wv1": 48, "wv2": 16}

    def test_shadowed_subtree_resolved_through_older_version(self):
        reader = _StoreReader(BLOB)
        reader.write(1, 0, IOVector.for_write([(7 * 64, b"x" * 64)]))
        reader.write(2, 1, IOVector.for_write([(0, b"y" * 64)]))
        plan = plan_read(BLOB, 2, RegionList([(7 * 64, 64)]), reader.get_node)
        assert plan.extents[0].chunk.writer == "wv1"

    def test_read_out_of_bounds_rejected(self):
        reader = _StoreReader(BLOB)
        with pytest.raises(OutOfBounds):
            plan_read(BLOB, 0, RegionList([(BLOB.capacity - 1, 2)]), reader.get_node)

    def test_empty_read_plan(self):
        reader = _StoreReader(BLOB)
        plan = plan_read(BLOB, 0, RegionList(), reader.get_node)
        assert plan.extents == []

    def test_noncontiguous_read_plan(self):
        reader = _StoreReader(BLOB)
        reader.write(1, 0, IOVector.for_write([(0, b"a" * 8), (128, b"c" * 8)]))
        plan = plan_read(BLOB, 1, RegionList([(0, 8), (128, 8)]), reader.get_node)
        assert plan.chunk_bytes() == 16
        assert plan.zero_bytes() == 0

    def test_metadata_accounting(self):
        reader = _StoreReader(BLOB)
        reader.write(1, 0, IOVector.for_write([(0, b"a" * 8)]))
        plan = plan_read(BLOB, 1, RegionList([(0, 8)]), reader.get_node)
        assert plan.nodes_fetched >= BLOB.tree_depth + 1
        assert plan.levels >= BLOB.tree_depth + 1
