"""Hand-built scenario helpers for the fuzz suites.

The liveness tests need scenarios whose shape is *guaranteed* (the
generator only produces an aggregator death when the dice land right), so
they assemble :class:`~repro.fuzz.scenario.Scenario` values directly.
"""

from repro.fuzz.scenario import PhaseSpec, Scenario, workload_file_size

#: a disjoint full-coverage pattern: every rank, every aggregator stripe
#: nonempty, bytes flush-order-independent
CHECKPOINT = {"family": "checkpoint", "blocks_per_rank": 2, "block_size": 512}


def random_workload(seed, file_size=8 * 1024, **extra):
    workload = {"family": "random", "seed": seed, "file_size": file_size,
                "max_regions": 3, "max_region_size": 800,
                "empty_rank_chance": 0.0, "window": None}
    workload.update(extra)
    return workload


def make_scenario(seed=0, num_ranks=4, num_aggregators=2, chunk_size=1024,
                  phases=(), injectors=(), cluster=None, ranks_per_node=1):
    file_size = max(workload_file_size(phase.workload, num_ranks)
                    for phase in phases)
    file_size = -(-file_size // chunk_size) * chunk_size
    return Scenario(
        seed=seed,
        num_ranks=num_ranks,
        ranks_per_node=ranks_per_node,
        num_aggregators=num_aggregators,
        file_size=file_size,
        chunk_size=chunk_size,
        num_providers=3,
        num_metadata_providers=2,
        cluster=dict(cluster or {}),
        phases=tuple(phases),
        injectors=tuple(injectors),
    )


def checkpoint_phase(kind="independent_write"):
    return PhaseSpec(kind=kind, workload=dict(CHECKPOINT))
