"""The replay contract: a seed reproduces its runs.ndjson line exactly.

Byte-identical replay is what makes a flagged seed a shareable bug report:
``python -m repro.fuzz --replay SEED`` must rebuild the scenario, re-run
it, and emit the same line the sweep recorded — and fail loudly when the
record was tampered with or the run flags.
"""

import json
import os


from repro.fuzz.cli import build_parser, main
from repro.fuzz.generator import generate_scenario
from repro.fuzz.report import append_line, recorded_line, run_line
from repro.fuzz.runner import execute_scenario

SEED = 1


def test_execution_is_deterministic_line_for_line():
    scenario = generate_scenario(SEED)
    first = run_line(execute_scenario(scenario))
    second = run_line(execute_scenario(scenario))
    assert first == second


def test_run_line_has_no_wall_clock_fields():
    line = json.loads(run_line(execute_scenario(generate_scenario(SEED))))
    assert set(line) == {"seed", "status", "num_ranks", "num_aggregators",
                         "phases", "injectors", "fired", "dormant",
                         "anomalies", "anomaly_count", "read_digest",
                         "latest_version", "processed_events",
                         "sim_elapsed"}
    # sim_elapsed is simulated seconds (deterministic), never wall time
    assert line["sim_elapsed"] < 60.0


def test_cli_sweep_writes_one_line_per_run(tmp_path, capsys):
    out = str(tmp_path / "fuzzer_output")
    assert main(["--max-runs", "3", "--out", out]) == 0
    lines = open(os.path.join(out, "runs.ndjson")).read().splitlines()
    assert len(lines) == 3
    assert [json.loads(line)["seed"] for line in lines] == [0, 1, 2]
    assert all(json.loads(line)["status"] == "ok" for line in lines)
    assert not os.path.exists(os.path.join(out, "flagged"))


def test_cli_replay_matches_recorded_line(tmp_path, capsys):
    out = str(tmp_path / "fuzzer_output")
    assert main(["--max-runs", "2", "--seed-base", str(SEED),
                 "--out", out]) == 0
    capsys.readouterr()
    assert main(["--replay", str(SEED), "--out", out]) == 0
    captured = capsys.readouterr()
    assert captured.out.strip() == recorded_line(out, SEED)
    assert "byte-identically" in captured.err


def test_cli_replay_flags_tampered_record(tmp_path, capsys):
    out = str(tmp_path / "fuzzer_output")
    line = json.loads(run_line(execute_scenario(generate_scenario(SEED))))
    line["read_digest"] = "0" * 64          # forge the recorded digest
    append_line(out, json.dumps(line, sort_keys=True,
                                separators=(",", ":")))
    assert main(["--replay", str(SEED), "--out", out,
                 "--no-artifacts"]) == 1
    assert "REPLAY MISMATCH" in capsys.readouterr().err


def test_cli_replay_without_record_still_reports(tmp_path, capsys):
    out = str(tmp_path / "fuzzer_output")
    assert main(["--replay", str(SEED), "--out", out]) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out)["seed"] == SEED


def test_seed_base_offsets_the_sweep(tmp_path):
    out = str(tmp_path / "fuzzer_output")
    assert main(["--max-runs", "2", "--seed-base", "40",
                 "--out", out, "--no-artifacts"]) == 0
    seeds = [json.loads(line)["seed"]
             for line in open(os.path.join(out, "runs.ndjson"))]
    assert seeds == [40, 41]


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.max_runs == 100
    assert args.seed_base == 0
    assert args.out == "fuzzer_output"
    assert args.replay is None
    assert not args.no_artifacts
