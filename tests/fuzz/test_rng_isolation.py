"""RNG scope isolation: fuzz-scope draws never perturb anything else.

The fuzzer's determinism rests on scoped RNG streams being independent:
generating scenarios (which consumes ``fuzz``-scope streams) must not
change workload bytes, network jitter or simulated timelines derived from
other scopes of the same root seed — and vice versa.
"""

import pytest

from repro.fuzz.generator import generate_scenario
from repro.fuzz.report import run_line
from repro.fuzz.runner import execute_scenario
from repro.simengine.rand import SCOPE_FUZZ, DeterministicRNG
from repro.workloads.random_vectored import RandomVectoredWorkload


def draws(stream, count=8):
    return [int(stream.integers(0, 10 ** 9)) for _ in range(count)]


def test_fuzz_scope_draws_leave_base_streams_untouched():
    baseline = draws(DeterministicRNG(7).stream("workload"))

    rng = DeterministicRNG(7)
    fuzz = rng.scope(SCOPE_FUZZ)
    for name in ("cluster", "phases", "hostility"):
        draws(fuzz.stream(name), 64)        # heavy fuzz-scope consumption
    assert draws(rng.stream("workload")) == baseline


def test_fuzz_scope_streams_are_distinct_from_base_streams():
    rng = DeterministicRNG(7)
    assert draws(rng.scope(SCOPE_FUZZ).stream("cluster")) \
        != draws(rng.stream("cluster"))


def test_fuzz_scope_does_not_leak_across_scopes():
    rng = DeterministicRNG(7)
    baseline = draws(rng.scope("network").stream("jitter"))
    rng2 = DeterministicRNG(7)
    draws(rng2.scope(SCOPE_FUZZ).stream("jitter"), 64)
    assert draws(rng2.scope("network").stream("jitter")) == baseline


def test_generation_does_not_perturb_workload_bytes():
    workload = RandomVectoredWorkload(num_ranks=3, file_size=8192, seed=5)
    before = [workload.write_pairs(rank) for rank in range(3)]
    for seed in range(20):
        generate_scenario(seed)             # pure fuzz-scope consumption
    rebuilt = RandomVectoredWorkload(num_ranks=3, file_size=8192, seed=5)
    assert [rebuilt.write_pairs(rank) for rank in range(3)] == before


def test_generation_does_not_perturb_executed_timelines():
    scenario = generate_scenario(11)
    baseline = run_line(execute_scenario(scenario))
    for seed in range(30):                  # interleave heavy generation
        generate_scenario(seed)
    assert run_line(execute_scenario(scenario)) == baseline


def test_scenario_generation_is_pure():
    # no module/global state: interleaved generation at different seeds
    # yields the same scenarios as straight-line generation
    straight = [generate_scenario(seed).canonical_json()
                for seed in range(6)]
    interleaved = []
    for seed in range(6):
        generate_scenario(99 - seed)        # noise between the real calls
        interleaved.append(generate_scenario(seed).canonical_json())
    assert interleaved == straight


@pytest.mark.parametrize("seed", [2, 13])
def test_jittered_networks_replay_identically(seed):
    # find-free check on the hardest case: scenarios whose cluster rolls
    # network jitter draw their delays from the sim's own scoped streams,
    # and must still replay byte-identically
    scenario = generate_scenario(seed)
    assert run_line(execute_scenario(scenario)) \
        == run_line(execute_scenario(scenario))
