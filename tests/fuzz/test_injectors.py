"""Injector liveness: every runtime injector proven to actually fire.

The generator only rolls an injector when its preconditions line up, so
these suites pin hand-built scenarios where each injector is *guaranteed*
to trigger — and assert both that it fired and that the run still judges
clean (the containment contracts absorb the injected hostility).
"""

from repro.fuzz.injectors import (
    AggregatorDeath,
    CacheThrash,
    HotSpot,
    ResolverDeath,
    Straggler,
    build_injectors,
    death_injector_for_phase,
)
from repro.fuzz.runner import execute_scenario
from repro.fuzz.scenario import InjectorSpec, PhaseSpec, build_workload
from repro.mpiio.adio.collective import aggregator_ranks
from tests.fuzz._scenlib import CHECKPOINT, checkpoint_phase, \
    make_scenario, random_workload

NUM_RANKS = 4
NUM_AGGREGATORS = 2
DOOMED = aggregator_ranks(NUM_RANKS, NUM_AGGREGATORS)[-1]


def run_clean(scenario):
    result = execute_scenario(scenario)
    assert not result.flagged, result.all_anomalies()
    return result


def test_build_injectors_maps_kinds():
    specs = [InjectorSpec(kind="aggregator_death", phase=0,
                          params={"rank": 0}),
             InjectorSpec(kind="resolver_death", phase=1,
                          params={"rank": 0}),
             InjectorSpec(kind="straggler", phase=0,
                          params={"rank": 1, "max_delay": 0.005,
                                  "delay": 0.05}),
             InjectorSpec(kind="cache_thrash", phase=0,
                          params={"reads": 4, "max_size": 256}),
             InjectorSpec(kind="hot_spot", phase=0,
                          params={"window": [0, 1024]})]
    injectors = build_injectors(specs)
    assert [type(injector) for injector in injectors] == [
        AggregatorDeath, ResolverDeath, Straggler, CacheThrash, HotSpot]
    assert death_injector_for_phase(injectors, 0) is injectors[0]
    assert death_injector_for_phase(injectors, 1) is injectors[1]
    assert death_injector_for_phase(injectors, 2) is None


def test_aggregator_death_fires_aborts_and_contains():
    scenario = make_scenario(
        num_ranks=NUM_RANKS, num_aggregators=NUM_AGGREGATORS,
        phases=[checkpoint_phase("collective_write"), checkpoint_phase()],
        injectors=[InjectorSpec(kind="aggregator_death", phase=0,
                                params={"rank": DOOMED})])
    result = run_clean(scenario)
    assert result.fired == ["aggregator_death"]
    assert result.dormant == []
    # the fired death aborted exactly one ticket, yet the chain healed:
    # a clean version_monotonicity checker is only possible if
    # tickets_aborted == 1 matched the expectation
    assert result.latest_version is not None


def test_resolver_death_fires_and_contains():
    scenario = make_scenario(
        num_ranks=NUM_RANKS, num_aggregators=NUM_AGGREGATORS,
        phases=[checkpoint_phase("collective_write"),
                checkpoint_phase("collective_read"),
                checkpoint_phase()],
        injectors=[InjectorSpec(kind="resolver_death", phase=1,
                                params={"rank": DOOMED})])
    result = run_clean(scenario)
    assert result.fired == ["resolver_death"]


def test_straggler_trips_the_flush_watchdog():
    scenario = make_scenario(
        num_ranks=NUM_RANKS, num_aggregators=NUM_AGGREGATORS,
        phases=[checkpoint_phase("independent_write")],
        injectors=[InjectorSpec(kind="straggler", phase=0,
                                params={"rank": 1, "max_delay": 0.005,
                                        "delay": 0.05})])
    result = run_clean(scenario)
    assert result.fired == ["straggler"]


def test_straggler_does_not_change_checkpoint_bytes():
    phases = [checkpoint_phase("independent_write")]
    base = make_scenario(num_ranks=NUM_RANKS,
                         num_aggregators=NUM_AGGREGATORS, phases=phases)
    slowed = make_scenario(
        num_ranks=NUM_RANKS, num_aggregators=NUM_AGGREGATORS, phases=phases,
        injectors=[InjectorSpec(kind="straggler", phase=0,
                                params={"rank": 2, "max_delay": 0.005,
                                        "delay": 0.08})])
    # disjoint blocks: watchdog-perturbed flush order may not change bytes
    assert run_clean(base).read_digest == run_clean(slowed).read_digest


def test_cache_thrash_adversary_runs_alongside_the_job():
    scenario = make_scenario(
        num_ranks=NUM_RANKS, num_aggregators=NUM_AGGREGATORS,
        phases=[checkpoint_phase("collective_write"),
                checkpoint_phase("collective_read")],
        injectors=[InjectorSpec(kind="cache_thrash", phase=0,
                                params={"reads": 6, "max_size": 512})])
    result = run_clean(scenario)
    assert result.fired == ["cache_thrash"]


def test_hot_spot_window_confines_the_workload():
    workload = random_workload(seed=21, file_size=16 * 1024,
                               window=[2048, 2048], max_region_size=400)
    scenario = make_scenario(
        num_ranks=NUM_RANKS, num_aggregators=NUM_AGGREGATORS,
        phases=[PhaseSpec(kind="collective_write", workload=workload)],
        injectors=[InjectorSpec(kind="hot_spot", phase=0,
                                params={"window": [2048, 2048]})])
    built = build_workload(workload, NUM_RANKS)
    lo, hi = built.union_extent()
    assert 2048 <= lo and hi <= 4096
    result = run_clean(scenario)
    assert result.fired == ["hot_spot"]


def test_dormant_death_heals_and_reports_dormant():
    # every rank shows up empty-handed (seed 0 at chance 0.9 rolls empty
    # for all four ranks): no stripe ever commits, so the one-shot patch
    # never fires — it must heal, not leak or flag
    workload = random_workload(seed=0, file_size=16 * 1024,
                               empty_rank_chance=0.9)
    scenario = make_scenario(
        num_ranks=NUM_RANKS, num_aggregators=NUM_AGGREGATORS,
        phases=[PhaseSpec(kind="collective_write", workload=workload),
                checkpoint_phase("collective_write")],
        injectors=[InjectorSpec(kind="aggregator_death", phase=0,
                                params={"rank": DOOMED})])
    result = run_clean(scenario)
    assert result.fired == []
    assert result.dormant == ["aggregator_death"]


def test_atomic_writers_with_overlap_stay_clean():
    workload = {"family": "overlap", "regions_per_client": 3,
                "region_size": 700, "overlap_fraction": 0.5}
    scenario = make_scenario(
        num_ranks=3, num_aggregators=2,
        phases=[PhaseSpec(kind="atomic_write", workload=workload),
                PhaseSpec(kind="independent_read",
                          workload=dict(CHECKPOINT))])
    run_clean(scenario)
