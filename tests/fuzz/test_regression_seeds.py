"""Seed-pinned fuzzer regressions.

The first 2000-seed sweep of the finished fuzzer came back clean, so —
per the fuzzer's landing contract — these pin the lowest seeds whose
generated scenarios exercise each injected-hostility path that flagged
while the fuzzer itself was being brought up (mis-masked death windows,
watchdog flushes racing rank-order publication, adversary reads against
half-published versions).  If a future change reintroduces any of those
bugs, the matching seed flags again right here, with full replay:

    python -m repro.fuzz --replay <seed>

Each seed is the lowest one whose scenario *fires* the named injector —
dormant arms don't regress anything.
"""

import pytest

from repro.fuzz.generator import generate_scenario
from repro.fuzz.report import run_line
from repro.fuzz.runner import execute_scenario

#: seed -> the injector kind the scenario is pinned to fire
PINNED = {
    1: "straggler",          # watchdog flush out of rank order
    3: "cache_thrash",       # adversary churn against live metadata
    14: "provider_death",    # peer daemon dies under a peer-miss storm
    19: "aggregator_death",  # torn stripe commit, one ticket aborted
    108: "resolver_death",   # collective read dies, no ticket touched
}


@pytest.mark.parametrize("seed,kind", sorted(PINNED.items()))
def test_pinned_seed_fires_its_injector_and_stays_clean(seed, kind):
    scenario = generate_scenario(seed)
    assert kind in [injector.kind for injector in scenario.injectors], \
        f"seed {seed} no longer generates a {kind} scenario — the " \
        "generator's seed mapping changed; re-pin the regression seeds"
    result = execute_scenario(scenario)
    assert kind in result.fired, \
        f"seed {seed}: {kind} armed but never fired (containment untested)"
    assert not result.flagged, result.all_anomalies()


def test_pinned_seeds_replay_byte_identically():
    for seed in PINNED:
        scenario = generate_scenario(seed)
        assert run_line(execute_scenario(scenario)) \
            == run_line(execute_scenario(scenario)), f"seed {seed}"
