"""Generator properties: determinism, round-trip, structural validity.

A seed must map to exactly one scenario forever — the replay contract
starts here — and everything the generator emits must satisfy the
structural constraints the runner assumes (first phase writes, injectors
target phases that exist and have the right shape, the file extent covers
every workload, hot-spot windows actually confine).
"""

import json

import pytest

from repro.fuzz.generator import MAX_PHASES, MAX_RANKS, generate_scenario
from repro.fuzz.scenario import (
    INJECTOR_KINDS,
    PHASE_KINDS,
    READ_KINDS,
    WRITE_KINDS,
    Scenario,
    build_workload,
    workload_file_size,
)

SEEDS = range(120)


@pytest.mark.parametrize("seed", [0, 1, 17, 42, 123, 9999])
def test_same_seed_same_scenario(seed):
    assert (generate_scenario(seed).canonical_json()
            == generate_scenario(seed).canonical_json())


@pytest.mark.parametrize("seed", [0, 3, 19, 108])
def test_json_round_trip(seed):
    scenario = generate_scenario(seed)
    rebuilt = Scenario.from_dict(json.loads(scenario.canonical_json()))
    assert rebuilt == scenario
    assert rebuilt.canonical_json() == scenario.canonical_json()


def test_scenarios_differ_across_seeds():
    blueprints = {generate_scenario(seed).canonical_json()
                  for seed in range(40)}
    assert len(blueprints) > 30  # near-unique; collisions would be a bug


def test_structural_validity_over_a_seed_range():
    for seed in SEEDS:
        scenario = generate_scenario(seed)
        assert 2 <= scenario.num_ranks <= MAX_RANKS
        assert 1 <= scenario.num_aggregators <= scenario.num_ranks
        assert scenario.ranks_per_node in (1, 2)
        assert scenario.chunk_size in (512, 1024, 2048)
        assert 1 <= len(scenario.phases) <= MAX_PHASES + 2  # + probe/straggler
        assert scenario.phases[0].is_write
        assert scenario.file_size % scenario.chunk_size == 0
        for phase in scenario.phases:
            assert phase.kind in PHASE_KINDS
            assert workload_file_size(phase.workload, scenario.num_ranks) \
                <= scenario.file_size
            build_workload(phase.workload, scenario.num_ranks)  # materializes


def test_injector_constraints_over_a_seed_range():
    for seed in SEEDS:
        scenario = generate_scenario(seed)
        for injector in scenario.injectors:
            assert injector.kind in INJECTOR_KINDS
            assert 0 <= injector.phase < len(scenario.phases)
            phase = scenario.phases[injector.phase]
            if injector.kind == "aggregator_death":
                assert phase.kind == "collective_write"
                assert scenario.num_aggregators >= 2
                assert 0 <= injector.params["rank"] < scenario.num_ranks
                # a probe phase must follow the doomed one
                assert injector.phase + 1 < len(scenario.phases)
            elif injector.kind == "resolver_death":
                assert phase.kind == "collective_read"
                assert injector.phase + 1 < len(scenario.phases)
            elif injector.kind == "straggler":
                # only disjoint checkpoint phases: bytes must be
                # flush-order-independent under the watchdog
                assert phase.kind == "independent_write"
                assert phase.workload["family"] == "checkpoint"
                assert injector.params["delay"] \
                    > injector.params["max_delay"]
            elif injector.kind == "hot_spot":
                assert phase.is_write
                window = phase.workload["window"]
                assert window == injector.params["window"]
                lo, span = window
                assert 0 <= lo and lo + span <= phase.workload["file_size"]
                workload = build_workload(phase.workload, scenario.num_ranks)
                extent = workload.union_extent()
                if extent is not None:
                    assert lo <= extent[0] and extent[1] <= lo + span
            elif injector.kind == "cache_thrash":
                assert injector.params["reads"] >= 1


def test_generator_reaches_every_phase_and_injector_kind():
    phase_kinds, injector_kinds = set(), set()
    for seed in range(250):
        scenario = generate_scenario(seed)
        phase_kinds.update(phase.kind for phase in scenario.phases)
        injector_kinds.update(injector.kind
                              for injector in scenario.injectors)
    assert phase_kinds == set(PHASE_KINDS)
    assert injector_kinds == set(INJECTOR_KINDS)
    assert phase_kinds >= set(WRITE_KINDS) | set(READ_KINDS)


def test_cluster_overrides_stay_in_vocabulary():
    for seed in SEEDS:
        cluster = generate_scenario(seed).cluster
        assert cluster["engine"] in ("fast", "legacy")
        assert cluster["scheduler"] in (None, "calendar", "heapq")
        assert cluster["network_model"] in ("bottleneck", "queued")
        if cluster.get("shared_metadata_cache"):
            assert cluster["shared_cache_policy"] in ("lru", "slru", "2q",
                                                      "level:2")
