"""The shared serial oracle, proven able to catch a planted corruption.

Red-first contract of the oracle extraction (one implementation in
:mod:`repro.fuzz.oracle`, re-exported through ``tests/_oracle.py``): if the
oracle could not flag a deliberately corrupted byte, every suite importing
it — and the fuzzer's byte-identity checker — would be vacuous.
"""

import pytest

import repro.fuzz.oracle as fuzz_oracle
import tests._oracle as shared
from repro.core.listio import IOVector
from repro.fuzz.oracle import (
    MaskedOracle,
    pattern_extent,
    random_pattern,
    serial_oracle,
    serial_oracle_vectors,
)

FILE_SIZE = 4 * 1024


def test_testlib_reexports_the_single_implementation():
    # tests/_oracle.py must never fork the oracle: same function objects
    assert shared.random_pattern is fuzz_oracle.random_pattern
    assert shared.serial_oracle is fuzz_oracle.serial_oracle
    assert shared.MaskedOracle is fuzz_oracle.MaskedOracle
    assert shared.serial_oracle_vectors is fuzz_oracle.serial_oracle_vectors


def test_random_pattern_is_deterministic_and_rank_disjoint():
    first = random_pattern(7, 4, file_size=FILE_SIZE)
    second = random_pattern(7, 4, file_size=FILE_SIZE)
    assert first == second
    for regions in first:
        spans = sorted((offset, offset + len(payload))
                       for offset, payload in regions)
        for (_, prev_hi), (lo, _) in zip(spans, spans[1:]):
            assert prev_hi <= lo  # disjoint within a rank
        for lo, hi in spans:
            assert 0 <= lo < hi <= FILE_SIZE


def test_serial_oracle_applies_in_rank_order():
    pattern = [[(0, b"\x01" * 10)], [(5, b"\x02" * 10)]]
    content = serial_oracle(pattern, file_size=20)
    assert content[:5] == b"\x01" * 5      # rank 0's prefix survives
    assert content[5:15] == b"\x02" * 10   # rank 1 overwrites the overlap
    assert content[15:] == b"\x00" * 5


def test_pattern_extent():
    assert pattern_extent([[], []]) is None
    assert pattern_extent([[(10, b"ab")], [(3, b"c")]]) == (3, 12)


def test_serial_oracle_vectors_matches_manual_application():
    vectors = [IOVector.for_write([(0, b"\x01" * 8), (4, b"\x02" * 8)]),
               IOVector.for_write([(6, b"\x03" * 4)])]
    manual = bytearray(32)
    for vector in vectors:
        vector.apply_to(manual)
    assert serial_oracle_vectors(vectors, 32) == bytes(manual)


# ----------------------------------------------------------------------
# the red-first proof: a planted corruption must be flagged
# ----------------------------------------------------------------------
def test_oracle_detects_planted_corruption():
    pattern = random_pattern(3, 3, file_size=FILE_SIZE,
                             empty_rank_chance=0.0)
    oracle = MaskedOracle(FILE_SIZE)
    oracle.apply_pattern(pattern)

    clean = bytes(oracle.content)
    assert oracle.mismatches(clean) == []

    target = pattern[0][0][0]  # first written byte of rank 0
    corrupted = bytearray(clean)
    corrupted[target] ^= 0xFF
    runs = oracle.mismatches(bytes(corrupted))
    assert runs == [(target, 1)]


def test_oracle_reports_corruption_run_lengths():
    oracle = MaskedOracle(64)
    oracle.apply_pairs([(0, b"\x05" * 64)])
    corrupted = bytearray(oracle.content)
    corrupted[10:14] = b"\xaa" * 4
    corrupted[30] ^= 1
    assert oracle.mismatches(bytes(corrupted)) == [(10, 4), (30, 1)]


def test_masked_bytes_are_forgiven_until_overwritten():
    oracle = MaskedOracle(64)
    oracle.apply_pairs([(0, b"\x07" * 64)])
    oracle.mask(16, 32)
    assert oracle.masked_bytes == 16

    divergent = bytearray(oracle.content)
    divergent[20] = 0x99           # inside the fault window: unverifiable
    assert oracle.mismatches(bytes(divergent)) == []

    oracle.apply_pairs([(16, b"\x08" * 16)])  # overwrite clears the mask
    assert oracle.masked_bytes == 0
    assert oracle.mismatches(bytes(divergent)) != []


def test_region_mismatches_map_back_to_file_offsets():
    oracle = MaskedOracle(128)
    oracle.apply_pairs([(0, bytes(range(1, 129)))])
    regions = [(10, 4), (50, 8)]
    data = bytes(oracle.content[10:14]) + bytes(oracle.content[50:58])
    assert oracle.region_mismatches(regions, data) == []

    bad = bytearray(data)
    bad[5] ^= 0xFF                 # second region, offset 50 + 1
    assert oracle.region_mismatches(regions, bytes(bad)) == [(51, 1)]


def test_mismatch_limit_caps_reporting():
    oracle = MaskedOracle(100)
    oracle.apply_pairs([(0, b"\x01" * 100)])
    corrupted = bytes(b"\x02\x01" * 50)    # 50 single-byte runs
    assert len(oracle.mismatches(corrupted, limit=4)) == 4


@pytest.mark.parametrize("num_ranks", [1, 3, 5])
def test_serial_oracle_equals_masked_oracle_content(num_ranks):
    pattern = random_pattern(11, num_ranks, file_size=FILE_SIZE)
    oracle = MaskedOracle(FILE_SIZE)
    oracle.apply_pattern(pattern)
    assert bytes(oracle.content) == serial_oracle(pattern,
                                                  file_size=FILE_SIZE)
