"""Checker liveness: every invariant checker must flag a planted violation.

Each test hands a checker a deliberately broken :class:`RunContext` (plus a
clean control) — if a checker cannot flag its own violation class, every
"0 flagged" sweep line it contributed to is vacuous.
"""

from repro.fuzz.injectors import build_injector
from repro.fuzz.invariants import (
    CHECKER_NAMES,
    RunContext,
    check_byte_identity,
    check_clean_fault,
    check_no_hang,
    check_snapshot_stability,
    check_stats_partition,
    check_version_monotonicity,
    replay_oracle,
    run_checkers,
)
from repro.fuzz.oracle import MaskedOracle
from repro.fuzz.scenario import InjectorSpec, PhaseSpec, phase_read_regions, \
    phase_write_pairs
from repro.vstore.client import VectoredClient
from tests.fuzz._scenlib import checkpoint_phase, make_scenario, \
    random_workload
from tests.mpiio._collective_testlib import make_quick_deployment

PATH = "/fuzz"


def make_ctx(scenario, **overrides):
    defaults = dict(scenario=scenario, path=PATH)
    defaults.update(overrides)
    return RunContext(**defaults)


# ----------------------------------------------------------------------
# no_hang
# ----------------------------------------------------------------------
def test_no_hang_flags_deadlock_and_budget():
    scenario = make_scenario(phases=[checkpoint_phase()])
    assert check_no_hang(make_ctx(scenario)) == []
    deadlocked = make_ctx(scenario, deadlocked=True, events_used=123)
    assert any("deadlocked" in entry for entry in check_no_hang(deadlocked))
    over = make_ctx(scenario, budget_exceeded=True, events_used=9,
                    event_budget=5)
    assert any("event budget" in entry for entry in check_no_hang(over))


def test_unfinished_runs_skip_the_other_checkers():
    scenario = make_scenario(phases=[checkpoint_phase()])
    ctx = make_ctx(scenario, deadlocked=True,
                   phase_outcomes=[["StorageError"] * 4],
                   final_reads=[b"garbage"])
    assert check_clean_fault(ctx) == []
    assert check_byte_identity(ctx) == []
    report = run_checkers(ctx)
    assert set(report) == set(CHECKER_NAMES)
    assert report["no_hang"]                      # only no_hang fires


# ----------------------------------------------------------------------
# clean_fault
# ----------------------------------------------------------------------
def death_scenario():
    phases = [checkpoint_phase("collective_write"), checkpoint_phase()]
    spec = InjectorSpec(kind="aggregator_death", phase=0, params={"rank": 2})
    return make_scenario(phases=phases, injectors=[spec])


def fired_death(scenario):
    injector = build_injector(scenario.injectors[0])
    injector.fired = True
    return injector


def test_clean_fault_accepts_contained_failure():
    scenario = death_scenario()
    ctx = make_ctx(scenario, injectors=[fired_death(scenario)],
                   phase_outcomes=[["StorageError"] * 4, ["ok"] * 4])
    assert check_clean_fault(ctx) == []


def test_clean_fault_flags_silent_success_under_injected_death():
    scenario = death_scenario()
    ctx = make_ctx(scenario, injectors=[fired_death(scenario)],
                   phase_outcomes=[["ok"] * 4, ["ok"] * 4])
    anomalies = check_clean_fault(ctx)
    assert any("doomed rank 2" in entry for entry in anomalies)
    assert any("despite the injected death" in entry for entry in anomalies)


def test_clean_fault_flags_failed_post_fault_probe():
    scenario = death_scenario()
    outcomes = [["StorageError"] * 4,
                ["ok", "SimulationError", "ok", "ok"]]
    ctx = make_ctx(scenario, injectors=[fired_death(scenario)],
                   phase_outcomes=outcomes)
    assert any("probe phase 1" in entry
               for entry in check_clean_fault(ctx))


def test_clean_fault_flags_uninjected_failure():
    scenario = make_scenario(phases=[checkpoint_phase()])
    ctx = make_ctx(scenario,
                   phase_outcomes=[["ok", "StorageError", "ok", "ok"]])
    assert any("without an injected fault" in entry
               for entry in check_clean_fault(ctx))


def test_clean_fault_surfaces_adversary_errors():
    spec = InjectorSpec(kind="cache_thrash", phase=0,
                        params={"reads": 4, "max_size": 256})
    scenario = make_scenario(phases=[checkpoint_phase()], injectors=[spec])
    thrash = build_injector(spec)
    thrash.errors.append("StorageError: boom")
    ctx = make_ctx(scenario, injectors=[thrash],
                   phase_outcomes=[["ok"] * 4])
    assert any("adversary error" in entry
               for entry in check_clean_fault(ctx))


# ----------------------------------------------------------------------
# byte_identity
# ----------------------------------------------------------------------
def rw_scenario():
    workload = random_workload(seed=5)
    return make_scenario(num_ranks=2, phases=[
        PhaseSpec(kind="independent_write", workload=workload),
        PhaseSpec(kind="independent_read", workload=workload),
    ])


def expected_phase_reads(scenario, read_index):
    oracle = MaskedOracle(scenario.file_size)
    for rank in range(scenario.num_ranks):
        oracle.apply_pairs(phase_write_pairs(scenario.phases[0], rank,
                                             scenario.num_ranks))
    reads = []
    for rank in range(scenario.num_ranks):
        regions = phase_read_regions(scenario.phases[read_index], rank,
                                     scenario.num_ranks)
        reads.append(b"".join(bytes(oracle.content[o:o + s])
                              for o, s in regions))
    return oracle, reads


def test_byte_identity_accepts_consistent_reads():
    scenario = rw_scenario()
    oracle, reads = expected_phase_reads(scenario, 1)
    ctx = make_ctx(scenario,
                   phase_outcomes=[["ok"] * 2, ["ok"] * 2],
                   phase_versions=[[None] * 2, [None] * 2],
                   phase_reads=[[None] * 2, reads],
                   final_reads=[bytes(oracle.content)])
    assert check_byte_identity(ctx) == []


def test_byte_identity_flags_corrupted_phase_read():
    scenario = rw_scenario()
    _oracle, reads = expected_phase_reads(scenario, 1)
    assert reads[0], "rank 0 must have regions for the corruption to land"
    bad = bytearray(reads[0])
    bad[0] ^= 0xFF
    reads[0] = bytes(bad)
    ctx = make_ctx(scenario,
                   phase_outcomes=[["ok"] * 2, ["ok"] * 2],
                   phase_versions=[[None] * 2, [None] * 2],
                   phase_reads=[[None] * 2, reads])
    assert any("diverges from the serial oracle" in entry
               for entry in check_byte_identity(ctx))


def test_byte_identity_flags_short_read():
    scenario = rw_scenario()
    _oracle, reads = expected_phase_reads(scenario, 1)
    reads[1] = reads[1][:-1] if reads[1] else b""
    ctx = make_ctx(scenario,
                   phase_outcomes=[["ok"] * 2, ["ok"] * 2],
                   phase_versions=[[None] * 2, [None] * 2],
                   phase_reads=[[None] * 2, reads])
    assert any("bytes, expected" in entry
               for entry in check_byte_identity(ctx))


def test_byte_identity_flags_corrupted_final_contents():
    scenario = rw_scenario()
    oracle, reads = expected_phase_reads(scenario, 1)
    final = bytearray(oracle.content)
    target = phase_write_pairs(scenario.phases[0], 0, 2)[0][0]
    final[target] ^= 0xFF
    ctx = make_ctx(scenario,
                   phase_outcomes=[["ok"] * 2, ["ok"] * 2],
                   phase_versions=[[None] * 2, [None] * 2],
                   phase_reads=[[None] * 2, reads],
                   final_reads=[bytes(final)])
    assert any("final contents diverge" in entry
               for entry in check_byte_identity(ctx))


def test_replay_oracle_orders_atomic_phase_by_ticket():
    workload = random_workload(seed=9)
    scenario = make_scenario(num_ranks=2, phases=[
        PhaseSpec(kind="atomic_write", workload=workload)])
    # rank 1 published first (version 1), rank 0 second (version 2):
    # publication-ticket order must win over rank order
    ctx = make_ctx(scenario,
                   phase_outcomes=[["ok"] * 2],
                   phase_versions=[[2, 1]])
    oracle = replay_oracle(ctx)
    expected = MaskedOracle(scenario.file_size)
    expected.apply_pairs(phase_write_pairs(scenario.phases[0], 1, 2))
    expected.apply_pairs(phase_write_pairs(scenario.phases[0], 0, 2))
    assert bytes(oracle.content) == bytes(expected.content)
    assert oracle.masked_bytes == 0


def test_replay_oracle_masks_failed_atomic_writer():
    workload = random_workload(seed=9)
    scenario = make_scenario(num_ranks=2, phases=[
        PhaseSpec(kind="atomic_write", workload=workload)])
    ctx = make_ctx(scenario,
                   phase_outcomes=[["ok", "StorageError"]],
                   phase_versions=[[1, None]])
    oracle = replay_oracle(ctx)
    failed_bytes = sum(len(payload) for _o, payload
                       in phase_write_pairs(scenario.phases[0], 1, 2))
    assert oracle.masked_bytes >= 1
    assert oracle.masked_bytes <= failed_bytes


def test_replay_oracle_masks_fired_death_phase_extent():
    scenario = death_scenario()
    ctx = make_ctx(scenario, injectors=[fired_death(scenario)],
                   phase_outcomes=[["StorageError"] * 4])
    oracle = replay_oracle(ctx)
    assert oracle.masked_bytes == scenario.file_size  # full-coverage phase


# ----------------------------------------------------------------------
# version_monotonicity
# ----------------------------------------------------------------------
class _StubManager:
    def __init__(self, pending=(), latest=0, assigned=0, aborted=0):
        self._pending = list(pending)
        self._latest = latest
        self.tickets_assigned = assigned
        self.tickets_aborted = aborted

    def pending_versions(self, path):
        return list(self._pending)

    def latest_published(self, path):
        return self._latest


class _StubDeployment:
    def __init__(self, manager):
        self.version_manager = type("VM", (), {"manager": manager})()


def test_version_monotonicity_accepts_clean_chain():
    scenario = make_scenario(phases=[checkpoint_phase()])
    deployment = _StubDeployment(_StubManager(latest=3, assigned=3))
    assert check_version_monotonicity(
        make_ctx(scenario, deployment=deployment)) == []


def test_version_monotonicity_flags_pending_gap_and_phantom_abort():
    scenario = make_scenario(phases=[checkpoint_phase()])
    deployment = _StubDeployment(_StubManager(pending=[3], latest=2,
                                              assigned=4, aborted=1))
    anomalies = check_version_monotonicity(
        make_ctx(scenario, deployment=deployment))
    assert any("still pending" in entry for entry in anomalies)
    assert any("gap in the version chain" in entry for entry in anomalies)
    assert any("tickets aborted" in entry for entry in anomalies)


def test_version_monotonicity_expects_one_abort_per_fired_death():
    scenario = death_scenario()
    deployment = _StubDeployment(_StubManager(latest=2, assigned=2,
                                              aborted=1))
    ctx = make_ctx(scenario, deployment=deployment,
                   injectors=[fired_death(scenario)])
    assert check_version_monotonicity(ctx) == []
    # same state, but the death never fired: the abort is now unexplained
    ctx.injectors[0].fired = False
    assert any("tickets" in entry
               for entry in check_version_monotonicity(ctx))


# ----------------------------------------------------------------------
# stats_partition (real cluster, tampered counter)
# ----------------------------------------------------------------------
def partition_ctx():
    cluster, deployment = make_quick_deployment(seed=2, chunk_size=1024)
    client = VectoredClient(deployment, cluster.add_node("probe"),
                            name="probe")

    def scenario_main():
        yield from client.create_blob(PATH, 4096, chunk_size=1024)
        yield from client.vwrite_and_wait(PATH, [(0, b"\x05" * 2048)])
        yield from client.vread(PATH, [(0, 2048)])

    process = cluster.sim.process(scenario_main())
    cluster.sim.run(stop_event=process)
    scenario = make_scenario(phases=[checkpoint_phase()])
    return client, make_ctx(scenario, cluster=cluster,
                            deployment=deployment, all_clients=[client])


def test_stats_partition_holds_on_a_real_run():
    _client, ctx = partition_ctx()
    assert check_stats_partition(ctx) == []


def test_stats_partition_flags_tampered_lookup_counter():
    client, ctx = partition_ctx()
    # phantom misses raise lookups without raising any partition part
    client.metadata_cache.stats.misses += 7
    anomalies = check_stats_partition(ctx)
    assert any("lookup_partition" in entry for entry in anomalies)


# ----------------------------------------------------------------------
# snapshot_stability
# ----------------------------------------------------------------------
def test_snapshot_stability_flags_divergent_read_backs():
    scenario = make_scenario(phases=[checkpoint_phase()])
    stable = make_ctx(scenario, final_reads=[b"abcd", b"abcd"])
    assert check_snapshot_stability(stable) == []
    unstable = make_ctx(scenario, final_reads=[b"abcd", b"abXd"])
    anomalies = check_snapshot_stability(unstable)
    assert anomalies and "offset 2" in anomalies[0]


def test_run_checkers_reports_every_checker():
    scenario = make_scenario(phases=[checkpoint_phase()])
    report = run_checkers(make_ctx(scenario))
    assert tuple(report) == CHECKER_NAMES
    assert all(entries == [] for entries in report.values())
