"""Unit tests of the unified metrics registry."""

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    IdentityViolation,
    MetricsRegistry,
    TimeWeightedSeries,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_counter_accumulates_and_gauge_overwrites():
    registry = MetricsRegistry()
    registry.add("a.count", 3)
    registry.add("a.count", 4)
    registry.set("a.gauge", 1.5)
    registry.set("a.gauge", 2.5)
    assert registry.get("a.count") == 7
    assert registry.get("a.gauge") == 2.5
    assert "a.count" in registry
    assert registry.get("missing", default=-1) == -1


def test_instruments_are_get_or_create_and_type_checked():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    assert registry.counter("x") is counter
    assert isinstance(counter, Counter)
    assert isinstance(registry.gauge("y"), Gauge)
    assert isinstance(registry.series("z"), TimeWeightedSeries)
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.counter("z")


def test_series_mean_is_sim_time_weighted():
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    series = registry.series("depth")
    series.record(10.0)       # depth 10 held over [0, 1)
    clock.now = 1.0
    series.record(0.0)        # depth 0 held over [1, 10)
    clock.now = 10.0
    # plain average would be 5; the weighted mean is 10*1/10 = 1
    assert series.mean() == pytest.approx(1.0)
    assert series.max == 10.0
    assert series.min == 0.0
    assert series.samples == 2


def test_identities_check_assert_and_vacuous():
    registry = MetricsRegistry()
    registry.register_identity("parts", total="total", parts=("p1", "p2"))
    # total never collected: vacuously true
    assert registry.check_identities() == []
    registry.add("total", 5)
    registry.add("p1", 2)
    registry.add("p2", 3)
    assert registry.check_identities() == []
    registry.assert_identities()
    registry.add("p2", 1)
    problems = registry.check_identities()
    assert len(problems) == 1 and "parts" in problems[0]
    with pytest.raises(IdentityViolation):
        registry.assert_identities()


def test_identity_reregistration_replaces_by_label():
    registry = MetricsRegistry()
    registry.register_identity("same", total="t", parts=("a",))
    registry.register_identity("same", total="t", parts=("a", "b"))
    registry.add("t", 3)
    registry.add("a", 1)
    registry.add("b", 2)
    # only the latest declaration is checked — one entry, and it holds
    assert registry.check_identities() == []


def test_snapshot_is_flat_sorted_and_expands_series():
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    registry.add("b.count", 2)
    registry.set("a.gauge", 1.0)
    registry.record("c.depth", 4.0)
    clock.now = 2.0
    snap = registry.snapshot()
    # metric names emit in sorted order (series expand to a fixed
    # .last/.mean/.max/.samples quartet in place)
    assert list(snap) == ["a.gauge", "b.count", "c.depth.last",
                          "c.depth.mean", "c.depth.max", "c.depth.samples"]
    assert snap["a.gauge"] == 1.0
    assert snap["b.count"] == 2
    assert snap["c.depth.last"] == 4.0
    assert snap["c.depth.samples"] == 1
    assert snap["c.depth.max"] == 4.0
