"""Registry-backed views over the stack's scattered stats surfaces."""

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.views import (
    DEPRECATED_STAT_ALIASES,
    collect_all,
    collect_clients,
    deprecated_stats_view,
)
from repro.vstore.client import VectoredClient


def run_workload(shared_cache=False):
    cluster = Cluster(config=ClusterConfig(shared_metadata_cache=shared_cache),
                      seed=2)
    deployment = BlobSeerDeployment(cluster, num_providers=2,
                                    num_metadata_providers=1,
                                    chunk_size=4096, node_prefix="vw")
    node = cluster.add_node("vw-app")
    clients = [VectoredClient(deployment, node, name=f"vw{index}")
               for index in range(2)]

    def scenario(client, base):
        yield from client.create_blob("/vw", 64 * 1024, exist_ok=True)
        receipt = yield from client.vwrite("/vw", [(base, b"y" * 4096)])
        yield from client.wait_published("/vw", receipt.version)
        pieces = yield from client.vread("/vw", [(base, 4096)])
        assert pieces[0] == b"y" * 4096

    processes = [cluster.sim.process(scenario(client, index * 8192))
                 for index, client in enumerate(clients)]
    for process in processes:
        cluster.sim.run(stop_event=process)
    return cluster, deployment, clients


def test_collect_all_holds_identities_and_totals():
    cluster, deployment, clients = run_workload(shared_cache=True)
    registry = collect_all(MetricsRegistry(), cluster=cluster,
                           deployment=deployment, clients=clients,
                           complete_clients=True)
    assert registry.check_identities() == []
    assert registry.get("client.bytes_written") == \
        sum(client.bytes_written for client in clients)
    assert registry.get("metadata.cache.lookups") == \
        sum(client.metadata_cache.stats.lookups for client in clients)
    # the identities of the module docstring are all registered (the
    # cooperative crosscheck joins them only when the tier is deployed)
    labels = {label for label, _, _ in registry._identities}
    assert labels == {"metadata.lookup_partition", "cache.shared.partition",
                      "cache.shared.fallthrough", "cache.peer.partition"}
    assert deployment.coop_directory is None


def test_fallthrough_identity_skipped_without_shared_tier():
    cluster, deployment, clients = run_workload(shared_cache=False)
    registry = collect_all(MetricsRegistry(), cluster=cluster,
                           deployment=deployment, clients=clients,
                           complete_clients=True)
    assert registry.check_identities() == []
    labels = {label for label, _, _ in registry._identities}
    assert "cache.shared.fallthrough" not in labels


def test_server_and_client_metadata_counters_live_apart():
    """The naming-drift fix: the legacy dicts used one key for two
    different quantities; the registry keeps them distinguishable."""
    cluster, deployment, clients = run_workload()
    registry = collect_all(MetricsRegistry(), cluster=cluster,
                           deployment=deployment, clients=clients)
    stats = deployment.stats()
    assert registry.get("metadata.server.read_rpcs") == \
        stats["metadata_read_rpcs"]
    assert registry.get("metadata.client.read_rpcs") == \
        sum(client.metadata_read_rpcs for client in clients)
    assert "metadata.server.read_rpcs" in registry
    assert "metadata.client.read_rpcs" in registry


def test_deprecated_stats_view_round_trips_legacy_keys():
    cluster, deployment, clients = run_workload()
    registry = collect_all(MetricsRegistry(), cluster=cluster,
                           deployment=deployment, clients=clients)
    legacy = deprecated_stats_view(registry)
    stats = deployment.stats()
    assert set(legacy) == set(DEPRECATED_STAT_ALIASES)
    for key in legacy:
        assert legacy[key] == stats[key], key


def test_deployment_metrics_method_is_the_shim():
    _cluster, deployment, _clients = run_workload()
    registry = deployment.metrics()
    stats = deployment.stats()
    assert registry.get("metadata.server.put_rpcs") == \
        stats["metadata_put_rpcs"]
    shared = registry.get("cache.shared.lookups")
    assert shared == stats["shared_cache"]["hits"] \
        + stats["shared_cache"]["misses"]
    # collecting into a caller-provided registry accumulates there
    mine = MetricsRegistry()
    assert deployment.metrics(mine) is mine
    assert "storage.providers" in mine


def test_collect_clients_skips_partition_without_private_cache():
    cluster = Cluster(seed=3)
    deployment = BlobSeerDeployment(cluster, num_providers=1,
                                    num_metadata_providers=1,
                                    chunk_size=4096, node_prefix="np")
    client = VectoredClient(deployment, cluster.add_node("np-app"),
                            name="np-app", enable_metadata_cache=False)
    registry = MetricsRegistry()
    collect_clients(registry, [client])
    labels = {label for label, _, _ in registry._identities}
    assert "metadata.lookup_partition" not in labels
    assert "metadata.cache.lookups" not in registry
