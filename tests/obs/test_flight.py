"""Flight recorder: ring semantics and behaviour-neutrality.

The recorder defaults ON, so the critical property is that it cannot
perturb the simulation: the identical workload run with the recorder on
and off must produce bit-identical outcomes (digest, sim clock, event
count, metrics snapshot).
"""

import json

from repro.cluster.config import ClusterConfig
from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder


def test_ring_bounds_entries_and_counts_drops():
    recorder = FlightRecorder(capacity=4)
    for index in range(7):
        recorder.record(float(index), float(index) + 0.5, "op",
                        f"rank{index}", "file.write_at")
    assert len(recorder) == 4
    assert recorder.recorded == 7
    assert recorder.dropped == 3
    # oldest first, oldest three evicted
    assert [entry[0] for entry in recorder.entries()] == [3.0, 4.0, 5.0, 6.0]


def test_default_capacity_and_empty_state():
    recorder = FlightRecorder()
    assert recorder.capacity == DEFAULT_FLIGHT_CAPACITY
    assert len(recorder) == 0
    assert recorder.dropped == 0
    assert recorder.entries() == []


def test_as_dict_dump_and_digest_are_deterministic(tmp_path):
    def build():
        recorder = FlightRecorder(capacity=8)
        recorder.record(0.1, 0.2, "rpc", "data0", "put_chunks")
        recorder.record(0.2, 0.4, "op", "rank3", "file.read_at_all")
        return recorder

    first, second = build(), build()
    assert first.as_dict() == second.as_dict()
    assert first.timeline_digest() == second.timeline_digest()
    third = FlightRecorder(capacity=8)
    third.record(0.1, 0.3, "rpc", "data0", "put_chunks")
    assert third.timeline_digest() != first.timeline_digest()

    out = tmp_path / "flight.json"
    dumped = first.dump(str(out))
    assert json.loads(out.read_text()) == dumped
    assert dumped["entries"][0] == {"start": 0.1, "end": 0.2, "kind": "rpc",
                                    "who": "data0", "what": "put_chunks"}


def run_point(flight_recorder: bool):
    from repro.bench.simcore import run_collective_io_point
    return run_collective_io_point(
        num_ranks=8, blocks_per_rank=2, block_size=2048, read_rounds=1,
        num_aggregators=2, seed=11,
        config=ClusterConfig(network_model="queued",
                             flight_recorder=flight_recorder))


def test_recorder_on_by_default_and_bit_identical_to_off():
    on = run_point(flight_recorder=True)
    off = run_point(flight_recorder=False)
    for key in ("read_digest", "sim_elapsed_s", "processed_events",
                "metrics"):
        assert on[key] == off[key], key
    # the full rows are identical except wall-clock noise
    on_stable = {k: v for k, v in on.items()
                 if "wall" not in k and "events_per_sec" not in k}
    off_stable = {k: v for k, v in off.items()
                  if "wall" not in k and "events_per_sec" not in k}
    assert on_stable == off_stable


def test_cluster_wires_recorder_by_default_and_config_disables_it():
    from repro.cluster.cluster import Cluster
    default = Cluster(config=ClusterConfig(), seed=0)
    assert default.obs.flight is not None
    assert default.obs.flight.capacity == 4096
    disabled = Cluster(config=ClusterConfig(flight_recorder=False), seed=0)
    assert disabled.obs.flight is None
    sized = Cluster(config=ClusterConfig(flight_capacity=16), seed=0)
    assert sized.obs.flight.capacity == 16
