"""Per-link telemetry of the queued network model."""

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.vstore.client import VectoredClient


def run_small_io(config):
    cluster = Cluster(config=config, seed=1)
    deployment = BlobSeerDeployment(cluster, num_providers=2,
                                    num_metadata_providers=1,
                                    chunk_size=4096, node_prefix="lt")
    client = VectoredClient(deployment, cluster.add_node("lt-app"),
                            name="lt-app")

    def scenario():
        yield from client.create_blob("/lt", 64 * 1024, exist_ok=True)
        receipt = yield from client.vwrite("/lt", [(0, b"x" * 8192)])
        yield from client.wait_published("/lt", receipt.version)
        pieces = yield from client.vread("/lt", [(0, 8192)])
        assert pieces[0] == b"x" * 8192

    process = cluster.sim.process(scenario())
    cluster.sim.run(stop_event=process)
    return cluster


def test_queued_traced_run_samples_links():
    cluster = run_small_io(ClusterConfig(network_model="queued",
                                         tracing=True))
    telemetry = cluster.obs.link_telemetry
    assert telemetry is not None
    assert telemetry.samples, "no link reservations sampled"

    report = telemetry.report()
    assert list(report) == sorted(report)
    for name, row in report.items():
        assert row["reservations"] >= 1
        assert row["bytes"] > 0
        assert 0.0 <= row["utilization"] <= 1.0
        assert row["max_queue_delay_s"] >= row["mean_queue_delay_s"] >= 0.0
        assert telemetry.utilization(name) >= 0.0

    totals = telemetry.totals()
    assert totals["links"] == len(report)
    assert totals["reservations"] == sum(row["reservations"]
                                         for row in report.values())
    assert totals["bytes"] == sum(row["bytes"] for row in report.values())


def test_telemetry_absent_without_tracing_or_queued_model():
    assert run_small_io(ClusterConfig(network_model="queued")) \
        .obs.link_telemetry is None
    assert run_small_io(ClusterConfig(tracing=True)) \
        .obs.link_telemetry is None


def test_sampling_never_perturbs_the_timeline():
    sampled = run_small_io(ClusterConfig(network_model="queued",
                                         tracing=True))
    plain = run_small_io(ClusterConfig(network_model="queued"))
    assert sampled.sim.now == plain.sim.now
    assert sampled.sim.processed_events == plain.sim.processed_events
