"""Unit tests of critical-path extraction on hand-built span DAGs.

Every test constructs an exact-float span forest through a real
:class:`~repro.obs.trace.Tracer` (driven by a fake clock), then checks
the backward-greedy walk attributes each instant of the root window to
the expected layer — and that the partition identity holds with exact
float equality.  The 64-rank end-to-end acceptance test lives in
``test_trace_collective.py`` next to the tracing harness.
"""

import pytest

from repro.obs.critpath import (
    LAYERS,
    PartitionError,
    Segment,
    SpanDag,
    assert_partition,
    critical_path,
    layer_breakdown,
    layer_of,
    operation_report,
)
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_tracer():
    clock = FakeClock()
    return Tracer(clock=clock), clock


def add(tracer, clock, name, cat, start, end, parent=None, flow=False):
    """Record one finished span with an exact interval."""
    clock.now = start
    span = tracer.begin_span(
        name, cat, ("rank", "r0"),
        parent_id=None if parent is None else parent.span_id, flow=flow)
    clock.now = end
    tracer.end_span(span)
    return span


def breakdown_of(tracer, root):
    segments = critical_path(tracer, root)
    return layer_breakdown(segments), segments


def test_layer_of_classification():
    tracer, clock = make_tracer()
    probes = [
        (add(tracer, clock, "net.link", "net", 0, 1), "link_transfer"),
        (add(tracer, clock, "rpc.serve", "rpc", 0, 1), "shard_service"),
        (add(tracer, clock, "rpc.put_chunks", "rpc", 0, 1), "rpc_queueing"),
        (add(tracer, clock, "meta.park", "wait", 0, 1), "coalesce_park"),
        (add(tracer, clock, "file.write_at_all", "mpiio", 0, 1),
         "client_compute"),
    ]
    for span, expected in probes:
        assert layer_of(span) == expected


def test_nested_rpc_link_and_serve_attribution():
    # file op [0,10] -> rpc [2,8] -> {net.link [3,5], rpc.serve [5,7]}
    tracer, clock = make_tracer()
    root = add(tracer, clock, "file.write_at_all", "mpiio", 0.0, 10.0)
    rpc = add(tracer, clock, "rpc.put_chunks", "rpc", 2.0, 8.0, parent=root)
    add(tracer, clock, "net.link", "net", 3.0, 5.0, parent=rpc)
    add(tracer, clock, "rpc.serve", "rpc", 5.0, 7.0, parent=rpc)

    layers, segments = breakdown_of(tracer, root)
    assert layers["client_compute"] == 4.0   # [0,2) + [8,10)
    assert layers["rpc_queueing"] == 2.0     # [2,3) + [7,8)
    assert layers["link_transfer"] == 2.0    # [3,5)
    assert layers["shard_service"] == 2.0    # [5,7)
    assert layers["deferred_complete_overlap"] == 0.0
    assert layers["coalesce_park"] == 0.0
    assert layers["total"] == 10.0
    # exact tiling of the window, boundary floats shared
    assert_partition(segments, 0.0, 10.0)


def test_deferred_complete_overlap_splits_client_compute():
    # root is pure client compute; a flow=True commit.complete overlaps
    # [4,6] of it -> that slice re-labels as deferred_complete_overlap
    tracer, clock = make_tracer()
    root = add(tracer, clock, "file.write_at_all", "mpiio", 0.0, 10.0)
    add(tracer, clock, "commit.complete", "commit", 4.0, 6.0,
        parent=root, flow=True)

    layers, segments = breakdown_of(tracer, root)
    assert layers["client_compute"] == 8.0
    assert layers["deferred_complete_overlap"] == 2.0
    assert layers["total"] == 10.0
    overlap = [s for s in segments
               if s.layer == "deferred_complete_overlap"]
    assert [(s.start, s.end) for s in overlap] == [(4.0, 6.0)]


def test_coalesce_park_wait_is_its_own_layer():
    tracer, clock = make_tracer()
    root = add(tracer, clock, "file.read_at_all", "mpiio", 0.0, 10.0)
    add(tracer, clock, "meta.park", "wait", 2.0, 5.0, parent=root)
    add(tracer, clock, "rpc.fetch_nodes", "rpc", 5.0, 9.0, parent=root)

    layers, _segments = breakdown_of(tracer, root)
    assert layers["coalesce_park"] == 3.0
    assert layers["rpc_queueing"] == 4.0
    assert layers["client_compute"] == 3.0   # [0,2) + [9,10)
    assert layers["total"] == 10.0


def test_concurrent_siblings_walk_backward_greedy():
    # children [2,6] and [4,8] overlap; the walk enters the later-ending
    # child fully and clips the earlier one to the uncovered prefix [2,4)
    tracer, clock = make_tracer()
    root = add(tracer, clock, "file.write_at_all", "mpiio", 0.0, 10.0)
    add(tracer, clock, "rpc.a", "rpc", 2.0, 6.0, parent=root)
    add(tracer, clock, "rpc.b", "rpc", 4.0, 8.0, parent=root)

    layers, segments = breakdown_of(tracer, root)
    assert layers["rpc_queueing"] == 6.0     # [2,4) clipped + [4,8)
    assert layers["client_compute"] == 4.0   # [0,2) + [8,10)
    assert layers["total"] == 10.0
    assert [(s.start, s.end, s.layer) for s in segments] == [
        (0.0, 2.0, "client_compute"),
        (2.0, 4.0, "rpc_queueing"),
        (4.0, 8.0, "rpc_queueing"),
        (8.0, 10.0, "client_compute"),
    ]


def test_child_fully_shadowed_by_sibling_is_skipped():
    tracer, clock = make_tracer()
    root = add(tracer, clock, "file.write_at_all", "mpiio", 0.0, 10.0)
    add(tracer, clock, "rpc.big", "rpc", 1.0, 9.0, parent=root)
    # entirely inside the chosen sibling's window at root level; it is
    # not rpc.big's child, so it never appears on the path
    add(tracer, clock, "meta.park", "wait", 3.0, 4.0, parent=root)

    layers, _segments = breakdown_of(tracer, root)
    assert layers["rpc_queueing"] == 8.0
    assert layers["client_compute"] == 2.0
    assert layers["coalesce_park"] == 0.0


def test_open_root_raises_partition_error():
    tracer, clock = make_tracer()
    clock.now = 1.0
    root = tracer.begin_span("file.write_at_all", "mpiio", ("rank", "r0"))
    with pytest.raises(PartitionError):
        critical_path(tracer, root)


def test_assert_partition_rejects_gaps_and_overlaps():
    gap = [Segment(0.0, 1.0, "client_compute", 1, "a"),
           Segment(2.0, 3.0, "client_compute", 1, "a")]
    with pytest.raises(PartitionError):
        assert_partition(gap, 0.0, 3.0)
    short = [Segment(0.0, 2.0, "client_compute", 1, "a")]
    with pytest.raises(PartitionError):
        assert_partition(short, 0.0, 3.0)
    with pytest.raises(PartitionError):
        assert_partition([], 0.0, 3.0)
    # empty window with no segments is fine
    assert_partition([], 5.0, 5.0)


def test_layer_breakdown_total_is_sum_of_layers_exactly():
    segments = [Segment(0.0, 0.1, "client_compute", 1, "a"),
                Segment(0.1, 0.30000000000000004, "rpc_queueing", 2, "b"),
                Segment(0.30000000000000004, 0.7, "link_transfer", 3, "c")]
    layers = layer_breakdown(segments)
    assert set(layers) == set(LAYERS) | {"total"}
    assert layers["total"] == sum(layers[layer] for layer in LAYERS)


def test_operation_report_aggregates_and_checks_identity():
    tracer, clock = make_tracer()
    first = add(tracer, clock, "file.write_at_all", "mpiio", 0.0, 10.0)
    add(tracer, clock, "rpc.put_chunks", "rpc", 2.0, 8.0, parent=first)
    second = add(tracer, clock, "file.write_at_all", "mpiio", 12.0, 15.0)
    add(tracer, clock, "commit", "commit", 20.0, 21.0)
    # an unrelated span name is not a root
    add(tracer, clock, "coalescer.batch", "coalesce", 30.0, 31.0)

    report = operation_report(tracer)
    assert report["layers"] == list(LAYERS)
    ops = report["operations"]
    assert set(ops) == {"file.write_at_all", "commit"}
    entry = ops["file.write_at_all"]
    assert entry["count"] == 2
    assert entry["end_to_end_s"] == 13.0
    assert entry["attributed_s"] == entry["end_to_end_s"]
    assert entry["layers"]["rpc_queueing"] == 6.0
    assert entry["layers"]["client_compute"] == 7.0
    assert second.end - second.start == 3.0


def test_dag_roots_sorted_and_unfinished_spans_excluded():
    tracer, clock = make_tracer()
    add(tracer, clock, "commit", "commit", 5.0, 6.0)
    add(tracer, clock, "commit", "commit", 1.0, 2.0)
    clock.now = 8.0
    tracer.begin_span("commit", "commit", ("rank", "r0"))   # still open
    dag = SpanDag.from_tracer(tracer)
    roots = dag.roots(["commit"])
    assert [span.start for span in roots] == [1.0, 5.0]
