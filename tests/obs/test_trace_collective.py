"""Acceptance tests: end-to-end tracing of a collective I/O job.

A 64-rank ``write_at_all`` + ``read_at_all`` under the queued network
model must export a schema-valid Chrome trace whose causal chains span at
least five layers (File op → collective phase → coalescer batch → commit
stage → per-shard RPC → network link), with every span attributed to the
rank/node/shard/link it executed on — and running the identical workload
with tracing disabled must change nothing observable.
"""

import hashlib
import json
import math

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.obs.critpath import LAYERS, operation_report
from repro.obs.export import (
    span_chains,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.views import collect_all
from repro.vstore.client import VectoredClient

NUM_RANKS = 64
BLOCKS = 4
BLOCK_SIZE = 1024
AGGREGATORS = 16
PATH = "/traced"


def run_collective_job(tracing: bool):
    """One interleaved collective write + read job; returns the evidence
    every assertion draws on."""
    stride = NUM_RANKS * BLOCK_SIZE
    file_size = BLOCKS * stride
    cluster = Cluster(config=ClusterConfig(network_model="queued",
                                           tracing=tracing), seed=7)
    deployment = BlobSeerDeployment(cluster, num_providers=8,
                                    num_metadata_providers=2,
                                    chunk_size=16 * 1024, node_prefix="tr")
    drivers = []
    comms = []

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"tr{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=AGGREGATORS)
        drivers.append(driver)
        if ctx.rank == 0:
            comms.append(ctx.comm)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=file_size)
        displacements = [index * stride + ctx.rank * BLOCK_SIZE
                         for index in range(BLOCKS)]
        handle.set_view(0, BYTE, Indexed([BLOCK_SIZE] * BLOCKS,
                                         displacements, base=BYTE))
        payload = bytes([(ctx.rank + 1) % 251]) * (BLOCKS * BLOCK_SIZE)
        yield from handle.write_at_all(0, payload)
        yield from handle.sync()
        data = yield from handle.read_at_all(0, BLOCKS * BLOCK_SIZE)
        assert data == payload
        yield from handle.close()

    run_mpi_job(cluster, NUM_RANKS, rank_main, node_prefix="tr-rank")

    verifier = VectoredClient(deployment, cluster.add_node("tr-verify"),
                              name="tr-verify")

    def read_back():
        pieces = yield from verifier.vread(PATH, [(0, file_size)])
        return pieces[0]

    process = cluster.sim.process(read_back())
    content = cluster.sim.run(stop_event=process)
    registry = collect_all(
        cluster.obs.registry, cluster=cluster, deployment=deployment,
        clients=[driver.client for driver in drivers] + [verifier],
        drivers=drivers, comms=comms, complete_clients=True)
    registry.assert_identities()
    return {
        "cluster": cluster,
        "drivers": drivers,
        "digest": hashlib.sha256(content).hexdigest(),
        "sim_elapsed": cluster.sim.now,
        "events": cluster.sim.processed_events,
        "metrics": registry.snapshot(),
    }


def test_traced_collective_exports_valid_deep_trace(tmp_path):
    run = run_collective_job(tracing=True)
    tracer = run["cluster"].obs.tracer
    assert tracer.enabled
    assert tracer.spans, "tracing on but no spans recorded"
    open_spans = [span for span in tracer.spans if span.end is None]
    assert open_spans == []

    # schema: loadable by chrome://tracing / Perfetto
    trace = to_chrome_trace(tracer, run["cluster"].obs.link_telemetry)
    assert validate_chrome_trace(trace) == []

    # causal depth: at least 5 layers file -> ... -> link
    chains = span_chains(tracer)
    deepest = max(chains.values(), key=len)
    assert len(deepest) >= 5, [span.name for span in deepest]
    assert deepest[0].name.startswith("file.")
    names = {span.name for span in tracer.spans}
    for expected in ("file.write_at_all", "file.read_at_all",
                     "collective.write.exchange_data",
                     "collective.read.resolve", "coalescer.batch",
                     "commit", "commit.upload", "net.link"):
        assert expected in names, f"missing layer span {expected}"
    # every lane group the instrumentation emits is present
    assert {span.lane[0] for span in tracer.spans} == \
        {"rank", "shard", "link"}

    # interval nesting: every finished non-flow child inside its parent
    by_id = {span.span_id: span for span in tracer.spans}
    for span in tracer.spans:
        if not span.parent_id or span.flow or span.end is None:
            continue
        parent = by_id[span.parent_id]
        if parent.end is None:
            continue
        assert span.start >= parent.start - 1e-9, (span.name, parent.name)
        assert span.end <= parent.end + 1e-9, (span.name, parent.name)

    # the dump is valid JSON on disk and round-trips
    out = tmp_path / "trace.json"
    out.write_text(json.dumps(trace))
    assert validate_chrome_trace(out.read_text()) == []


def test_rank_and_node_attribution_matches_placement():
    run = run_collective_job(tracing=True)
    tracer = run["cluster"].obs.tracer
    placement = {driver.client.name: driver.client.node.name
                 for driver in run["drivers"]}
    shard_nodes = {node_name for node_name in run["cluster"].nodes}
    rank_spans = [span for span in tracer.spans if span.lane[0] == "rank"]
    assert rank_spans
    for span in rank_spans:
        assert span.lane[1] in placement
        assert span.args["node"] == placement[span.lane[1]]
    for span in tracer.spans:
        if span.lane[0] == "shard":
            assert span.lane[1] in shard_nodes
            assert span.name.startswith("rpc.")


def test_critpath_layers_tile_end_to_end_and_are_byte_stable():
    """Acceptance: on the 64-rank queued collective, the six layers sum
    *exactly* to each operation's end-to-end window, and the report is
    byte-stable across reruns of the same seed."""
    first = run_collective_job(tracing=True)
    report = operation_report(first["cluster"].obs.tracer)
    assert report["layers"] == list(LAYERS)
    ops = report["operations"]
    assert ops["file.write_at_all"]["count"] == NUM_RANKS
    assert ops["file.read_at_all"]["count"] == NUM_RANKS
    for name, entry in ops.items():
        assert math.isclose(entry["attributed_s"], entry["end_to_end_s"],
                            rel_tol=1e-9, abs_tol=1e-12), name
        assert math.isclose(sum(entry["layers"].values()),
                            entry["attributed_s"],
                            rel_tol=1e-9, abs_tol=1e-12), name
    # the headline op's path reaches the deeper tiers
    write_layers = ops["file.write_at_all"]["layers"]
    assert write_layers["link_transfer"] > 0.0
    assert write_layers["shard_service"] > 0.0
    assert write_layers["rpc_queueing"] > 0.0

    second = run_collective_job(tracing=True)
    rerun = operation_report(second["cluster"].obs.tracer)
    assert json.dumps(report, sort_keys=True) == \
        json.dumps(rerun, sort_keys=True)


def test_disabled_tracing_is_invisible_and_identical():
    traced = run_collective_job(tracing=True)
    untraced = run_collective_job(tracing=False)
    # zero-cost path: no tracer contexts, no spans
    assert not untraced["cluster"].obs.tracing
    assert untraced["cluster"].obs.tracer.finished_spans() == []
    assert all(driver.client.trace_ctx is None
               for driver in untraced["drivers"])
    # ...and no digest taps anywhere on the hot paths (digests are an
    # independent knob, off by default)
    cluster = untraced["cluster"]
    assert cluster.obs.digests is None
    assert cluster.rpc._digests is None
    assert cluster.network.digests is None
    assert cluster.rpc._tracer is None
    # the flight recorder *is* on by default — cached on the transport,
    # fed by real traffic, and (per the identity assertions below)
    # observationally silent
    assert cluster.obs.flight is not None
    assert cluster.rpc._flight is cluster.obs.flight
    assert cluster.obs.flight.recorded > 0
    # identical simulation outcome, byte for byte
    assert untraced["digest"] == traced["digest"]
    assert untraced["sim_elapsed"] == traced["sim_elapsed"]
    assert untraced["events"] == traced["events"]
    # identical artifact payload (modulo the queued-model link telemetry,
    # which only samples under tracing)
    traced_metrics = {key: value for key, value in traced["metrics"].items()
                      if not key.startswith("net.link.")}
    untraced_metrics = {key: value
                        for key, value in untraced["metrics"].items()
                        if not key.startswith("net.link.")}
    assert untraced_metrics == traced_metrics
