"""Unit and property tests of the fixed-log-bucket latency digests."""

import random

from repro.obs.digest import (
    SUB_BITS,
    DigestTaps,
    LatencyDigest,
    bucket_bound,
    bucket_index,
    digest_columns,
)
from repro.obs.registry import MetricsRegistry

NS = 1_000_000_000


def make_registry():
    clock = [0.0]
    return MetricsRegistry(clock=lambda: clock[0])


def test_bucket_index_is_monotone_and_bound_is_inclusive():
    previous = -1
    for ns in list(range(0, 4096)) + [10 ** k for k in range(4, 13)]:
        index = bucket_index(ns)
        assert index >= previous, ns
        previous = max(previous, index)
        lower_ok = bucket_bound(index) >= ns
        assert lower_ok, (ns, index, bucket_bound(index))
        if index > 0:
            assert bucket_bound(index - 1) < ns, (ns, index)


def test_quantization_error_bounded_by_sub_bucket_width():
    # upper bucket bound over-estimates by at most 1/2^SUB_BITS of the value
    bound_factor = 1.0 + 1.0 / (1 << SUB_BITS)
    for ns in [9, 100, 12345, 10 ** 6 + 7, 10 ** 9 + 123456]:
        bound = bucket_bound(bucket_index(ns))
        assert ns <= bound <= ns * bound_factor, (ns, bound)


def test_insertion_order_never_changes_buckets_or_quantiles():
    values = ([0.0, 1e-9, 5e-9, 3.2e-6, 3.2e-6, 4.7e-4, 1.1e-2]
              * 3 + [2.5e-1, 7.0])
    rng = random.Random(42)
    reference = None
    for _trial in range(5):
        shuffled = list(values)
        rng.shuffle(shuffled)
        digest = LatencyDigest("d")
        for value in shuffled:
            digest.record(value)
        snapshot = (digest.buckets(), digest.quantiles(), digest.sum_ns)
        if reference is None:
            reference = snapshot
        assert snapshot == reference


def test_max_is_exact_and_percentiles_are_upper_bounds():
    digest = LatencyDigest("d")
    samples = [1e-6 * k for k in range(1, 101)]
    for value in samples:
        digest.record(value)
    quantiles = digest.quantiles()
    assert quantiles["count"] == 100
    assert quantiles["max"] == round(round(100e-6 * NS) / NS, 9)
    # bucketed percentiles never under-report the true rank value
    assert quantiles["p50"] >= 50e-6 * 0.999
    assert quantiles["p95"] >= 95e-6 * 0.999
    assert quantiles["p99"] >= 99e-6 * 0.999
    assert quantiles["p99"] <= quantiles["max"] * (1 + 1 / (1 << SUB_BITS))


def test_empty_digest_reports_zeros():
    digest = LatencyDigest("d")
    assert digest.quantiles() == {"count": 0, "p50": 0.0, "p95": 0.0,
                                  "p99": 0.0, "max": 0.0}
    assert digest.mean() == 0.0
    assert digest.buckets() == {}


def test_negative_inputs_clamp_to_zero():
    digest = LatencyDigest("d")
    digest.record(-1e-3)
    assert digest.max_ns == 0
    assert digest.buckets() == {0: 1}


def test_taps_fan_out_rpc_and_link_and_op_names():
    registry = make_registry()
    taps = DigestTaps(registry)
    taps.rpc("put_chunks", 1e-3)
    taps.rpc("put_chunks", 2e-3)
    taps.rpc("latest", 5e-4)
    taps.link("egress:n0", 1e-5)
    taps.link("egress:n1", 2e-5)
    taps.link("uplink:sw0", 3e-5)
    taps.op("file.write_at_all", 4e-3)

    assert registry.digest("rpc.latency.all").count == 3
    assert registry.digest("rpc.latency.put_chunks").count == 2
    assert registry.digest("rpc.latency.latest").count == 1
    # link samples aggregate per link *class*, not per concrete link
    assert registry.digest("net.queue_delay.all").count == 3
    assert registry.digest("net.queue_delay.egress").count == 2
    assert registry.digest("net.queue_delay.uplink").count == 1
    assert registry.digest("op.latency.file.write_at_all").count == 1

    snapshot = registry.snapshot()
    assert snapshot["rpc.latency.all.count"] == 3
    assert snapshot["rpc.latency.all.max"] == round(2e-3, 9)
    assert "net.queue_delay.egress.p95" in snapshot


def test_digest_columns_zero_filled_when_absent():
    registry = make_registry()
    columns = digest_columns(registry)
    assert columns == {"rpc_latency_count": 0, "rpc_latency_p50": 0.0,
                       "rpc_latency_p95": 0.0, "rpc_latency_p99": 0.0,
                       "rpc_latency_max": 0.0}
    DigestTaps(registry).rpc("latest", 1e-3)
    columns = digest_columns(registry)
    assert columns["rpc_latency_count"] == 1
    assert columns["rpc_latency_max"] == round(1e-3, 9)
