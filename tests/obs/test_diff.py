"""Artifact diff gate: exact rules, wall bands, and CLI exit codes."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.diff import (
    DEFAULT_WALL_BAND,
    compare,
    compare_files,
    flatten,
    write_report,
)


def artifact():
    """A miniature BENCH_simcore-shaped artifact."""
    return {
        "python": "3.11.1",
        "rows": [
            {"label": "headline", "sim_elapsed_s": 0.125,
             "processed_events": 5000, "wall_clock_s": 1.0,
             "events_per_sec": 5000, "read_digest": "abc"},
            {"label": "headline-queued", "sim_elapsed_s": 0.25,
             "processed_events": 7000, "wall_clock_s": 2.0,
             "events_per_sec": 3500, "read_digest": "abc"},
        ],
        "speedup_vs_seed": 15.0,
        "tracing_invariant": True,
    }


def test_flatten_keys_rows_by_label():
    flat = flatten(artifact())
    assert flat["rows[headline].sim_elapsed_s"] == 0.125
    assert flat["rows[headline-queued].processed_events"] == 7000
    # unlabelled lists fall back to indices
    assert flatten({"xs": [1, 2]}) == {"xs[0]": 1, "xs[1]": 2}
    # duplicate labels also fall back to indices
    dup = flatten({"rows": [{"label": "a", "v": 1}, {"label": "a", "v": 2}]})
    assert "rows[0].v" in dup and "rows[1].v" in dup


def test_identical_artifacts_are_clean():
    report = compare(artifact(), artifact())
    assert report["status"] == "ok"
    assert report["regressions"] == []
    assert report["notes"] == []
    assert report["compared"] > 0
    assert report["wall_band"] == DEFAULT_WALL_BAND


def test_sim_time_change_is_an_exact_regression():
    current = artifact()
    current["rows"][0]["sim_elapsed_s"] = 0.126
    report = compare(artifact(), current)
    assert report["status"] == "regression"
    assert any("rows[headline].sim_elapsed_s" in line
               for line in report["regressions"])


def test_type_change_flags_even_when_equal():
    baseline = {"processed_events": 5000}
    current = {"processed_events": 5000.0}
    report = compare(baseline, current)
    assert report["status"] == "regression"


def test_wall_clock_within_band_passes_beyond_band_regresses():
    slower = artifact()
    slower["rows"][0]["wall_clock_s"] = 3.9   # < 4x baseline of 1.0
    assert compare(artifact(), slower)["status"] == "ok"
    slower["rows"][0]["wall_clock_s"] = 4.1
    report = compare(artifact(), slower)
    assert report["status"] == "regression"
    assert any("wall_clock_s" in line for line in report["regressions"])
    # improvements never flag
    faster = artifact()
    faster["rows"][0]["wall_clock_s"] = 0.01
    assert compare(artifact(), faster)["status"] == "ok"


def test_throughput_family_regresses_downward_only():
    slower = artifact()
    slower["rows"][0]["events_per_sec"] = 5000 / (DEFAULT_WALL_BAND * 2)
    report = compare(artifact(), slower)
    assert report["status"] == "regression"
    faster = artifact()
    faster["rows"][0]["events_per_sec"] = 10 ** 9
    assert compare(artifact(), faster)["status"] == "ok"
    dropped = artifact()
    dropped["speedup_vs_seed"] = 15.0 / (DEFAULT_WALL_BAND * 2)
    assert compare(artifact(), dropped)["status"] == "regression"


def test_wall_family_none_transitions_are_notes_not_regressions():
    baseline = artifact()
    baseline["speedup_vs_seed"] = None
    report = compare(baseline, artifact())
    assert report["status"] == "ok"
    assert any("speedup_vs_seed" in note for note in report["notes"])


def test_ignored_provenance_and_extra_patterns():
    current = artifact()
    current["python"] = "3.12.0"
    assert compare(artifact(), current)["status"] == "ok"
    current["rows"][0]["read_digest"] = "zzz"
    assert compare(artifact(), current)["status"] == "regression"
    report = compare(artifact(), current,
                     ignore_patterns=("python", "*read_digest"))
    assert report["status"] == "ok"


def test_missing_key_regresses_new_key_notes():
    current = artifact()
    del current["rows"][1]["processed_events"]
    current["rows"][0]["brand_new"] = 1
    report = compare(artifact(), current)
    assert any("missing now" in line for line in report["regressions"])
    assert any("brand_new" in note for note in report["notes"])


def write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def test_cli_exit_codes_and_report_file(tmp_path, capsys):
    base = write(tmp_path / "base.json", artifact())
    same = write(tmp_path / "same.json", artifact())
    regressed_payload = artifact()
    regressed_payload["rows"][1]["sim_elapsed_s"] = 99.0
    regressed = write(tmp_path / "bad.json", regressed_payload)
    report_path = tmp_path / "report.json"

    assert main(["diff", base, same,
                 "--report", str(report_path)]) == 0
    assert json.loads(report_path.read_text())["status"] == "ok"
    out = capsys.readouterr().out
    assert "ok" in out

    assert main(["diff", base, regressed]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "sim_elapsed_s" in out

    # a planted wall regression is waved through by a wider band
    slow_payload = artifact()
    slow_payload["rows"][0]["wall_clock_s"] = 5.0
    slow = write(tmp_path / "slow.json", slow_payload)
    assert main(["diff", base, slow]) == 1
    capsys.readouterr()
    assert main(["diff", base, slow, "--wall-band", "8"]) == 0
    capsys.readouterr()
    # --ignore silences a named exact regression
    assert main(["diff", base, regressed,
                 "--ignore", "*sim_elapsed_s"]) == 0


def test_compare_files_and_write_report_round_trip(tmp_path):
    base = write(tmp_path / "a.json", artifact())
    curr = write(tmp_path / "b.json", artifact())
    report = compare_files(base, curr)
    assert report["baseline"] == base
    assert report["current"] == curr
    out = tmp_path / "r.json"
    write_report(report, str(out))
    assert json.loads(out.read_text()) == report


def test_unknown_cli_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
