"""Unit tests of the span tracer, context stack and Chrome export."""

import json

from repro.obs.export import (
    span_chains,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.trace import NULL_TRACER, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_tracer():
    clock = FakeClock()
    return Tracer(clock=clock), clock


def test_span_ids_sequential_and_clock_driven():
    tracer, clock = make_tracer()
    first = tracer.begin_span("a", "op", ("rank", "r0"))
    clock.now = 1.0
    second = tracer.begin_span("b", "op", ("rank", "r0"),
                               parent_id=first.span_id)
    clock.now = 2.0
    tracer.end_span(second)
    tracer.end_span(first)
    assert [span.span_id for span in tracer.spans] == [1, 2]
    assert second.parent_id == first.span_id
    assert (first.start, first.end) == (0.0, 2.0)
    assert (second.start, second.end) == (1.0, 2.0)
    assert second.duration == 1.0


def test_complete_span_records_precomputed_interval():
    tracer, clock = make_tracer()
    clock.now = 5.0
    span = tracer.complete_span("net.link", "net", ("link", "l0"),
                                start=1.5, end=2.5)
    assert (span.start, span.end) == (1.5, 2.5)
    assert span in tracer.finished_spans()


def test_context_stack_parents_mainline_spans():
    tracer, _clock = make_tracer()
    ctx = tracer.context(("rank", "r3"), node="node3")
    outer = ctx.begin("file.write_at_all", cat="mpiio", rank=3)
    inner = ctx.begin("collective.write.describe", cat="collective")
    assert inner.parent_id == outer.span_id
    assert ctx.current is inner
    ctx.finish(inner)
    assert ctx.current is outer
    ctx.finish(outer)
    assert ctx.current is None
    # context attrs merge into every span's args
    assert outer.args["node"] == "node3"
    assert outer.args["rank"] == 3


def test_finish_pops_spans_left_open_by_exception_paths():
    tracer, _clock = make_tracer()
    ctx = tracer.context(("rank", "r0"))
    outer = ctx.begin("outer")
    ctx.begin("leaked")
    ctx.finish(outer)
    assert ctx.current is None


def test_detached_spans_never_touch_the_stack():
    tracer, _clock = make_tracer()
    ctx = tracer.context(("rank", "r0"))
    mainline = ctx.begin("mainline")
    detached = ctx.begin_detached("commit", parent=mainline,
                                  lane=("rank", "r0"))
    flow = ctx.begin_detached("commit.complete", parent=detached, flow=True)
    assert ctx.current is mainline
    assert detached.parent_id == mainline.span_id
    assert flow.flow is True
    ctx.end(flow)
    ctx.end(detached)
    ctx.finish(mainline)


def test_wrap_is_a_pure_passthrough_closing_on_completion():
    tracer, clock = make_tracer()
    ctx = tracer.context(("rank", "r0"))

    def work():
        yield "tick"
        return 42

    wrapped = ctx.wrap(work(), "stage")
    span = tracer.spans[-1]
    assert span.end is None
    assert next(wrapped) == "tick"
    clock.now = 3.0
    try:
        next(wrapped)
    except StopIteration as stop:
        assert stop.value == 42
    assert span.end == 3.0


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.begin_span("a", "op", ("rank", "r0")) is None
    assert NULL_TRACER.context(("rank", "r0")) is None
    assert NULL_TRACER.finished_spans() == []


def test_chrome_export_schema_and_chains():
    tracer, clock = make_tracer()
    ctx = tracer.context(("rank", "r0"))
    root = ctx.begin("file.write_at_all", cat="mpiio")
    clock.now = 1e-3
    child = ctx.begin_detached("rpc.put_chunks", cat="rpc",
                               parent=root, lane=("shard", "data0"))
    clock.now = 2e-3
    ctx.end(child)
    ctx.finish(root)
    tracer.counter(("link", "l0"), "queue", {"depth": 2})

    trace = to_chrome_trace(tracer)
    assert validate_chrome_trace(trace) == []
    assert validate_chrome_trace(json.dumps(trace)) == []
    events = trace["traceEvents"]
    assert any(event["ph"] == "M" for event in events)
    assert any(event["ph"] == "C" for event in events)
    spans = [event for event in events if event["ph"] == "X"]
    assert len(spans) == 2
    # µs timestamps
    by_name = {event["name"]: event for event in spans}
    assert by_name["rpc.put_chunks"]["ts"] == 1000.0
    assert by_name["rpc.put_chunks"]["dur"] == 1000.0

    chains = span_chains(tracer)
    assert [span.name for span in chains[child.span_id]] == \
        ["file.write_at_all", "rpc.put_chunks"]


def test_span_chains_order_is_timestamp_major_span_id_tiebreak():
    # Spans recorded out of timestamp order (a late span first) plus two
    # spans sharing the exact same start: the chain listing must come back
    # sorted by (start, span_id), never by recording order.
    tracer, _clock = make_tracer()
    late = tracer.complete_span("late", "op", ("rank", "r1"),
                                start=5.0, end=6.0)
    tie_a = tracer.complete_span("tie_a", "op", ("rank", "r0"),
                                 start=2.0, end=3.0)
    tie_b = tracer.complete_span("tie_b", "op", ("rank", "r1"),
                                 start=2.0, end=4.0)
    early = tracer.complete_span("early", "op", ("rank", "r0"),
                                 start=0.0, end=1.0)
    chains = span_chains(tracer)
    assert list(chains) == [early.span_id, tie_a.span_id,
                            tie_b.span_id, late.span_id]
    # same-timestamp spans keep span-id order deterministically
    assert tie_a.span_id < tie_b.span_id


def test_validator_reports_problems():
    tracer, _clock = make_tracer()
    span = tracer.begin_span("open", "op", ("rank", "r0"))
    trace = to_chrome_trace(tracer)   # open span skipped
    assert validate_chrome_trace(trace) == []
    tracer.end_span(span)
    trace = to_chrome_trace(tracer)
    trace["traceEvents"].append({"ph": "X", "name": "bad"})
    assert validate_chrome_trace(trace) != []
