"""Property-based tests of the byte-range lock manager (safety & liveness)."""

from hypothesis import given, settings, strategies as st

from repro.core.regions import Region
from repro.posixfs.lock_manager import LockManager, LockMode


@st.composite
def lock_scripts(draw):
    """A random interleaving of lock requests and releases."""
    num_requests = draw(st.integers(1, 20))
    requests = []
    for index in range(num_requests):
        offset = draw(st.integers(0, 200))
        size = draw(st.integers(1, 50))
        mode = draw(st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]))
        requests.append((offset, size, mode))
    # release order: a permutation prefix (some locks may never be released)
    release_order = draw(st.permutations(list(range(num_requests))))
    release_count = draw(st.integers(0, num_requests))
    return requests, list(release_order)[:release_count]


def check_safety(manager: LockManager, file_id: str) -> None:
    """No two granted locks on the same file may conflict."""
    held = manager.held_locks(file_id)
    for i, a in enumerate(held):
        for b in held[i + 1:]:
            assert not a.conflicts_with(b), f"conflicting grants {a} / {b}"


@settings(max_examples=80, deadline=None)
@given(script=lock_scripts())
def test_no_conflicting_locks_ever_granted(script):
    requests, releases = script
    manager = LockManager()
    handles = []
    for offset, size, mode in requests:
        handles.append(manager.request("f", Region(offset, size), mode,
                                       owner=f"o{len(handles)}"))
        check_safety(manager, "f")
    for index in releases:
        manager.release(handles[index].token)
        check_safety(manager, "f")


@settings(max_examples=60, deadline=None)
@given(script=lock_scripts())
def test_releasing_everything_grants_everything(script):
    """Liveness: once every earlier lock is released, a waiter is granted."""
    requests, _releases = script
    manager = LockManager()
    handles = [manager.request("f", Region(offset, size), mode, owner=f"o{i}")
               for i, (offset, size, mode) in enumerate(requests)]
    # release in FIFO order; every handle must be granted by the time it is
    # released (it either was granted immediately or all conflicting earlier
    # holders are gone)
    for handle in handles:
        assert handle.granted, f"{handle} still waiting although all earlier " \
                               "conflicting locks were released"
        manager.release(handle.token)


@settings(max_examples=60, deadline=None)
@given(script=lock_scripts())
def test_accounting_is_consistent(script):
    requests, releases = script
    manager = LockManager()
    handles = [manager.request("f", Region(offset, size), mode, owner=f"o{i}")
               for i, (offset, size, mode) in enumerate(requests)]
    for index in releases:
        manager.release(handles[index].token)
    held = manager.held_locks("f")
    queued = manager.queued_locks("f")
    released = [handle for handle in handles if handle.released]
    assert len(held) + len(queued) + len(released) == len(handles)
    assert all(handle.granted for handle in held)
    assert all(not handle.granted for handle in queued)
