"""Unit tests for the striping layout."""

import pytest

from repro.core.regions import Region, RegionList
from repro.errors import InvalidRegion
from repro.posixfs.layout import StripeLayout


def test_invalid_parameters_rejected():
    with pytest.raises(InvalidRegion):
        StripeLayout(stripe_size=0, ost_count=2)
    with pytest.raises(InvalidRegion):
        StripeLayout(stripe_size=64, ost_count=0)


def test_single_stripe_region():
    layout = StripeLayout(stripe_size=100, ost_count=4)
    pieces = layout.map_region(Region(10, 50))
    assert len(pieces) == 1
    piece = pieces[0]
    assert piece.ost_index == 0
    assert piece.object_offset == 10
    assert piece.length == 50
    assert piece.file_offset == 10


def test_round_robin_across_osts():
    layout = StripeLayout(stripe_size=100, ost_count=2)
    pieces = layout.map_region(Region(0, 400))
    assert [piece.ost_index for piece in pieces] == [0, 1, 0, 1]
    # second visit of OST 0 goes to the next object slot
    assert pieces[2].object_offset == 100
    assert pieces[3].object_offset == 100


def test_unaligned_region_splits_on_stripe_boundaries():
    layout = StripeLayout(stripe_size=100, ost_count=3)
    pieces = layout.map_region(Region(250, 200))
    assert [(p.ost_index, p.object_offset, p.length) for p in pieces] == [
        (2, 50, 50), (0, 100, 100), (1, 100, 50)]
    assert sum(piece.length for piece in pieces) == 200


def test_map_regions_preserves_order():
    layout = StripeLayout(stripe_size=100, ost_count=2)
    pieces = layout.map_regions(RegionList([(300, 10), (0, 10)]))
    assert [piece.file_offset for piece in pieces] == [300, 0]


def test_osts_for_region_and_regions():
    layout = StripeLayout(stripe_size=100, ost_count=4)
    assert layout.osts_for_region(Region(0, 250)) == [0, 1, 2]
    assert layout.osts_for_regions(RegionList([(0, 50), (300, 50)])) == [0, 3]


def test_bytes_never_lost_or_duplicated():
    layout = StripeLayout(stripe_size=64, ost_count=3)
    region = Region(17, 1000)
    pieces = layout.map_region(region)
    covered = RegionList([(p.file_offset, p.length) for p in pieces]).normalized()
    assert covered.as_tuples() == [(17, 1000)]
