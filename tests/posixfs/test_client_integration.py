"""Integration tests: POSIX client + deployment on a simulated cluster."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.errors import FileNotFound
from repro.posixfs import PosixFsDeployment, PosixParallelFS
from repro.posixfs.lock_manager import LockMode


def make_deployment(num_osts=3, stripe_size=64):
    cluster = Cluster(config=ClusterConfig(network_latency=1e-5, disk_overhead=1e-4))
    deployment = PosixFsDeployment(cluster, num_osts=num_osts,
                                   default_stripe_size=stripe_size)
    return cluster, deployment


def run(cluster, generator):
    process = cluster.sim.process(generator)
    return cluster.sim.run(stop_event=process)


class TestPosixClient:
    def test_write_read_roundtrip(self):
        cluster, deployment = make_deployment()
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create("/shared", stripe_size=64)
            yield from client.write("/shared", 100, b"hello world")
            data = yield from client.read("/shared", 100, 11)
            attrs = yield from client.stat("/shared")
            return data, attrs.size

        data, size = run(cluster, scenario())
        assert data == b"hello world"
        assert size == 111

    def test_write_striped_across_osts(self):
        cluster, deployment = make_deployment(num_osts=3, stripe_size=64)
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create("/f", stripe_size=64, stripe_count=3)
            yield from client.write("/f", 0, b"z" * 64 * 6)

        run(cluster, scenario())
        per_ost = [ost.store.stored_bytes() for ost in deployment.osts]
        assert per_ost == [128, 128, 128]

    def test_read_missing_file_raises(self):
        cluster, deployment = make_deployment()
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.read("/missing", 0, 4)

        with pytest.raises(FileNotFound):
            run(cluster, scenario())

    def test_unwritten_bytes_read_as_zero(self):
        cluster, deployment = make_deployment()
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create("/f")
            yield from client.write("/f", 10, b"x")
            data = yield from client.read("/f", 0, 12)
            return data

        assert run(cluster, scenario()) == b"\x00" * 10 + b"x\x00"

    def test_vector_write_and_read(self):
        cluster, deployment = make_deployment()
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create("/f", stripe_size=64)
            yield from client.write_vector(
                "/f", IOVector.for_write([(0, b"aa"), (100, b"bb")]))
            results = yield from client.read_vector(
                "/f", IOVector.for_read([(0, 2), (100, 2)]))
            return results

        assert run(cluster, scenario()) == [b"aa", b"bb"]

    def test_advisory_lock_serializes_writers(self):
        cluster, deployment = make_deployment()
        clients = [deployment.client(node)
                   for node in cluster.add_nodes("c", 2)]
        order = []

        def locker(client, name, hold_time):
            handle = yield from client.lock_extent("/f", 0, 128,
                                                   LockMode.EXCLUSIVE)
            order.append((name, "acquired", cluster.sim.now))
            yield cluster.sim.timeout(hold_time)
            yield from client.unlock(handle)
            order.append((name, "released", cluster.sim.now))

        def scenario():
            yield from clients[0].create("/f", stripe_size=64)
            procs = [cluster.sim.process(locker(clients[0], "a", 0.5)),
                     cluster.sim.process(locker(clients[1], "b", 0.5))]
            yield cluster.sim.all_of(procs)

        run(cluster, scenario())
        acquired = [entry for entry in order if entry[1] == "acquired"]
        released = [entry for entry in order if entry[1] == "released"]
        # the second acquisition happens only after the first release
        assert acquired[1][2] >= released[0][2]

    def test_lock_wait_time_accounted(self):
        cluster, deployment = make_deployment()
        clients = [deployment.client(node) for node in cluster.add_nodes("c", 2)]

        def locker(client, hold):
            handle = yield from client.lock_extent("/f", 0, 64, LockMode.EXCLUSIVE)
            yield cluster.sim.timeout(hold)
            yield from client.unlock(handle)

        def scenario():
            yield from clients[0].create("/f", stripe_size=64)
            procs = [cluster.sim.process(locker(client, 1.0)) for client in clients]
            yield cluster.sim.all_of(procs)

        run(cluster, scenario())
        stats = deployment.stats()
        assert stats["lock_wait_time"] >= 1.0

    def test_shared_locks_allow_concurrent_readers(self):
        cluster, deployment = make_deployment()
        clients = [deployment.client(node) for node in cluster.add_nodes("c", 3)]
        acquired_times = []

        def reader(client):
            handle = yield from client.lock_extent("/f", 0, 64, LockMode.SHARED)
            acquired_times.append(cluster.sim.now)
            yield cluster.sim.timeout(1.0)
            yield from client.unlock(handle)

        def scenario():
            yield from clients[0].create("/f", stripe_size=64)
            procs = [cluster.sim.process(reader(client)) for client in clients]
            yield cluster.sim.all_of(procs)

        run(cluster, scenario())
        assert max(acquired_times) - min(acquired_times) < 1.0

    def test_noncontiguous_lock_spans_multiple_osts(self):
        cluster, deployment = make_deployment(num_osts=3, stripe_size=64)
        client = deployment.client(cluster.add_node("c0"))

        def scenario():
            yield from client.create("/f", stripe_size=64, stripe_count=3)
            handle = yield from client.lock_regions(
                "/f", RegionList([(0, 10), (64, 10), (128, 10)]),
                LockMode.EXCLUSIVE)
            count = len(handle.entries)
            yield from client.unlock(handle)
            return count

        assert run(cluster, scenario()) == 3


class TestPosixFacade:
    def test_facade_roundtrip(self):
        fs = PosixParallelFS(num_osts=2, stripe_size=64,
                             config=ClusterConfig(network_latency=1e-5))
        fs.create("/f")
        fs.write("/f", 5, b"abc")
        assert fs.read("/f", 5, 3) == b"abc"
        assert fs.stat("/f").size == 8

    def test_facade_vector_helpers(self):
        fs = PosixParallelFS(num_osts=2, stripe_size=64,
                             config=ClusterConfig(network_latency=1e-5))
        fs.create("/f")
        fs.write_vector("/f", [(0, b"xx"), (70, b"yy")])
        assert fs.read_vector("/f", [(0, 2), (70, 2)]) == [b"xx", b"yy"]

    def test_facade_lock_unlock(self):
        fs = PosixParallelFS(num_osts=2, stripe_size=64,
                             config=ClusterConfig(network_latency=1e-5))
        fs.create("/f")
        handle = fs.lock("/f", 0, 100)
        assert handle.entries
        fs.unlock(handle)
        stats = fs.stats()
        assert stats["locks_granted"] >= 1
