"""Unit tests for the metadata server and object stores."""

import pytest

from repro.errors import FileExists, FileNotFound, FileSystemError
from repro.posixfs.mds import MetadataServer
from repro.posixfs.ost import ObjectStore


class TestMetadataServer:
    def test_create_and_lookup(self):
        mds = MetadataServer(default_stripe_size=128, default_stripe_count=4)
        attrs = mds.create("/data/file")
        assert attrs.layout.stripe_size == 128
        assert attrs.layout.ost_count == 4
        assert mds.lookup("/data/file") is attrs
        assert mds.exists("/data/file")
        assert mds.file_count() == 1

    def test_create_with_explicit_striping(self):
        mds = MetadataServer()
        attrs = mds.create("/f", stripe_size=32, stripe_count=2)
        assert attrs.layout.stripe_size == 32
        assert attrs.layout.ost_count == 2

    def test_duplicate_create_rejected_unless_exist_ok(self):
        mds = MetadataServer()
        first = mds.create("/f")
        with pytest.raises(FileExists):
            mds.create("/f")
        assert mds.create("/f", exist_ok=True) is first

    def test_lookup_missing_raises(self):
        with pytest.raises(FileNotFound):
            MetadataServer().lookup("/missing")

    def test_update_size_monotonic(self):
        mds = MetadataServer()
        mds.create("/f")
        assert mds.update_size("/f", 100) == 100
        assert mds.update_size("/f", 50) == 100
        assert mds.lookup("/f").size == 100

    def test_unlink(self):
        mds = MetadataServer()
        mds.create("/f")
        mds.unlink("/f")
        assert not mds.exists("/f")
        with pytest.raises(FileNotFound):
            mds.unlink("/f")

    def test_object_ids_distinct_per_ost_and_inode(self):
        mds = MetadataServer()
        a = mds.create("/a")
        b = mds.create("/b")
        assert a.object_id(0) != a.object_id(1)
        assert a.object_id(0) != b.object_id(0)


class TestObjectStore:
    def test_write_and_read(self):
        store = ObjectStore("ost0")
        store.write_range("obj", 10, b"hello")
        assert store.read_range("obj", 10, 5) == b"hello"
        assert store.object_size("obj") == 15

    def test_read_past_end_zero_filled(self):
        store = ObjectStore("ost0")
        store.write_range("obj", 0, b"ab")
        assert store.read_range("obj", 0, 5) == b"ab\x00\x00\x00"
        assert store.read_range("missing", 0, 3) == b"\x00\x00\x00"

    def test_write_grows_with_zero_gap(self):
        store = ObjectStore("ost0")
        store.write_range("obj", 5, b"xy")
        assert store.read_range("obj", 0, 7) == b"\x00" * 5 + b"xy"

    def test_overwrite(self):
        store = ObjectStore("ost0")
        store.write_range("obj", 0, b"aaaa")
        store.write_range("obj", 1, b"bb")
        assert store.read_range("obj", 0, 4) == b"abba"

    def test_invalid_arguments(self):
        store = ObjectStore("ost0")
        with pytest.raises(FileSystemError):
            store.write_range("obj", -1, b"x")
        with pytest.raises(FileSystemError):
            store.read_range("obj", -1, 4)

    def test_counters(self):
        store = ObjectStore("ost0")
        store.write_range("obj", 0, b"1234")
        store.read_range("obj", 0, 2)
        assert store.bytes_written == 4
        assert store.bytes_read == 2
        assert store.object_count() == 1
        assert store.stored_bytes() == 4
