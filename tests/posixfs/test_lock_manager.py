"""Unit tests for the byte-range lock manager (pure logic)."""

import pytest

from repro.core.regions import Region
from repro.errors import LockError, LockNotHeld
from repro.posixfs.lock_manager import LockManager, LockMode


def test_non_conflicting_locks_granted_immediately():
    manager = LockManager()
    a = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "a")
    b = manager.request("f", Region(10, 10), LockMode.EXCLUSIVE, "b")
    assert a.granted and b.granted


def test_conflicting_exclusive_locks_queue():
    manager = LockManager()
    a = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "a")
    b = manager.request("f", Region(5, 10), LockMode.EXCLUSIVE, "b")
    assert a.granted and not b.granted
    manager.release(a.token)
    assert b.granted


def test_shared_locks_are_compatible():
    manager = LockManager()
    a = manager.request("f", Region(0, 10), LockMode.SHARED, "a")
    b = manager.request("f", Region(0, 10), LockMode.SHARED, "b")
    assert a.granted and b.granted


def test_shared_blocks_exclusive_and_vice_versa():
    manager = LockManager()
    shared = manager.request("f", Region(0, 10), LockMode.SHARED, "a")
    exclusive = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "b")
    assert shared.granted and not exclusive.granted
    manager.release(shared.token)
    assert exclusive.granted
    late_shared = manager.request("f", Region(0, 10), LockMode.SHARED, "c")
    assert not late_shared.granted


def test_locks_on_different_files_do_not_conflict():
    manager = LockManager()
    a = manager.request("f1", Region(0, 10), LockMode.EXCLUSIVE, "a")
    b = manager.request("f2", Region(0, 10), LockMode.EXCLUSIVE, "b")
    assert a.granted and b.granted


def test_fifo_fairness_no_overtaking():
    manager = LockManager()
    holder = manager.request("f", Region(0, 100), LockMode.EXCLUSIVE, "holder")
    big_waiter = manager.request("f", Region(0, 100), LockMode.EXCLUSIVE, "big")
    # a later, smaller request that does not conflict with the holder's region
    # remainder but does conflict with the earlier waiter must not overtake it
    small_waiter = manager.request("f", Region(50, 10), LockMode.EXCLUSIVE, "small")
    assert not big_waiter.granted and not small_waiter.granted
    manager.release(holder.token)
    assert big_waiter.granted
    assert not small_waiter.granted
    manager.release(big_waiter.token)
    assert small_waiter.granted


def test_grant_callback_invoked():
    manager = LockManager()
    granted = []
    a = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "a")
    manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "b",
                    on_grant=lambda req: granted.append(req.owner))
    assert granted == []
    manager.release(a.token)
    assert granted == ["b"]


def test_release_queued_request_cancels_it():
    manager = LockManager()
    a = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "a")
    b = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "b")
    c = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "c")
    manager.release(b.token)          # cancel while queued
    manager.release(a.token)
    assert c.granted and not b.granted


def test_release_unknown_token_raises():
    with pytest.raises(LockNotHeld):
        LockManager().release(42)


def test_double_release_raises():
    manager = LockManager()
    a = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "a")
    manager.release(a.token)
    with pytest.raises(LockNotHeld):
        manager.release(a.token)


def test_empty_range_rejected():
    with pytest.raises(LockError):
        LockManager().request("f", Region(0, 0), LockMode.EXCLUSIVE, "a")


def test_is_held_and_introspection():
    manager = LockManager()
    a = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "a")
    b = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "b")
    assert manager.is_held(a.token)
    assert not manager.is_held(b.token)
    assert len(manager.held_locks("f")) == 1
    assert len(manager.queued_locks("f")) == 1


def test_counters():
    manager = LockManager()
    a = manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "a")
    manager.request("f", Region(0, 10), LockMode.EXCLUSIVE, "b")
    assert manager.locks_granted == 1
    assert manager.locks_queued == 1
    manager.release(a.token)
    assert manager.locks_granted == 2


def test_many_disjoint_writers_all_granted():
    manager = LockManager()
    requests = [manager.request("f", Region(i * 10, 10), LockMode.EXCLUSIVE, f"w{i}")
                for i in range(50)]
    assert all(request.granted for request in requests)
