#!/usr/bin/env python3
"""Producer/consumer pipelines with application-level versioning (future work).

The paper's conclusion proposes exposing the storage back-end's versioning
interface directly to applications: a simulation (producer) keeps publishing
new snapshots of its output while a visualization pipeline (consumer) reads
*stable, named versions* of the same dataset — with no synchronization
between the two.

This example demonstrates that interface with the synchronous facade:

* the producer publishes one snapshot per iteration with atomic vectored
  writes;
* the consumer pins a version and reads it piece by piece — even though the
  producer has published several newer snapshots in the meantime, the pinned
  version never changes under the consumer's feet (snapshot isolation);
* at the end, the full version history is still available.

Run it with::

    python examples/producer_consumer.py
"""

import numpy as np

from repro import VersioningBackend

ITERATIONS = 5
CELLS = 256            # 1-D domain of float64 cells
ELEMENT = 8


def produce(backend: VersioningBackend, blob: str, iteration: int) -> int:
    """Publish one simulation snapshot; returns its version."""
    # a simple travelling wave so every iteration's content is distinct
    x = np.arange(CELLS, dtype=np.float64)
    field = np.sin(2 * np.pi * (x - 8 * iteration) / CELLS) * (iteration + 1)
    payload = field.tobytes()
    # dump as two non-contiguous halves (header + body would be typical)
    half = len(payload) // 2
    receipt = backend.vwrite(blob, [(0, payload[:half]), (half, payload[half:])])
    return receipt.version


def consume(backend: VersioningBackend, blob: str, version: int) -> np.ndarray:
    """Read one pinned snapshot (in several small reads) and decode it."""
    pieces = backend.vread(blob, [(offset, 512)
                                  for offset in range(0, CELLS * ELEMENT, 512)],
                           version=version)
    return np.frombuffer(b"".join(pieces), dtype=np.float64)


def main() -> None:
    backend = VersioningBackend(num_providers=4, chunk_size=1024)
    blob = backend.create_blob("wavefield", size=CELLS * ELEMENT)

    print("producer publishes snapshots while the consumer pins version 2\n")
    pinned_version = None
    pinned_copy = None

    for iteration in range(ITERATIONS):
        version = produce(backend, blob, iteration)
        print(f"iteration {iteration}: published snapshot v{version}")

        if version == 2:
            pinned_version = version
            pinned_copy = consume(backend, blob, pinned_version)
            print(f"  consumer pinned v{pinned_version} "
                  f"(peak amplitude {np.abs(pinned_copy).max():.2f})")

    # after all iterations, the pinned snapshot still reads back identically
    again = consume(backend, blob, pinned_version)
    assert np.array_equal(again, pinned_copy), "snapshot isolation violated!"
    print(f"\nre-reading v{pinned_version} after {ITERATIONS} iterations: "
          "bit-identical (snapshot isolation holds)")

    latest = backend.latest_version(blob)
    amplitudes = {version: float(np.abs(consume(backend, blob, version)).max())
                  for version in range(1, latest + 1)}
    print("\nfull version history (peak amplitude per snapshot):")
    for version, amplitude in amplitudes.items():
        print(f"  v{version}: {amplitude:6.2f}")
    print("\nNo locks, no copies at the application level: the consumer reads "
          "named snapshots\nwhile the producer keeps writing — the future-work "
          "scenario of the paper's conclusion.")


if __name__ == "__main__":
    main()
