#!/usr/bin/env python3
"""Quickstart: the versioning storage backend in five minutes.

This example uses the synchronous :class:`repro.VersioningBackend` facade —
no simulation plumbing, no MPI — to show the three ideas of the paper:

1. a *vectored* (List-I/O style) write carries a whole non-contiguous access
   in one call and is applied atomically as one snapshot;
2. every write produces a *new version*; old snapshots stay readable;
3. data is *striped* over several data providers without the caller doing
   anything.

Run it with::

    python examples/quickstart.py
"""

from repro import VersioningBackend


def main() -> None:
    # A backend with 4 data providers and 64-byte chunks (tiny, so the
    # striping is visible in the stats below).
    backend = VersioningBackend(num_providers=4, chunk_size=64)

    # ------------------------------------------------------------------
    # 1. create a BLOB and write two non-contiguous regions atomically
    # ------------------------------------------------------------------
    blob = backend.create_blob("dataset", size=4096)
    receipt = backend.vwrite(blob, [(0, b"header: simulation t=0\n"),
                                    (1024, b"temperature block"),
                                    (2048, b"pressure block")])
    print(f"first write  -> snapshot v{receipt.version}, "
          f"{receipt.bytes_written} bytes in {receipt.chunks} chunks")

    # ------------------------------------------------------------------
    # 2. overwrite part of it -- a new snapshot appears, the old one stays
    # ------------------------------------------------------------------
    receipt2 = backend.vwrite(blob, [(1024, b"TEMPERATURE BLOCK"),
                                     (3072, b"new diagnostics block")])
    print(f"second write -> snapshot v{receipt2.version}")

    latest = backend.latest_version(blob)
    print(f"latest published version: v{latest}")

    # non-contiguous read from the latest snapshot
    temperature, pressure = backend.vread(blob, [(1024, 17), (2048, 14)])
    print(f"latest  : temperature={temperature!r} pressure={pressure!r}")

    # the same ranges as they were in snapshot v1 (time travel)
    old_temperature, _ = backend.vread(blob, [(1024, 17), (2048, 14)],
                                       version=receipt.version)
    print(f"v{receipt.version} view : temperature={old_temperature!r}")

    # bytes nobody ever wrote read back as zeros
    hole = backend.read(blob, 512, 8)
    print(f"unwritten bytes read as zeros: {hole!r}")

    # ------------------------------------------------------------------
    # 3. striping and versioning statistics
    # ------------------------------------------------------------------
    stats = backend.stats()
    print("\nbackend statistics")
    for key in ("providers", "chunks", "stored_bytes", "metadata_nodes",
                "snapshots_published", "load_imbalance"):
        print(f"  {key:20s} {stats[key]}")
    print(f"  simulated time       {backend.cluster.now * 1000:.3f} ms")


if __name__ == "__main__":
    main()
