#!/usr/bin/env python3
"""Ghost-cell simulation dump: the access pattern the paper is built for.

A 2-D heat-diffusion simulation is decomposed over several MPI ranks whose
subdomains overlap at their borders (ghost cells).  After every iteration,
each rank dumps its whole ghost-extended subdomain into a globally shared
snapshot file through the MPI-I/O layer in **atomic mode** — the overlapped
borders are written by several ranks concurrently, which is exactly why MPI
atomicity is needed.

The example runs the same dump once over the paper's versioning backend and
once over the Lustre-like locking baseline, verifies that both produce the
correct global field, and prints how long the dump phase took on each.

Run it with::

    python examples/ghost_cell_simulation.py
"""

import numpy as np

from repro.bench.environment import build_environment
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.file import AccessMode, File
from repro.workloads.ghost_cells import GhostCellSimulation

NUM_RANKS = 4
ITERATIONS = 3
DOMAIN = 48          # 48 x 48 cells
GHOST = 2            # two layers of ghost cells


def run_dumps(backend_name: str, simulation: GhostCellSimulation) -> float:
    """Dump every iteration's field through MPI-I/O; return the dump time."""
    environment = build_environment(backend_name, num_storage_nodes=4,
                                    stripe_unit=16 * 1024)
    cluster = environment.cluster
    dump_time = [0.0]

    def rank_main(ctx):
        driver = environment.driver_factory(ctx)
        handle = yield from File.open(driver, "/snapshots",
                                      AccessMode.default_write(),
                                      rank=ctx.rank, comm=ctx.comm,
                                      size_hint=simulation.file_size)
        handle.set_atomicity(True)

        for iteration in range(ITERATIONS):
            # rank 0 advances the (shared, replicated) field, then broadcasts
            if ctx.rank == 0:
                simulation.step()
            yield from ctx.comm.barrier(ctx.rank)

            pairs = simulation.rank_dump_pairs(ctx.rank)
            lengths = [len(data) for _, data in pairs]
            displacements = [offset for offset, _ in pairs]
            handle.set_view(filetype=Indexed(lengths, displacements, base=BYTE))
            payload = b"".join(data for _, data in pairs)

            yield from ctx.comm.barrier(ctx.rank)
            start = ctx.sim.now
            yield from handle.write_at_all(0, payload)
            yield from ctx.comm.barrier(ctx.rank)
            if ctx.rank == 0:
                dump_time[0] += ctx.sim.now - start

        # rank 0 reads the final snapshot back for verification
        content = b""
        if ctx.rank == 0:
            handle.set_view()
            content = yield from handle.read_at(0, simulation.file_size)
        yield from handle.close()
        return content

    result = run_mpi_job(cluster, NUM_RANKS, rank_main)
    final_content = result.results[0]

    # verify: the shared file holds exactly the global field
    reassembled = simulation.decode_file(final_content)
    np.testing.assert_array_equal(reassembled, simulation.field)
    return dump_time[0]


def main() -> None:
    print(f"2-D heat diffusion, {DOMAIN}x{DOMAIN} cells, {NUM_RANKS} ranks, "
          f"ghost width {GHOST}, {ITERATIONS} iterations\n")

    for backend in ("versioning", "posix-locking"):
        simulation = GhostCellSimulation(domain_x=DOMAIN, domain_y=DOMAIN,
                                         num_ranks=NUM_RANKS, ghost=GHOST)
        overlaps = simulation.decomposition.overlap_pairs()
        elapsed = run_dumps(backend, simulation)
        print(f"{backend:15s}  dump phase {elapsed * 1000:8.2f} ms "
              f"(simulated), {len(overlaps)} overlapping rank pairs, "
              f"file verified OK")

    print("\nBoth backends produce the correct shared file; the versioning "
          "backend does it without any locking.")


if __name__ == "__main__":
    main()
