#!/usr/bin/env python3
"""The scenario fuzzer's full loop: sweep, flag, replay, triage.

Walks what ``python -m repro.fuzz`` does, one stage at a time:

1. sweeps a handful of seeds through the generator → runner → invariant
   bank and prints each run's ``runs.ndjson`` line;
2. re-executes one seed and shows the line reproduces byte-identically
   (the replay contract: every random choice derives from the seed);
3. manufactures a *flagged* run by planting a corruption in a finished
   run's observations — the byte-identity checker catches it — and dumps
   the triage bundle a real flagged seed would get (scenario blueprint,
   resolved config, anomalies, Chrome trace for Perfetto).

Run it with::

    python examples/fuzz_replay.py
"""

import json
import tempfile
from pathlib import Path

from repro.fuzz.generator import generate_scenario
from repro.fuzz.report import dump_flagged, run_line
from repro.fuzz.runner import execute_scenario

SWEEP_SEEDS = range(4)
REPLAY_SEED = 1


def main():
    # ------------------------------------------------------------------
    # 1. a miniature sweep
    # ------------------------------------------------------------------
    print(f"=== sweep: seeds {SWEEP_SEEDS.start}..{SWEEP_SEEDS.stop - 1} ===")
    for seed in SWEEP_SEEDS:
        scenario = generate_scenario(seed)
        result = execute_scenario(scenario)
        record = json.loads(run_line(result))
        print(f"seed {seed}: {record['status']:7s} "
              f"ranks={record['num_ranks']} "
              f"phases={','.join(record['phases'])} "
              f"fired={record['fired'] or '-'}")

    # ------------------------------------------------------------------
    # 2. byte-identical replay
    # ------------------------------------------------------------------
    print(f"\n=== replay: seed {REPLAY_SEED} twice ===")
    scenario = generate_scenario(REPLAY_SEED)
    first = run_line(execute_scenario(scenario))
    second = run_line(execute_scenario(scenario))
    assert first == second, "replay must be byte-identical"
    print(f"two executions, identical {len(first)}-byte lines — the line "
          "has no wall-clock content, every field derives from the seed")

    # ------------------------------------------------------------------
    # 3. a planted corruption, caught and dumped for triage
    # ------------------------------------------------------------------
    print("\n=== planted corruption ===")
    result = execute_scenario(scenario)
    assert not result.flagged
    # forge a byte-identity anomaly the way a real stack bug would surface
    result.anomalies["byte_identity"].append(
        "byte_identity: final contents diverge from the serial oracle at "
        "offset 4096 (1 bytes) [planted by examples/fuzz_replay.py]")
    print("planted anomaly:", result.all_anomalies()[0])

    with tempfile.TemporaryDirectory() as out:
        run_dir = Path(dump_flagged(result, out))
        print(f"triage bundle ({run_dir.name}):")
        for name in sorted(path.name for path in run_dir.iterdir()):
            size = (run_dir / name).stat().st_size
            print(f"  {name:15s} {size:>8d} bytes")
        blueprint = json.loads((run_dir / "scenario.json").read_text())
        print(f"scenario blueprint: {len(blueprint['phases'])} phases, "
              f"{len(blueprint['injectors'])} injectors — replay with: "
              f"python -m repro.fuzz --replay {blueprint['seed']}")
        print("open trace.json at https://ui.perfetto.dev to walk the "
              "flagged run's exact timeline (tracing is behaviour-neutral)")


if __name__ == "__main__":
    main()
