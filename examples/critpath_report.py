#!/usr/bin/env python3
"""Profile a collective MPI-I/O job's simulated critical path.

Tracing (:mod:`repro.obs`) records every span on the *simulation* clock,
so the critical-path profiler can answer, deterministically, where an
operation's simulated time went: every instant of a traced operation's
end-to-end window is attributed to exactly one of six layers
(client compute, deferred-complete overlap, RPC queueing, link transfer,
shard service, coalesce park), and the layers sum back to the window with
exact float equality.  This walkthrough:

1. runs an 8-rank collective write/read job with tracing and latency
   digests on, under the queued network model;
2. extracts one ``file.write_at_all``'s critical path segment by segment;
3. prints the aggregated per-operation layer breakdown
   (:func:`repro.obs.critpath.operation_report`) — the same report the
   traced simcore bench row embeds and ``python -m repro.obs critpath``
   dumps;
4. shows the RPC latency digest the same run collected.

Run it with::

    python examples/critpath_report.py
"""

from repro.cluster.config import ClusterConfig
from repro.obs.critpath import (
    LAYERS,
    SpanDag,
    critical_path,
    layer_breakdown,
    operation_report,
)
from repro.obs.digest import digest_columns


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a traced, digest-tapped collective job (the simcore workload)
    # ------------------------------------------------------------------
    from repro.bench.simcore import run_collective_io_point

    config = ClusterConfig(network_model="queued", tracing=True,
                           latency_digests=True)
    row = run_collective_io_point(
        num_ranks=8, blocks_per_rank=4, block_size=4096, read_rounds=1,
        num_aggregators=2, config=config, num_providers=4, seed=0)
    print(f"bench row: sim time {row['sim_elapsed_s'] * 1e3:.3f} ms, "
          f"{row['processed_events']} events, critpath embedded for "
          f"{len(row['critpath']['operations'])} operation kinds")

    # ------------------------------------------------------------------
    # 2. one operation's path, segment by segment — a tiny traced job
    #    whose spans we walk directly
    # ------------------------------------------------------------------
    from repro.blobseer.deployment import BlobSeerDeployment
    from repro.cluster.cluster import Cluster
    from repro.mpi.launcher import run_mpi_job
    from repro.mpiio.adio.versioning import VersioningDriver
    from repro.mpiio.file import File

    cluster = Cluster(config=config)
    deployment = BlobSeerDeployment(cluster, num_providers=2,
                                    num_metadata_providers=1,
                                    chunk_size=16 * 1024, node_prefix="cp")

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"cp{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=2)
        handle = yield from File.open(driver, "/profiled", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=16 * 4096)
        payload = bytes([ctx.rank + 1]) * 4096
        yield from handle.write_at_all(ctx.rank * 4096, payload)
        yield from handle.sync()
        yield from handle.close()

    run_mpi_job(cluster, 4, rank_main, node_prefix="cp-rank")
    dag = SpanDag.from_tracer(cluster.obs.tracer)
    root = dag.roots(["file.write_at_all"])[0]
    segments = critical_path(dag, root)
    window = root.end - root.start
    print(f"\nfile.write_at_all (rank lane {root.lane[1]}): "
          f"{window * 1e6:.2f} us end to end, "
          f"{len(segments)} path segments:")
    for segment in segments:
        print(f"  [{segment.start * 1e6:9.2f}, {segment.end * 1e6:9.2f}) us  "
              f"{segment.layer:<26} via {segment.name}")
    layers = layer_breakdown(segments)
    assert layers["total"] == sum(layers[layer] for layer in LAYERS)
    print(f"  layers sum to {layers['total'] * 1e6:.2f} us — "
          "the exact end-to-end window")

    # ------------------------------------------------------------------
    # 3. the aggregated per-operation report (what the bench row embeds)
    # ------------------------------------------------------------------
    report = operation_report(cluster.obs.tracer)
    print("\nper-operation layer breakdown (seconds, summed over "
          "occurrences):")
    for name, entry in report["operations"].items():
        print(f"  {name} x{entry['count']}: "
              f"end-to-end {entry['end_to_end_s']:.6f}s")
        for layer in LAYERS:
            value = entry["layers"][layer]
            if value:
                share = value / entry["end_to_end_s"] * 100
                print(f"    {layer:<26} {value:.6f}s  ({share:4.1f}%)")

    # ------------------------------------------------------------------
    # 4. the latency digest the same run collected
    # ------------------------------------------------------------------
    columns = digest_columns(cluster.obs.registry)
    print(f"\nRPC latency digest: {columns['rpc_latency_count']} calls, "
          f"p50 {columns['rpc_latency_p50'] * 1e6:.1f} us, "
          f"p99 {columns['rpc_latency_p99'] * 1e6:.1f} us, "
          f"max {columns['rpc_latency_max'] * 1e6:.1f} us")
    print("every number above derives from the simulation clock — "
          "rerunning this script reproduces it byte-for-byte")


if __name__ == "__main__":
    main()
