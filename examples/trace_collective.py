#!/usr/bin/env python3
"""Trace a collective MPI-I/O job and read the evidence three ways.

The observability subsystem (:mod:`repro.obs`) records everything on the
*simulation* clock, so nothing here perturbs the run and two executions
produce byte-identical artifacts.  This walkthrough:

1. runs an 8-rank ``write_at_all`` + ``read_at_all`` job under the queued
   network model with ``ClusterConfig(tracing=True)``;
2. walks the causal span tree — file operation → collective phase →
   coalescer batch → commit stage → per-shard RPC → network link;
3. collects the unified metrics registry and checks its partition
   identities;
4. dumps a Chrome trace-event JSON you can open at
   https://ui.perfetto.dev (or ``chrome://tracing``).

Run it with::

    python examples/trace_collective.py
"""

import tempfile
from pathlib import Path

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.obs.export import (
    dump_chrome_trace,
    span_chains,
    validate_chrome_trace,
)
from repro.obs.views import collect_all

NUM_RANKS = 8
BLOCKS = 8
BLOCK_SIZE = 1024


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a traced cluster: one flag turns the whole subsystem on
    # ------------------------------------------------------------------
    cluster = Cluster(config=ClusterConfig(network_model="queued",
                                           tracing=True))
    deployment = BlobSeerDeployment(cluster, num_providers=4,
                                    num_metadata_providers=2,
                                    chunk_size=16 * 1024, node_prefix="ex")
    stride = NUM_RANKS * BLOCK_SIZE
    file_size = BLOCKS * stride
    drivers = []
    comms = []

    def rank_main(ctx):
        driver = VersioningDriver(deployment, ctx.node,
                                  rank_name=f"ex{ctx.rank}",
                                  write_coalescing=True,
                                  collective_buffering=True,
                                  collective_aggregators=2)
        drivers.append(driver)
        if ctx.rank == 0:
            comms.append(ctx.comm)
        handle = yield from File.open(driver, "/traced", rank=ctx.rank,
                                      comm=ctx.comm, size_hint=file_size)
        displacements = [index * stride + ctx.rank * BLOCK_SIZE
                         for index in range(BLOCKS)]
        handle.set_view(0, BYTE, Indexed([BLOCK_SIZE] * BLOCKS,
                                         displacements, base=BYTE))
        payload = bytes([(ctx.rank + 1) % 251]) * (BLOCKS * BLOCK_SIZE)
        yield from handle.write_at_all(0, payload)
        yield from handle.sync()
        data = yield from handle.read_at_all(0, BLOCKS * BLOCK_SIZE)
        assert data == payload, "collective read returned wrong bytes"
        yield from handle.close()

    run_mpi_job(cluster, NUM_RANKS, rank_main, node_prefix="ex-rank")
    tracer = cluster.obs.tracer
    print(f"job done: {len(tracer.spans)} spans, "
          f"sim time {cluster.sim.now * 1e3:.3f} ms")

    # ------------------------------------------------------------------
    # 2. the causal tree: follow one write from the File layer to a link
    # ------------------------------------------------------------------
    deepest = max(span_chains(tracer).values(), key=len)
    print(f"\ndeepest causal chain ({len(deepest)} layers):")
    for depth, span in enumerate(deepest):
        lane = f"{span.lane[0]}:{span.lane[1]}"
        print(f"  {'  ' * depth}{span.name}  [{lane}]  "
              f"{(span.end - span.start) * 1e6:.1f} us")

    # ------------------------------------------------------------------
    # 3. the unified metrics registry, identities re-asserted
    # ------------------------------------------------------------------
    registry = collect_all(cluster.obs.registry, cluster=cluster,
                           deployment=deployment, drivers=drivers,
                           comms=comms, complete_clients=True)
    registry.assert_identities()
    snap = registry.snapshot()
    print("\nselected metrics:")
    for name in ("client.bytes_written", "metadata.cache.lookups",
                 "metadata.cache.hits", "collective.write.stripes_committed",
                 "mpi.bytes_moved", "net.bytes", "net.link.reservations"):
        print(f"  {name} = {snap[name]}")
    print("partition identities: all hold")

    # link telemetry from the queued model
    report = cluster.obs.link_telemetry.report()
    busiest = max(report, key=lambda name: report[name]["utilization"])
    print(f"busiest link: {busiest} "
          f"(utilization {report[busiest]['utilization']:.1%}, "
          f"max queue delay {report[busiest]['max_queue_delay_s'] * 1e6:.1f} us)")

    # ------------------------------------------------------------------
    # 4. export for Perfetto / chrome://tracing
    # ------------------------------------------------------------------
    out = Path(tempfile.mkdtemp()) / "trace_collective.json"
    trace = dump_chrome_trace(tracer, out,
                              telemetry=cluster.obs.link_telemetry)
    problems = validate_chrome_trace(trace)
    assert problems == [], problems
    print(f"\nwrote {out} ({out.stat().st_size} bytes, schema-valid)")
    print("open it at https://ui.perfetto.dev -> 'Open trace file'")


if __name__ == "__main__":
    main()
