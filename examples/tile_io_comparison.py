#!/usr/bin/env python3
"""MPI-tile-IO on both storage back-ends (the paper's second experiment).

Every MPI process owns one tile of a dense 2-D dataset; adjacent tiles
overlap by a configurable number of elements, so the concurrent dump of all
tiles into the shared file needs MPI atomic mode.  The example sweeps the
number of processes and prints the aggregated write throughput of the
versioning backend and of the Lustre-like locking baseline — a small-scale
rendition of Figure B.

Run it with::

    python examples/tile_io_comparison.py
"""

from repro.bench.environment import build_environment
from repro.bench.harness import run_atomic_write_job, verify_job_atomicity
from repro.bench.reporting import format_series
from repro.workloads.tile_io import TileIOWorkload

CLIENT_COUNTS = (1, 2, 4, 8)
BACKENDS = ("versioning", "posix-locking")


def main() -> None:
    base = TileIOWorkload(sz_tile_x=64, sz_tile_y=64, sz_element=32,
                          overlap_x=8, overlap_y=8)
    curves = {backend: {} for backend in BACKENDS}

    for clients in CLIENT_COUNTS:
        workload = base.scaled_to(clients)
        for backend in BACKENDS:
            environment = build_environment(backend, num_storage_nodes=8)
            result = run_atomic_write_job(environment, workload.num_processes,
                                          workload.rank_pairs,
                                          workload.file_size, atomic=True)
            curves[backend][clients] = result.throughput_mib
            atomic_ok = verify_job_atomicity(environment, workload.num_processes,
                                             workload.rank_pairs, result)
            print(f"{backend:15s} {clients:2d} tiles "
                  f"({workload.nr_tiles_x}x{workload.nr_tiles_y}): "
                  f"{result.throughput_mib:8.1f} MiB/s, "
                  f"lock wait {result.lock_wait_time:6.3f} s, "
                  f"MPI atomicity {'OK' if atomic_ok else 'VIOLATED'}")

    print()
    print(format_series(curves, title="MPI-tile-IO aggregated write throughput "
                                      "(simulated MiB/s)"))
    print("\nShape to look for: the versioning backend keeps scaling with the "
          "tile count,\nthe locking baseline serializes on the overlapped "
          "borders and stays flat or degrades.")


if __name__ == "__main__":
    main()
