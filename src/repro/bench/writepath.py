"""Write-pipeline microbenchmark: control RPCs, coalescing, warm read-back.

The read-path suite (:mod:`repro.bench.metadata_path`) measures how cheap
*resolving* a snapshot got; this suite measures how cheap *producing* one
got.  A queued-small-writes workload (checkpoint-style trains of small
vectored writes per client, see
:class:`~repro.workloads.queued_writes.QueuedWritesWorkload`) runs through
three write-path configurations:

* ``baseline`` — the pre-subsystem write path: every write blocks through
  allocate → uploads → ticket → sequential per-shard ``put_nodes`` →
  complete → publication wait;
* ``pipelined`` — one snapshot per write, but the ticket RPC overlaps the
  uploads, the per-shard ``put_nodes`` go out in parallel, completions are
  deferred off the critical path (joined by one barrier), and the writer
  write-through-populates its metadata cache;
* ``pipelined-coalesced`` — additionally queues each client's writes in a
  :class:`~repro.blobseer.writepath.coalescer.WriteCoalescer` and commits
  them as one merged snapshot batch per client.

After the writes, every client reads its span back several times; the first
read measures the write-through-population effect (warm cache with zero
read-side fetches for self-written nodes), the repeats measure the steady
state.  All modes must return byte-identical data — client spans are
disjoint, so the contents are independent of cross-client commit order.

A cache-capacity sweep rides along (ROADMAP: eviction policy sweep): the
same workload runs with LRU-bounded metadata caches of increasing capacity,
recording hit rate and evictions per capacity in the artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import cache_totals, drive_processes
from repro.bench.metrics import WritePathSample
from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import BenchmarkError
from repro.vstore.client import VectoredClient
from repro.workloads.queued_writes import QueuedWritesWorkload

#: client/commit configuration of every benchmarked write-path mode
WRITE_MODES: Dict[str, Dict[str, bool]] = {
    "baseline": {"write_pipelining": False, "write_through_cache": False,
                 "coalesce": False},
    "pipelined": {"write_pipelining": True, "write_through_cache": True,
                  "coalesce": False},
    "pipelined-coalesced": {"write_pipelining": True, "write_through_cache": True,
                            "coalesce": True},
}


@dataclass
class WritePathSettings:
    """Workload and deployment knobs of one benchmark point."""

    num_clients: int = 6
    writes_per_client: int = 6
    regions_per_write: int = 4
    region_size: int = 8 * 1024
    hole_size: int = 1024
    read_repeats: int = 3
    num_providers: int = 4
    num_metadata_providers: int = 2
    chunk_size: int = 16 * 1024
    #: LRU capacities of the cache sweep (``None`` = unbounded reference)
    cache_capacities: Tuple[Optional[int], ...] = (16, 64, 256, None)
    config: ClusterConfig = field(default_factory=ClusterConfig)
    seed: int = 0

    def scaled_down(self) -> "WritePathSettings":
        """Smoke-mode variant for CI: same shape, a fraction of the work."""
        return replace(
            self,
            num_clients=max(2, self.num_clients // 2),
            writes_per_client=max(3, self.writes_per_client // 2),
            regions_per_write=max(2, self.regions_per_write // 2),
            region_size=max(2048, self.region_size // 4),
            hole_size=min(self.hole_size, 512),
            read_repeats=max(2, self.read_repeats - 1),
            num_providers=2,
            chunk_size=max(4096, self.chunk_size // 4),
            cache_capacities=(8, 32, None),
        )

    def workload(self) -> QueuedWritesWorkload:
        """The queued-small-writes workload these settings describe."""
        return QueuedWritesWorkload(
            num_clients=self.num_clients,
            writes_per_client=self.writes_per_client,
            regions_per_write=self.regions_per_write,
            region_size=self.region_size,
            hole_size=self.hole_size,
        )


@dataclass
class WritePathResult:
    """Sample plus the bytes every read returned (for cross-mode equality)."""

    sample: WritePathSample
    read_digest: Tuple[bytes, ...]


#: sentinel: "no per-point capacity override, honour the cluster config"
_NO_CAPACITY_OVERRIDE = object()


def run_write_path_point(mode: str,
                         settings: Optional[WritePathSettings] = None,
                         cache_capacity: object = _NO_CAPACITY_OVERRIDE,
                         ) -> WritePathResult:
    """Run the queued-writes → read-back workload in one write-path mode.

    ``cache_capacity`` (sweep points only) overrides the clients' metadata
    cache capacity — including an explicit ``None`` for forced-unbounded;
    when omitted, the clients follow ``settings.config`` like production
    clients would.
    """
    if mode not in WRITE_MODES:
        raise BenchmarkError(f"unknown mode {mode!r}; choose from {sorted(WRITE_MODES)}")
    settings = settings or WritePathSettings()
    spec = WRITE_MODES[mode]
    coalesce = spec["coalesce"]
    wall_started = time.perf_counter()

    cluster = Cluster(config=settings.config, seed=settings.seed)
    deployment = BlobSeerDeployment(
        cluster,
        num_providers=settings.num_providers,
        num_metadata_providers=settings.num_metadata_providers,
        chunk_size=settings.chunk_size,
        node_prefix="wp",
    )
    workload = settings.workload()
    client_options = {}
    if cache_capacity is not _NO_CAPACITY_OVERRIDE:
        client_options["metadata_cache_capacity"] = cache_capacity
    clients: List[VectoredClient] = [
        VectoredClient(deployment, cluster.add_node(f"wp-client{rank}"),
                       name=f"wp{rank}",
                       write_pipelining=spec["write_pipelining"],
                       write_through_cache=spec["write_through_cache"],
                       **client_options)
        for rank in range(settings.num_clients)
    ]
    blob_id = "wp-blob"

    def drive(processes):
        drive_processes(cluster, processes, name="wp-driver")

    setup = cluster.sim.process(
        clients[0].create_blob(blob_id, workload.file_size), name="wp-setup")
    cluster.sim.run(stop_event=setup)

    # write phase: every client issues its train of small writes; its last
    # committed snapshot version is kept for the read-your-writes read-back
    own_version: Dict[int, int] = {}

    def write_rank(rank):
        client = clients[rank]
        if coalesce:
            # queue the whole train, commit it as one snapshot at the barrier
            for pairs in workload.client_write_vectors(rank):
                yield from client.vwrite_queued(blob_id, pairs)
            receipts = yield from client.vbarrier(blob_id)
            own_version[rank] = receipts[-1].version
        elif spec["write_pipelining"]:
            # one snapshot per write, completions pipelined across writes
            for pairs in workload.client_write_vectors(rank):
                yield from client.vwrite_queued(blob_id, pairs)
                receipts = yield from client.vflush(blob_id)
                own_version[rank] = receipts[-1].version
            yield from client.vbarrier(blob_id)
        else:
            # the pre-subsystem path: fully blocking, wait per write
            for pairs in workload.client_write_vectors(rank):
                receipt = yield from client.vwrite_and_wait(blob_id, pairs)
                own_version[rank] = receipt.version

    write_sim_started = cluster.sim.now
    drive([cluster.sim.process(write_rank(rank), name=f"wp-write{rank}")
           for rank in range(settings.num_clients)])
    sim_write_elapsed = cluster.sim.now - write_sim_started

    # read-back phase: first read measures write-through warmth, the repeats
    # the steady state; all reads return the client's whole span
    read_results: Dict[Tuple[int, int], List[bytes]] = {}

    def read_rank(rank, repeat):
        # read-your-writes: each client reads its span at its own last
        # committed version (spans are disjoint, so the bytes match every
        # mode's final contents regardless of cross-client ticket order)
        pieces = yield from clients[rank].vread(
            blob_id, workload.read_pairs(rank), version=own_version[rank])
        read_results[(rank, repeat)] = pieces

    read_sim_started = cluster.sim.now
    hits_before, misses_before = cache_totals(clients)
    drive([cluster.sim.process(read_rank(rank, 0), name=f"wp-read{rank}.0")
           for rank in range(settings.num_clients)])
    hits_after, misses_after = cache_totals(clients)
    first_hits = hits_after - hits_before
    first_lookups = first_hits + (misses_after - misses_before)

    for repeat in range(1, settings.read_repeats):
        drive([cluster.sim.process(read_rank(rank, repeat),
                                   name=f"wp-read{rank}.{repeat}")
               for rank in range(settings.num_clients)])
    sim_read_elapsed = cluster.sim.now - read_sim_started

    hits, misses = cache_totals(clients)
    evictions = sum(client.metadata_cache.stats.evictions for client in clients
                    if client.metadata_cache is not None)

    sample = WritePathSample(
        mode=mode,
        num_clients=settings.num_clients,
        logical_writes=sum(client.logical_writes for client in clients),
        snapshots=sum(client.writes for client in clients),
        control_rpcs=sum(client.write_control_rpcs for client in clients),
        metadata_put_rpcs=sum(client.metadata_put_rpcs for client in clients),
        cache_primed_nodes=sum(client.cache_primed_nodes for client in clients),
        first_read_cache_hit_rate=(first_hits / first_lookups
                                   if first_lookups else 0.0),
        read_cache_hit_rate=(hits / (hits + misses) if (hits + misses) else 0.0),
        cache_evictions=evictions,
        sim_write_s=sim_write_elapsed,
        sim_read_s=sim_read_elapsed,
        wall_clock_s=time.perf_counter() - wall_started,
        network_model=settings.config.network_model,
    )
    digest = tuple(b"".join(read_results[key]) for key in sorted(read_results))
    return WritePathResult(sample=sample, read_digest=digest)


def run_write_path_suite(settings: Optional[WritePathSettings] = None,
                         modes: Sequence[str] = tuple(WRITE_MODES),
                         ) -> Dict[str, WritePathResult]:
    """Run every requested mode on identical settings (fresh deployment each)."""
    settings = settings or WritePathSettings()
    return {mode: run_write_path_point(mode, settings) for mode in modes}


def run_cache_capacity_sweep(settings: Optional[WritePathSettings] = None,
                             unbounded: Optional[WritePathResult] = None,
                             ) -> List[Dict[str, object]]:
    """Hit rate / evictions vs LRU capacity on the pipelined-coalesced path.

    One row per capacity in ``settings.cache_capacities`` (``None`` =
    unbounded), each measured on a fresh deployment of the same workload.
    Pass the suite's own pipelined-coalesced result as ``unbounded`` to
    reuse it for the unbounded row instead of re-running that point.
    """
    settings = settings or WritePathSettings()
    rows: List[Dict[str, object]] = []
    for capacity in settings.cache_capacities:
        if capacity is None and unbounded is not None:
            result = unbounded
        else:
            result = run_write_path_point("pipelined-coalesced", settings,
                                          cache_capacity=capacity)
        sample = result.sample
        rows.append({
            "mode": "cache-sweep",
            "capacity": capacity if capacity is not None else "unbounded",
            "first_read_cache_hit_rate": sample.first_read_cache_hit_rate,
            "read_cache_hit_rate": sample.read_cache_hit_rate,
            "cache_evictions": sample.cache_evictions,
            "cache_primed_nodes": sample.cache_primed_nodes,
            "wall_clock_s": sample.wall_clock_s,
        })
    return rows
