"""Cooperative cross-node cache microbenchmark: shard RPCs vs node count.

A :class:`~repro.workloads.shared_scan.SharedScanWorkload` on the
``identical`` pattern (every client scans the same section each round —
the shared analysis dump the paper's atomic snapshots feed) runs at a
fixed ``ranks_per_node`` while the number of compute nodes grows:

* ``shared`` — the node-local shared tier alone: each node's first
  toucher fetches every tree node from the authoritative metadata shards,
  so **server-side** shard read RPCs per logical read sit at the
  ``1 / ranks_per_node`` ideal and stay flat as nodes are added (every
  new node re-fetches the same upper tree);
* ``coop`` — the cooperative tier on top: a shared-tier miss first probes
  the extent's custodian peer, so roughly one node fetches each tree node
  *cluster-wide* and per-read shard RPCs keep falling as the node count
  grows — the scaling the node-local tier cannot provide.

The headline counts **server-side** handler invocations
(``deployment.stats()["metadata_read_rpcs"]``), not client issue events:
provider read-throughs fetch from the shards on a prober's behalf, and a
client-side count would miss them.  The seeder publishes with
``shared_metadata_cache=False`` so it never enrolls in the cooperative
directory and the read clients are the tier's only participants.

One extra ``contended`` point reruns the largest coop configuration with
``stagger_s = 0`` — every co-located client misses the same keys in the
same instant, which is what in-flight fetch coalescing exists for; the
perf suite asserts ``coalesced_fetches > 0`` there.

Every point must return byte-identical scan data (the perf suite asserts
it across modes, node counts and network models), and two conservation
checks run on every point: the four-way lookup partition
``private + shared + peer + fetched == lookups`` against the private
tier's own counters, and ``served_hits == peer_hits + peer_rejections``
between the peer services and the clients they answered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import drive_processes
from repro.bench.metrics import CoopCacheSample
from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import BenchmarkError
from repro.vstore.client import VectoredClient
from repro.workloads.shared_scan import SharedScanWorkload

PATH = "/dump"


@dataclass
class CoopCacheSettings:
    """Workload and deployment knobs of the cooperative-cache benchmark."""

    #: compute-node counts swept (clients = nodes * ranks_per_node)
    node_counts: Tuple[int, ...] = (1, 2, 4, 8)
    ranks_per_node: int = 4
    rounds: int = 3
    blocks_per_round: int = 8
    block_size: int = 8 * 1024
    num_providers: int = 4
    num_metadata_providers: int = 2
    chunk_size: int = 8 * 1024
    #: fraction of (node, blob) pairings taking the provider role
    provider_fraction: float = 0.5
    #: simulated seconds between consecutive clients' scan starts
    stagger_s: float = 0.05
    config: ClusterConfig = field(default_factory=ClusterConfig)
    seed: int = 0

    def scaled_down(self) -> "CoopCacheSettings":
        """Smoke-mode variant for CI: same shape, a fraction of the work."""
        return replace(
            self,
            node_counts=(1, 2),
            ranks_per_node=2,
            rounds=2,
            blocks_per_round=4,
            block_size=4096,
            num_providers=2,
            chunk_size=4096,
        )

    def workload(self, num_clients: int) -> SharedScanWorkload:
        """The identical-extent scan for one cluster size."""
        return SharedScanWorkload(
            num_clients=num_clients,
            rounds=self.rounds,
            blocks_per_round=self.blocks_per_round,
            block_size=self.block_size,
            pattern="identical",
        )


@dataclass
class CoopCacheResult:
    """Sample plus the scans' bytes (for cross-mode equality checks)."""

    sample: CoopCacheSample
    read_digest: bytes
    #: client-side tree-walk RPCs per client (placement fairness checks)
    per_client_rpcs: Dict[int, int]
    #: the cooperative directory's own counters (conservation checks)
    coop_stats: Dict[str, int] = field(default_factory=dict)


def run_coop_cache_point(num_nodes: int,
                         cooperative: bool,
                         stagger_s: Optional[float] = None,
                         settings: Optional[CoopCacheSettings] = None,
                         ) -> CoopCacheResult:
    """Run the identical-extent scan once at one cluster size and mode.

    ``cooperative=False`` is the node-local shared-tier baseline (the
    ``1/ranks_per_node`` ideal the cooperative tier must beat);
    ``stagger_s=0`` makes every client start in the same instant (the
    contended configuration that exercises fetch coalescing).
    """
    settings = settings or CoopCacheSettings()
    if stagger_s is None:
        stagger_s = settings.stagger_s
    num_clients = num_nodes * settings.ranks_per_node
    wall_started = time.perf_counter()

    config = settings.config.copy(
        ranks_per_node=settings.ranks_per_node,
        shared_metadata_cache=True,
        cooperative_cache=cooperative,
        coop_provider_fraction=settings.provider_fraction,
    )
    cluster = Cluster(config=config, seed=settings.seed)
    deployment = BlobSeerDeployment(
        cluster,
        num_providers=settings.num_providers,
        num_metadata_providers=settings.num_metadata_providers,
        chunk_size=settings.chunk_size,
        node_prefix="cc",
    )
    workload = settings.workload(num_clients)

    # the dump the scans read: published once, ahead of the clients, by a
    # client outside both cache tiers (so it never joins the directory)
    seeder = VectoredClient(deployment, cluster.add_node("cc-seed"),
                            name="cc-seed", shared_metadata_cache=False)

    def seed():
        yield from seeder.create_blob(PATH, workload.file_size,
                                      chunk_size=settings.chunk_size)
        receipt = yield from seeder.vwrite_and_wait(
            PATH, [(0, workload.expected_contents())])
        return receipt.version

    process = cluster.sim.process(seed(), name="cc-seed")
    cluster.sim.run(stop_event=process)
    pinned = process.value
    # shard reads spent publishing don't belong to the scan being measured
    server_rpcs_seeded = deployment.stats()["metadata_read_rpcs"]

    nodes = cluster.place_ranks("cc-rank", num_clients)
    clients = [
        VectoredClient(deployment, nodes[index], name=f"cc{index}")
        for index in range(num_clients)
    ]

    scans: Dict[Tuple[int, int], List[bytes]] = {}
    read_spans: Dict[int, Tuple[float, float]] = {}

    def read_client(index):
        client = clients[index]
        yield cluster.sim.timeout(index * stagger_s)
        started = cluster.sim.now
        for round_index in range(workload.rounds):
            pairs = workload.read_pairs(index, round_index)
            pieces = yield from client.vread(PATH, pairs, pinned)
            scans[(index, round_index)] = pieces
        read_spans[index] = (started, cluster.sim.now)

    read_started = cluster.sim.now
    drive_processes(
        cluster,
        [cluster.sim.process(read_client(index), name=f"cc-read{index}")
         for index in range(num_clients)],
        name="cc-driver")

    shared_stats = deployment.shared_cache_stats()
    coop_stats = deployment.coop_stats()
    sample = CoopCacheSample(
        mode="coop" if cooperative else "shared",
        num_nodes=num_nodes,
        ranks_per_node=settings.ranks_per_node,
        num_clients=num_clients,
        rounds=workload.rounds,
        logical_reads=num_clients * workload.rounds,
        server_read_rpcs=(deployment.stats()["metadata_read_rpcs"]
                          - server_rpcs_seeded),
        client_metadata_rpcs=sum(client.metadata_read_rpcs
                                 for client in clients),
        probe_rpcs=sum(client.peer_probe_rpcs for client in clients),
        peer_hits=sum(client.peer_cache_hits for client in clients),
        peer_rejections=sum(client.peer_rejections for client in clients),
        probe_misses=sum(client.peer_probe_misses for client in clients),
        read_throughs=coop_stats["read_throughs"],
        unavailable_probes=coop_stats["unavailable_probes"],
        coalesced_fetches=shared_stats["coalesced_fetches"],
        private_hits=sum(client.metadata_cache.stats.hits
                         for client in clients
                         if client.metadata_cache is not None),
        shared_hits=sum(client.shared_cache_hits for client in clients),
        fetched_lookups=sum(client.metadata_lookup_fetches
                            for client in clients),
        sim_read_s=(max(span[1] for span in read_spans.values())
                    - read_started) if read_spans else 0.0,
        wall_clock_s=time.perf_counter() - wall_started,
        network_model=settings.config.network_model,
    )
    _check_conservation(sample, clients, coop_stats, cooperative)
    digest = b"".join(b"".join(scans[key]) for key in sorted(scans))
    return CoopCacheResult(
        sample=sample, read_digest=digest,
        per_client_rpcs={index: client.metadata_read_rpcs
                         for index, client in enumerate(clients)},
        coop_stats=coop_stats)


def _check_conservation(sample: CoopCacheSample, clients,
                        coop_stats: Dict[str, int],
                        cooperative: bool) -> None:
    """Cross-check the point's counters against independent sources.

    The four-way lookup partition must equal the private tier's own
    lookup counters, and — the read clients being the directory's only
    probers — every lookup a peer service served must land on exactly one
    client as either an admitted hit or a watermark rejection.
    """
    private_tier_lookups = sum(client.metadata_cache.stats.lookups
                               for client in clients
                               if client.metadata_cache is not None)
    if private_tier_lookups != sample.lookups:
        raise BenchmarkError(
            f"lookup partition broken: {private_tier_lookups} private-tier "
            f"lookups vs {sample.lookups} partitioned")
    if cooperative:
        accounted = sample.peer_hits + sample.peer_rejections
        if coop_stats["served_hits"] != accounted:
            raise BenchmarkError(
                f"peer tier leaked answers: services served "
                f"{coop_stats['served_hits']} hits but clients account "
                f"for {accounted}")
    elif sample.peer_hits or sample.probe_rpcs or sample.read_throughs:
        raise BenchmarkError(
            "cooperative counters moved with the tier disabled")


def run_coop_cache_suite(settings: Optional[CoopCacheSettings] = None,
                         ) -> Dict[str, CoopCacheResult]:
    """Every benchmark point on identical settings.

    Keys:

    * ``n<nodes>:shared`` / ``n<nodes>:coop`` — the node-count sweep at a
      fixed ``ranks_per_node``, node-local tier alone vs cooperative tier
      on top (the headline comparison);
    * ``contended:coop`` — the largest cooperative point rerun with a
      zero stagger, so fetch coalescing has simultaneous missers to fold.
    """
    settings = settings or CoopCacheSettings()
    results: Dict[str, CoopCacheResult] = {}
    for num_nodes in settings.node_counts:
        results[f"n{num_nodes}:shared"] = run_coop_cache_point(
            num_nodes, cooperative=False, settings=settings)
        results[f"n{num_nodes}:coop"] = run_coop_cache_point(
            num_nodes, cooperative=True, settings=settings)
    results["contended:coop"] = run_coop_cache_point(
        settings.node_counts[-1], cooperative=True, stagger_s=0.0,
        settings=settings)
    return results


def suite_rows(results: Dict[str, CoopCacheResult]
               ) -> List[Dict[str, object]]:
    """The suite's samples as artifact/table rows (insertion order)."""
    rows = []
    for key, result in results.items():
        row = result.sample.as_row()
        row["point"] = key
        rows.append(row)
    return rows
