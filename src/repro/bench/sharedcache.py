"""Node-local shared-cache microbenchmark: RPCs per read vs placement/policy.

A :class:`~repro.workloads.shared_scan.SharedScanWorkload` (independent
clients scanning a pre-published dump) runs with ``ranks_per_node`` clients
packed on each compute node in several cache configurations:

* ``private`` — the per-client baseline: each client owns only its private
  :class:`~repro.blobseer.metadata.cache.MetadataNodeCache`, so co-located
  clients re-fetch identical upper-tree nodes;
* ``shared-<policy>`` — every client additionally attaches to its node's
  :class:`~repro.blobseer.metadata.sharedcache.NodeCacheService`; on the
  ``identical`` pattern only the node's first toucher fetches, so metadata
  RPCs per logical read approach ``1 / ranks_per_node`` of the baseline;
* ``...+prefetch`` — speculative child prefetch rides on the frontier
  fetches (fewer round-trip levels, more nodes on the wire);
* the **policy sweep** re-runs the ``streaming`` pattern under a small
  shared capacity for each eviction policy — the point where the
  level-aware policy's pinned upper levels beat plain LRU.

Clients start staggered (``stagger_s`` of simulated time apart, as
independent analysis processes do): a node's first scan publishes into the
shared tier before its co-tenants look up, which is what the tier exploits —
perfectly simultaneous cold misses would each fetch on their own, exactly
like a real shared cache without request coalescing.

``latest`` is resolved once per client up front (reported separately), so
the per-read metric isolates the segment-tree walk — the cost the shared
tier attacks.  Every configuration must return byte-identical scan data,
which the perf suite asserts, and the lookup partition
``private_hits + shared_hits + fetched_lookups == lookups`` is checked on
every run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import drive_processes
from repro.bench.metrics import SharedCacheSample
from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import BenchmarkError
from repro.vstore.client import VectoredClient
from repro.workloads.shared_scan import SharedScanWorkload

PATH = "/dump"


@dataclass
class SharedCacheSettings:
    """Workload and deployment knobs of the shared-cache benchmark."""

    num_clients: int = 8
    ranks_per_node: int = 4
    rounds: int = 4
    blocks_per_round: int = 8
    block_size: int = 8 * 1024
    num_providers: int = 4
    num_metadata_providers: int = 2
    chunk_size: int = 8 * 1024
    #: capacities tried in the streaming policy sweep (entries per node)
    capacity_sweep: Tuple[int, ...] = (24, 48)
    #: eviction policies compared in the sweep
    policies: Tuple[str, ...] = ("lru", "slru", "level:3")
    #: simulated seconds between consecutive clients' scan starts
    stagger_s: float = 0.05
    config: ClusterConfig = field(default_factory=ClusterConfig)
    seed: int = 0

    def scaled_down(self) -> "SharedCacheSettings":
        """Smoke-mode variant for CI: same shape, a fraction of the work."""
        return replace(
            self,
            num_clients=4,
            ranks_per_node=2,
            rounds=3,
            blocks_per_round=4,
            block_size=4096,
            num_providers=2,
            chunk_size=4096,
            capacity_sweep=(16,),
        )

    def workload(self, pattern: str) -> SharedScanWorkload:
        """The scan workload for one access pattern."""
        return SharedScanWorkload(
            num_clients=self.num_clients,
            rounds=self.rounds,
            blocks_per_round=self.blocks_per_round,
            block_size=self.block_size,
            pattern=pattern,
        )


@dataclass
class SharedCacheResult:
    """Sample plus the scans' bytes (for cross-mode equality checks)."""

    sample: SharedCacheSample
    read_digest: bytes
    #: metadata tree-walk RPCs spent per client (placement fairness checks)
    per_client_rpcs: Dict[int, int]
    #: independently counted tier totals (hit+miss counters of the private
    #: caches and the shared services), so the lookup partition can be
    #: cross-checked against sources the partition itself is not built from
    private_tier_lookups: int = 0
    shared_tier_lookups: int = 0


def run_shared_cache_point(pattern: str,
                           shared: bool,
                           policy: str = "lru",
                           capacity: Optional[int] = None,
                           prefetch: bool = False,
                           private_cache: bool = True,
                           settings: Optional[SharedCacheSettings] = None,
                           ) -> SharedCacheResult:
    """Run the scan workload once in one cache configuration.

    ``shared=False`` is the private baseline; ``private_cache=False`` drops
    the per-client tier too (the configuration the policy sweep uses, so
    eviction behaviour in the *shared* tier is what the numbers measure).
    """
    settings = settings or SharedCacheSettings()
    wall_started = time.perf_counter()

    config = settings.config.copy(
        ranks_per_node=settings.ranks_per_node,
        shared_metadata_cache=shared,
        shared_cache_policy=policy,
        shared_cache_capacity=capacity,
        metadata_prefetch=prefetch,
    )
    cluster = Cluster(config=config, seed=settings.seed)
    deployment = BlobSeerDeployment(
        cluster,
        num_providers=settings.num_providers,
        num_metadata_providers=settings.num_metadata_providers,
        chunk_size=settings.chunk_size,
        node_prefix="sc",
    )
    workload = settings.workload(pattern)

    # the dump the scans read: published once, ahead of the clients
    seeder = VectoredClient(deployment, cluster.add_node("sc-seed"),
                            name="sc-seed", shared_metadata_cache=False)

    def seed():
        yield from seeder.create_blob(PATH, workload.file_size,
                                      chunk_size=settings.chunk_size)
        receipt = yield from seeder.vwrite_and_wait(
            PATH, [(0, workload.expected_contents())])
        return receipt.version

    process = cluster.sim.process(seed(), name="sc-seed")
    cluster.sim.run(stop_event=process)
    pinned = process.value

    # rank->node placement: ranks_per_node clients share each compute node
    nodes = cluster.place_ranks("sc-rank", settings.num_clients)
    clients = [
        VectoredClient(deployment, nodes[index], name=f"sc{index}",
                       enable_metadata_cache=private_cache)
        for index in range(settings.num_clients)
    ]

    scans: Dict[Tuple[int, int], List[bytes]] = {}
    read_spans: Dict[int, Tuple[float, float]] = {}

    def read_client(index):
        client = clients[index]
        # independent processes never start in lockstep; the stagger gives
        # a node's first toucher time to publish into the shared tier
        yield cluster.sim.timeout(index * settings.stagger_s)
        started = cluster.sim.now
        for round_index in range(workload.rounds):
            pairs = workload.read_pairs(index, round_index)
            pieces = yield from client.vread(PATH, pairs, pinned)
            scans[(index, round_index)] = pieces
        read_spans[index] = (started, cluster.sim.now)

    read_started = cluster.sim.now
    drive_processes(
        cluster,
        [cluster.sim.process(read_client(index), name=f"sc-read{index}")
         for index in range(settings.num_clients)],
        name="sc-driver")

    shared_stats = deployment.shared_cache_stats()
    private_tier_lookups = sum(client.metadata_cache.stats.lookups
                               for client in clients
                               if client.metadata_cache is not None)
    shared_tier_lookups = shared_stats["hits"] + shared_stats["misses"]
    sample = SharedCacheSample(
        mode=_mode_name(shared, policy, capacity, prefetch, private_cache),
        pattern=pattern,
        policy=policy if shared else "-",
        capacity=capacity,
        num_clients=settings.num_clients,
        ranks_per_node=settings.ranks_per_node,
        rounds=workload.rounds,
        logical_reads=settings.num_clients * workload.rounds,
        metadata_rpcs=sum(client.metadata_read_rpcs for client in clients),
        latest_rpcs=sum(client.latest_rpcs for client in clients),
        private_hits=sum(client.metadata_cache.stats.hits
                         for client in clients
                         if client.metadata_cache is not None),
        shared_hits=sum(client.shared_cache_hits for client in clients),
        fetched_lookups=sum(client.metadata_lookup_fetches
                            for client in clients),
        shared_evictions=shared_stats["evictions"],
        shared_rejections=(shared_stats["unpublished_rejections"]
                           + shared_stats["capacity_rejections"]),
        prefetched_nodes=sum(client.metadata_prefetched_nodes
                             for client in clients),
        sim_read_s=(max(span[1] for span in read_spans.values())
                    - read_started) if read_spans else 0.0,
        wall_clock_s=time.perf_counter() - wall_started,
        network_model=settings.config.network_model,
    )
    _check_lookup_partition(sample, private_tier_lookups, shared_tier_lookups,
                            private_cache, shared)
    digest = b"".join(b"".join(scans[key]) for key in sorted(scans))
    return SharedCacheResult(
        sample=sample, read_digest=digest,
        per_client_rpcs={index: client.metadata_read_rpcs
                         for index, client in enumerate(clients)},
        private_tier_lookups=private_tier_lookups,
        shared_tier_lookups=shared_tier_lookups)


def _mode_name(shared: bool, policy: str, capacity: Optional[int],
               prefetch: bool, private_cache: bool) -> str:
    if not shared:
        name = "private"
    else:
        name = f"shared-{policy}"
        if capacity is not None:
            name += f"@{capacity}"
        if not private_cache:
            name += "-only"
    if prefetch:
        name += "+prefetch"
    return name


def _check_lookup_partition(sample: SharedCacheSample,
                            private_tier_lookups: int,
                            shared_tier_lookups: int,
                            private_cache: bool, shared: bool) -> None:
    """Every deduplicated lookup is a private hit, a shared hit or a fetch.

    Checked against *independently counted* totals: the private tier's own
    hit+miss counters must equal the partition when a private cache exists,
    and the shared services' hit+miss counters must equal the lookups that
    fell through the private tier (all of them, when it is absent).
    """
    if private_cache and private_tier_lookups != sample.lookups:
        raise BenchmarkError(
            f"lookup partition broken: {private_tier_lookups} private-tier "
            f"lookups vs {sample.lookups} partitioned")
    if shared:
        fell_through = sample.shared_hits + sample.fetched_lookups \
            if private_cache else sample.lookups
        if shared_tier_lookups != fell_through:
            raise BenchmarkError(
                f"lookup partition broken: {shared_tier_lookups} shared-tier "
                f"lookups vs {fell_through} that fell through")


def run_shared_cache_suite(settings: Optional[SharedCacheSettings] = None,
                           ) -> Dict[str, SharedCacheResult]:
    """Every benchmark point on identical settings.

    Keys:

    * ``identical:private`` / ``identical:shared-lru`` /
      ``identical:shared-lru+prefetch`` / ``identical:private+prefetch`` —
      the headline placement comparison (unbounded caches);
    * ``streaming@<capacity>:<policy>`` — the eviction-policy sweep at each
      capacity, shared tier only (no private caches), so eviction behaviour
      in the shared tier is the only variable the points differ in.
    """
    settings = settings or SharedCacheSettings()
    results: Dict[str, SharedCacheResult] = {}

    results["identical:private"] = run_shared_cache_point(
        "identical", shared=False, settings=settings)
    results["identical:shared-lru"] = run_shared_cache_point(
        "identical", shared=True, policy="lru", settings=settings)
    results["identical:private+prefetch"] = run_shared_cache_point(
        "identical", shared=False, prefetch=True, settings=settings)
    results["identical:shared-lru+prefetch"] = run_shared_cache_point(
        "identical", shared=True, policy="lru", prefetch=True,
        settings=settings)

    for capacity in settings.capacity_sweep:
        for policy in settings.policies:
            results[f"streaming@{capacity}:{policy}"] = \
                run_shared_cache_point("streaming", shared=True,
                                       policy=policy, capacity=capacity,
                                       private_cache=False,
                                       settings=settings)
    return results


def suite_rows(results: Dict[str, SharedCacheResult]
               ) -> List[Dict[str, object]]:
    """The suite's samples as artifact/table rows (insertion order)."""
    return [result.sample.as_row() for result in results.values()]
