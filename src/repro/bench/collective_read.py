"""Collective-read microbenchmark: metadata RPCs per read vs aggregation.

A :class:`~repro.workloads.collective_read.CollectiveReadWorkload`
(per-round collective scans of a checkpoint dump's interleaved blocks) runs
as a real MPI job through the versioning ADIO driver in two families of
modes:

* ``independent`` — the per-rank baseline (PR 1): every rank's
  ``read_at_all`` resolves its own regions — one ``latest`` round-trip plus
  its own batched segment-tree walk per rank per round;
* ``collective-r<R>`` — aggregated metadata resolution with ``R``
  resolvers: the group pins one snapshot (a single ``latest`` RPC per
  round, elided entirely once a hint is planted), the resolvers walk the
  union extent once and scatter the data (plus the plan, for cache
  warming) over the compute interconnect — non-resolver ranks touch the
  storage control plane zero times.

After the collective rounds every rank issues one *independent* re-read of
its first-round blocks; with the broadcast plan absorbed and the refreshed
read hint, the collective modes answer it at zero metadata RPCs — the
cache-warming signal the ``post_*`` columns record.

Every point records metadata RPCs per logical read, exchange traffic,
simulated read-phase seconds and host wall-clock into
``BENCH_collective_read.json`` (via ``benchmarks/test_perf_collective_
read.py``); all modes of one rank count must return byte-identical data,
which the perf suite asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bench.metrics import CollectiveReadSample
from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import BenchmarkError
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.obs.digest import digest_columns
from repro.vstore.client import VectoredClient
from repro.workloads.collective_read import CollectiveReadWorkload

PATH = "/scan"


@dataclass
class CollectiveReadSettings:
    """Workload and deployment knobs of the collective-read benchmark."""

    rank_counts: Tuple[int, ...] = (4, 8)
    #: resolver counts tried per rank count (clamped to the rank count;
    #: duplicates after clamping are dropped)
    resolver_counts: Tuple[int, ...] = (1, 2, 4)
    rounds: int = 3
    blocks_per_rank: int = 4
    block_size: int = 8 * 1024
    halo_blocks: int = 1
    #: sparseness of the dump (every k-th block a hole; exercises the
    #: zero-extent elision whose exchange-byte drop the artifact records)
    hole_every: int = 4
    num_providers: int = 4
    num_metadata_providers: int = 2
    chunk_size: int = 16 * 1024
    config: ClusterConfig = field(default_factory=ClusterConfig)
    seed: int = 0

    def scaled_down(self) -> "CollectiveReadSettings":
        """Smoke-mode variant for CI: same shape, a fraction of the work."""
        return replace(
            self,
            rank_counts=(4,),
            resolver_counts=(1, 2),
            rounds=2,
            blocks_per_rank=2,
            block_size=2048,
            num_providers=2,
            chunk_size=4096,
        )

    def workload(self, num_ranks: int) -> CollectiveReadWorkload:
        """The scan workload for one rank count."""
        return CollectiveReadWorkload(
            num_ranks=num_ranks,
            rounds=self.rounds,
            blocks_per_rank=self.blocks_per_rank,
            block_size=self.block_size,
            halo_blocks=self.halo_blocks,
            hole_every=self.hole_every,
        )


@dataclass
class CollectiveReadResult:
    """Sample plus the scans' bytes (for cross-mode equality checks).

    ``per_rank_rpcs`` maps rank -> (metadata RPCs, ``latest`` RPCs) spent
    during the collective phase, so callers can pin the non-resolver-zero
    criterion per rank, not just in aggregate.
    """

    sample: CollectiveReadSample
    read_digest: bytes
    per_rank_rpcs: Dict[int, Tuple[int, int]]


def _mode_name(num_resolvers: Optional[int]) -> str:
    return ("independent" if num_resolvers is None
            else f"collective-r{num_resolvers}")


def run_collective_read_point(num_ranks: int,
                              num_resolvers: Optional[int],
                              settings: Optional[CollectiveReadSettings] = None,
                              ) -> CollectiveReadResult:
    """Run the scan workload once: ``None`` resolvers = baseline."""
    settings = settings or CollectiveReadSettings()
    if num_ranks <= 0:
        raise BenchmarkError("num_ranks must be positive")
    if num_resolvers is not None \
            and not 1 <= num_resolvers <= num_ranks:
        raise BenchmarkError(
            f"resolvers must be in 1..{num_ranks}, got {num_resolvers}")
    wall_started = time.perf_counter()

    # latency digests ride in every point so the artifact carries RPC
    # percentile columns alongside the counter columns
    cluster = Cluster(config=settings.config.copy(latency_digests=True),
                      seed=settings.seed)
    deployment = BlobSeerDeployment(
        cluster,
        num_providers=settings.num_providers,
        num_metadata_providers=settings.num_metadata_providers,
        chunk_size=settings.chunk_size,
        node_prefix="cr",
    )
    workload = settings.workload(num_ranks)

    # the dump the scans read: published once, ahead of the MPI job
    seeder = VectoredClient(deployment, cluster.add_node("cr-seed"),
                            name="cr-seed")

    def seed():
        yield from seeder.create_blob(PATH, workload.file_size,
                                      chunk_size=settings.chunk_size)
        yield from seeder.vwrite_and_wait(PATH, workload.seed_pairs())

    process = cluster.sim.process(seed())
    cluster.sim.run(stop_event=process)

    drivers: Dict[int, VersioningDriver] = {}
    read_spans: Dict[int, Tuple[float, float]] = {}
    post_marks: Dict[int, Tuple[int, int]] = {}
    comms = []

    def rank_main(ctx):
        driver = VersioningDriver(
            deployment, ctx.node, rank_name=f"cr{ctx.rank}",
            write_coalescing=True,
            collective_buffering=num_resolvers is not None,
            collective_reads=num_resolvers is not None,
            collective_aggregators=num_resolvers)
        drivers[ctx.rank] = driver
        if ctx.rank == 0:
            comms.append(ctx.comm)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm,
                                      size_hint=workload.file_size)
        yield from ctx.comm.barrier(ctx.rank)
        started = ctx.sim.now
        scans = []
        for round_index in range(workload.rounds):
            pairs = workload.read_pairs(ctx.rank, round_index)
            blocklengths = [size for _offset, size in pairs]
            displacements = [offset for offset, _size in pairs]
            handle.set_view(0, BYTE,
                            Indexed(blocklengths, displacements, base=BYTE))
            data = yield from handle.read_at_all(0, sum(blocklengths))
            scans.append(data)
        read_spans[ctx.rank] = (started, ctx.sim.now)
        # the cache-warming probe: one independent re-read per rank
        client = driver.client
        post_marks[ctx.rank] = (client.metadata_read_rpcs,
                                client.latest_rpcs)
        handle.set_view(0, BYTE, BYTE)
        first = workload.read_pairs(ctx.rank, 0)[0]
        probe = yield from handle.read_at(first[0], first[1])
        scans.append(probe)
        yield from ctx.comm.barrier(ctx.rank)
        yield from handle.close()
        return scans

    result = run_mpi_job(cluster, num_ranks, rank_main, node_prefix="cr-rank")
    starts = [span[0] for span in read_spans.values()]
    ends = [span[1] for span in read_spans.values()]

    clients = [driver.client for driver in drivers.values()]
    post_metadata = sum(driver.client.metadata_read_rpcs - post_marks[rank][0]
                        for rank, driver in drivers.items())
    post_latest = sum(driver.client.latest_rpcs - post_marks[rank][1]
                      for rank, driver in drivers.items())
    sample = CollectiveReadSample(
        mode=_mode_name(num_resolvers),
        num_ranks=num_ranks,
        num_resolvers=num_resolvers or 0,
        rounds=workload.rounds,
        logical_reads=num_ranks * workload.rounds,
        metadata_rpcs=sum(post_marks[rank][0] for rank in drivers),
        latest_rpcs=sum(post_marks[rank][1] for rank in drivers),
        nodes_fetched=sum(client.metadata_nodes_fetched
                          for client in clients),
        plan_nodes_absorbed=sum(client.plan_nodes_absorbed
                                for client in clients),
        exchange_bytes=sum(driver.reader.stats.bytes_sent
                           for driver in drivers.values()),
        hole_bytes_elided=sum(driver.reader.stats.hole_bytes_elided
                              for driver in drivers.values()),
        collectives_completed=comms[0].collectives_completed,
        post_metadata_rpcs=post_metadata,
        post_latest_rpcs=post_latest,
        sim_read_s=max(ends) - min(starts) if starts else 0.0,
        wall_clock_s=time.perf_counter() - wall_started,
        network_model=settings.config.network_model,
        rpc_latency=digest_columns(cluster.obs.registry),
    )
    digest = b"".join(b"".join(scans) for scans in result.results)
    return CollectiveReadResult(sample=sample, read_digest=digest,
                                per_rank_rpcs=dict(post_marks))


def run_collective_read_suite(settings: Optional[CollectiveReadSettings] = None,
                              ) -> Dict[str, CollectiveReadResult]:
    """Every (rank count, mode) point on identical settings.

    Keys are ``"N<ranks>:<mode>"``; each rank count gets the independent
    baseline plus one collective point per distinct clamped resolver count.
    """
    settings = settings or CollectiveReadSettings()
    results: Dict[str, CollectiveReadResult] = {}
    for num_ranks in settings.rank_counts:
        results[f"N{num_ranks}:independent"] = run_collective_read_point(
            num_ranks, None, settings)
        seen = set()
        for count in settings.resolver_counts:
            clamped = min(count, num_ranks)
            if clamped in seen:
                continue
            seen.add(clamped)
            results[f"N{num_ranks}:{_mode_name(clamped)}"] = \
                run_collective_read_point(num_ranks, clamped, settings)
    return results


def suite_rows(results: Dict[str, CollectiveReadResult]
               ) -> List[Dict[str, object]]:
    """The suite's samples as artifact/table rows (insertion order)."""
    return [result.sample.as_row() for result in results.values()]
