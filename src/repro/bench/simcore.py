"""Simulator-core benchmark: engine throughput and end-to-end speedup.

Three kinds of measurement feed ``BENCH_simcore.json``:

* **collective I/O points** — the fine-grained interleaved collective
  checkpoint (every rank writes ``blocks_per_rank`` blocks of
  ``block_size`` bytes at stride ``num_ranks * block_size``, then reads its
  slice back ``read_rounds`` times through ``read_at_all``), the workload on
  which the seed tree spent almost all of its host time.  Each point records
  wall-clock seconds, processed simulator events, events/sec and a SHA-256
  digest of the final file contents (the cross-``network_model``
  byte-identity witness).
* **scheduler churn** — a pure engine microbenchmark (no storage stack):
  a pool of actors sleeping on pseudorandom timeouts, run under both queue
  backends, isolating calendar-vs-heapq throughput.
* **scale points** — larger rank counts under the queued network model,
  including the 4096-rank smoke point the acceptance criteria ask for.

The headline speedup compares the current tree against the growth seed
(commit ``0473493``).  The seed's event machinery cannot be re-created
in-tree (``engine="legacy"``/``scheduler="heapq"`` swaps the engine but
shares today's optimized domain code), so the suite carries a *pinned*
seed measurement with provenance; set ``REPRO_BENCH_SEED_SRC`` to a
checkout of the seed's ``src`` directory to re-measure it live on the
current host instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.obs.critpath import operation_report
from repro.obs.digest import digest_columns
from repro.obs.export import dump_chrome_trace
from repro.obs.views import collect_all
from repro.simengine.simulator import Simulator
from repro.vstore.client import VectoredClient

PATH = "/simcore"

#: Pinned measurement of the growth seed (commit 0473493) on the headline
#: workload, taken with a git worktree of that commit on the same host,
#: python and methodology (min of interleaved runs) as the current-tree
#: number it was compared against (1.76 s, i.e. ~15x).  ``processed_events``
#: differs from the current tree because the seed's bottleneck network and
#: dense exchanges schedule a different (smaller) event population — the
#: workload results are byte-identical.
SEED_REFERENCE: Dict[str, object] = {
    "commit": "0473493",
    "workload": ("collective_io num_ranks=64 blocks_per_rank=256 "
                 "block_size=1024 read_rounds=3 num_aggregators=16"),
    "wall_clock_s": 27.94,
    "processed_events": 10456,
    "method": ("min of 2 interleaved runs, git worktree of the seed commit, "
               "same host/python as the current-tree measurement"),
}

#: Workload shape the pinned reference was measured on.  ``speedup_vs_seed``
#: is only reported when the suite's headline point matches this shape.
_REFERENCE_SHAPE = (64, 256, 1024, 3, 16)


@dataclass
class SimcoreSettings:
    """Workload and deployment knobs of the simulator-core benchmark."""

    num_ranks: int = 64
    blocks_per_rank: int = 256
    block_size: int = 1024
    read_rounds: int = 3
    num_aggregators: int = 16
    num_providers: int = 8
    num_metadata_providers: int = 2
    chunk_size: int = 16 * 1024
    seed: int = 0
    #: event count of the scheduler-churn microbenchmark (per backend)
    churn_events: int = 200_000
    #: larger points run under ``network_model="queued"``:
    #: (num_ranks, blocks_per_rank, block_size, read_rounds)
    scale_points: Tuple[Tuple[int, int, int, int], ...] = ((512, 16, 4096, 1),)
    #: the completion smoke point (write-only at the largest rank count)
    smoke_point: Optional[Tuple[int, int, int, int]] = (4096, 1, 4096, 0)
    #: also run the headline point on the in-tree legacy engine + heapq
    compare_legacy: bool = True

    def scaled_down(self) -> "SimcoreSettings":
        """Smoke-mode variant for CI: same shapes, a fraction of the work."""
        return replace(
            self,
            num_ranks=16,
            blocks_per_rank=16,
            read_rounds=1,
            num_aggregators=4,
            num_providers=4,
            churn_events=20_000,
            scale_points=((64, 4, 2048, 1),),
            smoke_point=(128, 1, 2048, 0),
        )


# ----------------------------------------------------------------------
# collective I/O point
# ----------------------------------------------------------------------
def run_collective_io_point(num_ranks: int, blocks_per_rank: int,
                            block_size: int, read_rounds: int,
                            num_aggregators: int, config: ClusterConfig,
                            num_providers: int = 8,
                            num_metadata_providers: int = 2,
                            chunk_size: int = 16 * 1024,
                            seed: int = 0,
                            trace_path: Optional[str] = None,
                            flight_path: Optional[str] = None,
                            critpath_path: Optional[str] = None,
                            ) -> Dict[str, object]:
    """Run one interleaved collective write/read point; return its row.

    Every rank owns ``blocks_per_rank`` blocks of ``block_size`` bytes at
    stride ``num_ranks * block_size`` (fully interleaved), writes them with
    one ``write_at_all``, syncs, then performs ``read_rounds`` collective
    reads of its slice — each asserted against the written payload.  The
    row's ``read_digest`` hashes the final file contents read back by an
    independent client, so two runs moved the same bytes iff their digests
    match (regardless of ``network_model`` or scheduler).

    The row's ``metrics`` embeds the unified registry snapshot (collected
    *after* the run — pull-based, so it never perturbs the measurement)
    with every partition identity re-asserted.  ``trace_path`` dumps the
    run's Chrome trace and ``critpath_path`` its per-operation
    critical-path layer breakdown when ``config.tracing`` is on;
    ``flight_path`` dumps the flight-recorder ring (available whenever
    the recorder is enabled, tracing or not).
    """
    stride = num_ranks * block_size
    file_size = blocks_per_rank * stride
    cluster = Cluster(config=config, seed=seed)
    deployment = BlobSeerDeployment(
        cluster, num_providers=num_providers,
        num_metadata_providers=num_metadata_providers,
        chunk_size=chunk_size, node_prefix="sc")
    drivers: List[VersioningDriver] = []
    comms: List[object] = []

    def rank_main(ctx):
        driver = VersioningDriver(
            deployment, ctx.node, rank_name=f"sc{ctx.rank}",
            write_coalescing=True, collective_buffering=True,
            collective_aggregators=num_aggregators)
        drivers.append(driver)
        if ctx.rank == 0:
            comms.append(ctx.comm)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm, size_hint=file_size)
        displacements = [index * stride + ctx.rank * block_size
                         for index in range(blocks_per_rank)]
        handle.set_view(0, BYTE, Indexed([block_size] * blocks_per_rank,
                                         displacements, base=BYTE))
        payload = bytes([(ctx.rank + 1) % 251]) * (blocks_per_rank * block_size)
        yield from handle.write_at_all(0, payload)
        yield from handle.sync()
        for _ in range(read_rounds):
            data = yield from handle.read_at_all(0, blocks_per_rank * block_size)
            if data != payload:
                raise AssertionError(
                    f"rank {ctx.rank}: collective read returned wrong bytes")
        yield from handle.close()

    wall_started = time.perf_counter()
    run_mpi_job(cluster, num_ranks, rank_main, node_prefix="sc-rank")
    wall = time.perf_counter() - wall_started

    verifier = VectoredClient(deployment, cluster.add_node("sc-verify"),
                              name="sc-verify")

    def read_back():
        pieces = yield from verifier.vread(PATH, [(0, file_size)])
        return pieces[0]

    process = cluster.sim.process(read_back())
    content = cluster.sim.run(stop_event=process)

    # pull the scattered stats surfaces into the unified registry and
    # re-assert the partition identities on this run's values.  The
    # verifier client is included, so the collected client set is complete.
    registry = collect_all(
        cluster.obs.registry, cluster=cluster, deployment=deployment,
        clients=[driver.client for driver in drivers] + [verifier],
        drivers=drivers, comms=comms, complete_clients=True)
    registry.assert_identities()

    if trace_path and cluster.obs.tracing:
        dump_chrome_trace(cluster.obs.tracer, trace_path,
                          telemetry=cluster.obs.link_telemetry)
    if flight_path and cluster.obs.flight is not None:
        cluster.obs.flight.dump(flight_path)

    events = cluster.sim.processed_events
    row: Dict[str, object] = {
        "kind": "collective_io",
        "num_ranks": num_ranks,
        "blocks_per_rank": blocks_per_rank,
        "block_size": block_size,
        "read_rounds": read_rounds,
        "num_aggregators": num_aggregators,
        "network_model": config.network_model,
        "engine": config.engine,
        "scheduler": config.scheduler or ("heapq" if config.engine == "legacy"
                                          else "calendar"),
        "wall_clock_s": round(wall, 3),
        "sim_elapsed_s": round(cluster.sim.now, 6),
        "processed_events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "read_digest": hashlib.sha256(content).hexdigest(),
        "tracing": config.tracing,
        "metrics": registry.snapshot(),
    }
    if config.latency_digests:
        # promoted percentile columns (the full digest catalog is in
        # ``metrics``): RPC round-trip latency of the whole run
        row.update(digest_columns(registry))
    if cluster.obs.tracing:
        report = operation_report(cluster.obs.tracer)
        row["critpath"] = report
        if critpath_path:
            with open(critpath_path, "w") as handle:
                json.dump(report, handle, indent=1, sort_keys=True)
                handle.write("\n")
    return row


# ----------------------------------------------------------------------
# scheduler churn microbenchmark
# ----------------------------------------------------------------------
def run_scheduler_churn(backend: str, num_events: int = 200_000,
                        num_actors: int = 64, seed: int = 0) -> Dict[str, object]:
    """Measure raw queue throughput of one scheduler backend.

    ``num_actors`` concurrent actors sleep on pseudorandom sub-millisecond
    timeouts until ``num_events`` sleeps completed.  Seven out of eight
    delays are zero — the simulator's real event mix, where almost every
    event is an ``Event.succeed`` firing at the current instant and only
    I/O/network completions jump ahead.  The delays come from a named
    deterministic stream, so both backends process the identical schedule;
    on this simulator the two stay within noise of each other (the fast
    engine keeps pending populations in the hundreds, where CPython's
    C-implemented heap is already cheap), which the suite records rather
    than hides.
    """
    sim = Simulator(seed=seed, scheduler=backend)
    delays = sim.rng.stream("bench:churn").uniform(0.0, 1e-3, size=num_events)
    mask = [index for index in range(num_events) if index % 8]
    delays[mask] = 0.0
    share = num_events // num_actors

    def actor(start: int) -> object:
        for index in range(start, start + share):
            yield sim.timeout(float(delays[index]))

    for actor_index in range(num_actors):
        sim.process(actor(actor_index * share))
    wall_started = time.perf_counter()
    sim.run_all()
    wall = time.perf_counter() - wall_started

    return {
        "kind": "scheduler_churn",
        "scheduler": backend,
        "num_actors": num_actors,
        "processed_events": sim.processed_events,
        "wall_clock_s": round(wall, 3),
        "events_per_sec": round(sim.processed_events / wall) if wall > 0 else 0,
    }


# ----------------------------------------------------------------------
# seed reference (pinned or live)
# ----------------------------------------------------------------------
_SEED_SCRIPT = r"""
import json, sys, time
from repro.cluster.cluster import Cluster
from repro.blobseer.deployment import BlobSeerDeployment
from repro.mpiio.file import File
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpi.launcher import run_mpi_job
from repro.mpi.datatypes import BYTE, Indexed

ranks, blocks, bsize, rounds, agg = (int(arg) for arg in sys.argv[1:6])
stride = ranks * bsize
file_size = blocks * stride
cluster = Cluster(seed=0)
deployment = BlobSeerDeployment(cluster, num_providers=8,
                                num_metadata_providers=2, chunk_size=16 * 1024,
                                node_prefix="sc")

def rank_main(ctx):
    driver = VersioningDriver(deployment, ctx.node, rank_name=f"sc{ctx.rank}",
                              write_coalescing=True, collective_buffering=True,
                              collective_aggregators=agg)
    handle = yield from File.open(driver, "/simcore", rank=ctx.rank,
                                  comm=ctx.comm, size_hint=file_size)
    displacements = [index * stride + ctx.rank * bsize for index in range(blocks)]
    handle.set_view(0, BYTE, Indexed([bsize] * blocks, displacements, base=BYTE))
    payload = bytes([(ctx.rank + 1) % 251]) * (blocks * bsize)
    yield from handle.write_at_all(0, payload)
    yield from handle.sync()
    for _ in range(rounds):
        data = yield from handle.read_at_all(0, blocks * bsize)
        assert data == payload
    yield from handle.close()

started = time.perf_counter()
run_mpi_job(cluster, ranks, rank_main, node_prefix="sc-rank")
print(json.dumps({"wall_clock_s": round(time.perf_counter() - started, 3),
                  "processed_events": cluster.sim.processed_events}))
"""


def measure_seed_reference(settings: SimcoreSettings) -> Optional[Dict[str, object]]:
    """Re-measure the seed on this host, if ``REPRO_BENCH_SEED_SRC`` is set.

    The variable must point at the ``src`` directory of a checkout of the
    seed commit (e.g. a git worktree).  Returns the live measurement row, or
    ``None`` when the variable is unset (callers fall back to the pinned
    :data:`SEED_REFERENCE`).
    """
    seed_src = os.environ.get("REPRO_BENCH_SEED_SRC")
    if not seed_src:
        return None
    env = dict(os.environ, PYTHONPATH=seed_src)
    result = subprocess.run(
        [sys.executable, "-c", _SEED_SCRIPT,
         str(settings.num_ranks), str(settings.blocks_per_rank),
         str(settings.block_size), str(settings.read_rounds),
         str(settings.num_aggregators)],
        env=env, capture_output=True, text=True, check=True)
    return json.loads(result.stdout.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# suite
# ----------------------------------------------------------------------
def run_simcore_suite(settings: SimcoreSettings) -> Dict[str, object]:
    """Run every simulator-core point; return rows plus derived metrics."""
    rows: List[Dict[str, object]] = []
    point_kwargs = dict(
        blocks_per_rank=settings.blocks_per_rank,
        block_size=settings.block_size,
        read_rounds=settings.read_rounds,
        num_aggregators=settings.num_aggregators,
        num_providers=settings.num_providers,
        num_metadata_providers=settings.num_metadata_providers,
        chunk_size=settings.chunk_size,
        seed=settings.seed,
    )

    # latency digests ride in *both* the headline and its traced twin so
    # the tracing invariant keeps comparing identical metric sets
    headline = run_collective_io_point(
        settings.num_ranks, config=ClusterConfig(latency_digests=True),
        **point_kwargs)
    headline["label"] = "headline"
    rows.append(headline)

    traced = run_collective_io_point(
        settings.num_ranks,
        config=ClusterConfig(tracing=True, latency_digests=True),
        **point_kwargs)
    traced["label"] = "headline-traced"
    rows.append(traced)

    queued = run_collective_io_point(
        settings.num_ranks,
        config=ClusterConfig(network_model="queued", latency_digests=True),
        **point_kwargs)
    queued["label"] = "headline-queued"
    rows.append(queued)

    if settings.compare_legacy:
        legacy = run_collective_io_point(
            settings.num_ranks,
            config=ClusterConfig(engine="legacy", scheduler="heapq",
                                 latency_digests=True),
            **point_kwargs)
        legacy["label"] = "headline-legacy-heapq"
        rows.append(legacy)

    for backend in ("calendar", "heapq"):
        churn = run_scheduler_churn(backend, settings.churn_events,
                                    seed=settings.seed)
        churn["label"] = f"churn-{backend}"
        rows.append(churn)

    scale_shapes = list(settings.scale_points)
    if settings.smoke_point is not None:
        scale_shapes.append(settings.smoke_point)
    for ranks, blocks, bsize, rounds in scale_shapes:
        point = run_collective_io_point(
            ranks, blocks, bsize, rounds,
            num_aggregators=max(1, ranks // 4),
            config=ClusterConfig(network_model="queued",
                                 latency_digests=True),
            num_providers=settings.num_providers,
            num_metadata_providers=settings.num_metadata_providers,
            chunk_size=settings.chunk_size, seed=settings.seed)
        point["label"] = f"scale-{ranks}"
        rows.append(point)

    shape = (settings.num_ranks, settings.blocks_per_rank,
             settings.block_size, settings.read_rounds,
             settings.num_aggregators)
    live = measure_seed_reference(settings)
    seed_wall = float((live or SEED_REFERENCE)["wall_clock_s"])
    comparable = shape == _REFERENCE_SHAPE or live is not None
    speedup = (round(seed_wall / headline["wall_clock_s"], 2)
               if comparable and headline["wall_clock_s"] > 0 else None)

    overhead = (round((traced["wall_clock_s"] - headline["wall_clock_s"])
                      / headline["wall_clock_s"] * 100, 1)
                if headline["wall_clock_s"] > 0 else None)
    return {
        "rows": rows,
        "seed_reference": {
            **SEED_REFERENCE,
            "source": "live" if live else "pinned",
            "wall_clock_s_used": seed_wall,
        },
        "speedup_vs_seed": speedup,
        "digests_identical_across_network_models":
            headline["read_digest"] == queued["read_digest"],
        # tracing must not perturb the simulation: the traced headline
        # replays the identical timeline, event count, bytes and metrics
        "tracing_overhead_pct": overhead,
        "tracing_invariant": (
            traced["read_digest"] == headline["read_digest"]
            and traced["sim_elapsed_s"] == headline["sim_elapsed_s"]
            and traced["processed_events"] == headline["processed_events"]
            and traced["metrics"] == headline["metrics"]),
    }
