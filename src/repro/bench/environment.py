"""Experiment environments: one cluster + one storage backend + ADIO drivers.

The experiments always compare *storage back-ends behind the same MPI-I/O
layer*, exactly as the paper plugs both its prototype and Lustre into ROMIO
through their ADIO modules.  ``build_environment`` hides the differences:

* ``versioning`` — a BlobSeer deployment plus the paper's vectored extension,
  accessed through :class:`~repro.mpiio.adio.versioning.VersioningDriver`;
* ``posix-locking`` / ``posix-listlock`` / ``conflict-detect`` / ``nolock`` —
  the Lustre-like deployment accessed through the corresponding locking (or
  deliberately non-atomic) driver.

Both backends get the same number of storage nodes, the same striping unit
and the same cluster hardware parameters, so throughput differences come
from the concurrency-control design, not from the resources handed to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import BenchmarkError
from repro.mpi.launcher import MPIContext
from repro.mpiio.adio.base import ADIODriver
from repro.mpiio.adio.conflict_detect import ConflictDetectDriver
from repro.mpiio.adio.nolock import NoLockDriver
from repro.mpiio.adio.posix_listlock import PosixListLockDriver
from repro.mpiio.adio.posix_locking import PosixLockingDriver
from repro.mpiio.adio.versioning import VersioningDriver
from repro.posixfs.deployment import PosixFsDeployment

#: driver names that run on the Lustre-like POSIX backend
POSIX_BACKENDS = {
    "posix-locking": PosixLockingDriver,
    "posix-listlock": PosixListLockDriver,
    "conflict-detect": ConflictDetectDriver,
    "nolock": NoLockDriver,
}

#: all backend names accepted by :func:`build_environment`
BACKENDS = ("versioning",) + tuple(POSIX_BACKENDS)


@dataclass
class ExperimentEnvironment:
    """Everything a benchmark run needs to start MPI ranks against a backend."""

    backend: str
    cluster: Cluster
    deployment: object
    driver_factory: Callable[[MPIContext], ADIODriver]
    stripe_unit: int
    num_storage_nodes: int

    def storage_stats(self) -> dict:
        """Backend statistics (chunks/objects, locks, publication counters)."""
        return self.deployment.stats()


def build_environment(backend: str,
                      num_storage_nodes: int = 8,
                      stripe_unit: int = 64 * 1024,
                      num_metadata_providers: int = 2,
                      allocation: str = "round_robin",
                      publish_cost: float = 0.0,
                      config: Optional[ClusterConfig] = None,
                      seed: int = 0) -> ExperimentEnvironment:
    """Create the cluster, deploy the chosen backend, return driver factory."""
    if backend not in BACKENDS:
        raise BenchmarkError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}")

    cluster = Cluster(config=config, seed=seed)

    if backend == "versioning":
        deployment = BlobSeerDeployment(
            cluster,
            num_providers=num_storage_nodes,
            num_metadata_providers=num_metadata_providers,
            chunk_size=stripe_unit,
            allocation=allocation,
            publish_cost=publish_cost,
        )

        def driver_factory(ctx: MPIContext) -> ADIODriver:
            return VersioningDriver(deployment, ctx.node,
                                    rank_name=f"rank{ctx.rank}")
    else:
        deployment = PosixFsDeployment(
            cluster,
            num_osts=num_storage_nodes,
            default_stripe_size=stripe_unit,
            default_stripe_count=num_storage_nodes,
        )
        driver_class = POSIX_BACKENDS[backend]

        def driver_factory(ctx: MPIContext) -> ADIODriver:
            return driver_class(deployment, ctx.node,
                                rank_name=f"rank{ctx.rank}")

    return ExperimentEnvironment(
        backend=backend,
        cluster=cluster,
        deployment=deployment,
        driver_factory=driver_factory,
        stripe_unit=stripe_unit,
        num_storage_nodes=num_storage_nodes,
    )
