"""Metadata read-path microbenchmark: RPC counts, cache hit rate, wall clock.

The paper's argument only holds while metadata overhead stays small (the ABL3
ablation measures exactly that), so this module benchmarks the segment-tree
*read* hot path in isolation: an EXP1-style set of clients writes overlapped
non-contiguous regions, then every client reads its regions back several
times from the published snapshots.  The same harness runs three client
configurations:

* ``baseline`` — no cache, one ``get_node`` RPC per tree node (the read path
  before this subsystem existed);
* ``batched`` — no cache, one batched ``get_nodes`` RPC per metadata shard
  per tree level;
* ``cached-batched`` — batching plus the client-side immutable-node cache
  (the default production path; repeat reads are warm).

Every run yields a :class:`~repro.bench.metrics.MetadataPathSample` whose
rows land in ``BENCH_metadata.json`` so successive PRs accumulate a perf
trajectory.  A region-algebra microbenchmark (pure wall clock, no simulation)
rides along because ``RegionList`` ops sit under every read-frontier entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import cache_totals, drive_processes
from repro.bench.metrics import MetadataPathSample
from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.core.regions import Region, RegionList
from repro.errors import BenchmarkError
from repro.vstore.client import VectoredClient
from repro.workloads.overlap_stress import OverlapStressWorkload

#: client options of every benchmarked metadata read-path configuration.
#: ``write_through_cache`` is pinned off: this suite isolates the *read*
#: path, so the write phase must not pre-warm the caches (the write-pipeline
#: suite measures that effect separately).
MODES: Dict[str, Dict[str, bool]] = {
    "baseline": {"enable_metadata_cache": False, "metadata_batching": False,
                 "write_through_cache": False},
    "batched": {"enable_metadata_cache": False, "metadata_batching": True,
                "write_through_cache": False},
    "cached-batched": {"enable_metadata_cache": True, "metadata_batching": True,
                       "write_through_cache": False},
}


@dataclass
class MetadataPathSettings:
    """Workload and deployment knobs of one benchmark point."""

    num_clients: int = 8
    regions_per_client: int = 8
    region_size: int = 16 * 1024
    overlap_fraction: float = 0.5
    read_repeats: int = 5
    num_providers: int = 4
    num_metadata_providers: int = 2
    chunk_size: int = 4 * 1024
    config: ClusterConfig = field(default_factory=ClusterConfig)
    seed: int = 0

    def scaled_down(self) -> "MetadataPathSettings":
        """Smoke-mode variant for CI: same shape, a fraction of the work."""
        return MetadataPathSettings(
            num_clients=max(2, self.num_clients // 2),
            regions_per_client=max(2, self.regions_per_client // 2),
            region_size=max(2048, self.region_size // 4),
            overlap_fraction=self.overlap_fraction,
            read_repeats=max(3, self.read_repeats - 2),
            num_providers=2,
            num_metadata_providers=self.num_metadata_providers,
            chunk_size=max(1024, self.chunk_size // 2),
            config=self.config,
            seed=self.seed,
        )


@dataclass
class MetadataPathResult:
    """Sample plus the bytes every read returned (for cross-mode equality)."""

    sample: MetadataPathSample
    read_digest: Tuple[bytes, ...]


def run_metadata_path_point(mode: str,
                            settings: Optional[MetadataPathSettings] = None,
                            ) -> MetadataPathResult:
    """Run the overlapped write → repeated read workload in one client mode."""
    if mode not in MODES:
        raise BenchmarkError(f"unknown mode {mode!r}; choose from {sorted(MODES)}")
    settings = settings or MetadataPathSettings()
    options = MODES[mode]
    wall_started = time.perf_counter()

    cluster = Cluster(config=settings.config, seed=settings.seed)
    deployment = BlobSeerDeployment(
        cluster,
        num_providers=settings.num_providers,
        num_metadata_providers=settings.num_metadata_providers,
        chunk_size=settings.chunk_size,
        node_prefix="perf",
    )
    workload = OverlapStressWorkload(
        num_clients=settings.num_clients,
        regions_per_client=settings.regions_per_client,
        region_size=settings.region_size,
        overlap_fraction=settings.overlap_fraction,
    )
    clients: List[VectoredClient] = [
        VectoredClient(deployment, cluster.add_node(f"perf-client{rank}"),
                       name=f"perf{rank}", **options)
        for rank in range(settings.num_clients)
    ]
    blob_id = "perf-blob"

    def drive(processes):
        drive_processes(cluster, processes, name="perf-driver")

    # setup: create the BLOB once
    setup = cluster.sim.process(
        clients[0].create_blob(blob_id, workload.file_size), name="perf-setup")
    cluster.sim.run(stop_event=setup)

    # write phase: every client writes its overlapped vector concurrently
    def write_rank(rank):
        receipt = yield from clients[rank].vwrite_and_wait(
            blob_id, list(workload.client_pairs(rank)))
        return receipt

    drive([cluster.sim.process(write_rank(rank), name=f"perf-write{rank}")
           for rank in range(settings.num_clients)])

    # read phase: every client re-reads its regions from the latest snapshot
    read_results: Dict[Tuple[int, int], List[bytes]] = {}

    def read_rank(rank):
        access = [(offset, len(payload))
                  for offset, payload in workload.client_pairs(rank)]
        for repeat in range(settings.read_repeats):
            pieces = yield from clients[rank].vread(blob_id, access)
            read_results[(rank, repeat)] = pieces

    read_sim_started = cluster.sim.now
    drive([cluster.sim.process(read_rank(rank), name=f"perf-read{rank}")
           for rank in range(settings.num_clients)])
    sim_elapsed = cluster.sim.now - read_sim_started

    cache_hits, cache_misses = cache_totals(clients)

    sample = MetadataPathSample(
        mode=mode,
        num_clients=settings.num_clients,
        reads=settings.num_clients * settings.read_repeats,
        metadata_rpcs=sum(client.metadata_read_rpcs for client in clients),
        nodes_fetched=sum(client.metadata_nodes_fetched for client in clients),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        sim_elapsed_s=sim_elapsed,
        wall_clock_s=time.perf_counter() - wall_started,
        network_model=settings.config.network_model,
    )
    digest = tuple(b"".join(read_results[key])
                   for key in sorted(read_results))
    return MetadataPathResult(sample=sample, read_digest=digest)


def run_metadata_path_suite(settings: Optional[MetadataPathSettings] = None,
                            modes: Sequence[str] = tuple(MODES),
                            ) -> Dict[str, MetadataPathResult]:
    """Run every requested mode on identical settings (fresh deployment each)."""
    settings = settings or MetadataPathSettings()
    return {mode: run_metadata_path_point(mode, settings) for mode in modes}


# ----------------------------------------------------------------------
# region-algebra microbenchmark (pure wall clock)
# ----------------------------------------------------------------------
def run_region_algebra_microbench(num_regions: int = 400,
                                  rounds: int = 30,
                                  seed: int = 0) -> Dict[str, object]:
    """Time subtract/union/intersection over pseudo-random fragmented runs.

    Deterministic (seeded LCG offsets) so successive PRs can compare the
    wall-clock column of ``BENCH_metadata.json`` like-for-like.
    """
    state = seed or 1
    def next_value(bound):
        nonlocal state
        state = (state * 1103515245 + 12345) % (1 << 31)
        return state % bound

    span = num_regions * 64
    a = RegionList([Region(next_value(span), 1 + next_value(48))
                    for _ in range(num_regions)])
    b = RegionList([Region(next_value(span), 1 + next_value(48))
                    for _ in range(num_regions)])

    started = time.perf_counter()
    checksum = 0
    for _ in range(rounds):
        # fresh instances so normalization is re-done each round (the memo
        # would otherwise hide the cost being measured)
        left = RegionList(a.regions)
        right = RegionList(b.regions)
        checksum += left.subtract(right).covered_bytes()
        checksum += left.union(right).covered_bytes()
        checksum += left.intersection(right).covered_bytes()
    elapsed = time.perf_counter() - started
    return {
        "mode": "region-algebra",
        "regions": num_regions,
        "rounds": rounds,
        "ops": rounds * 3,
        "wall_clock_s": elapsed,
        "wall_clock_us_per_op": elapsed / (rounds * 3) * 1e6,
        "checksum": checksum,
    }
