"""Benchmark harness: experiment environments, runners, metrics and reports.

The harness regenerates every result of the paper's evaluation section (and
the ablations listed in DESIGN.md).  It is organized as:

* :mod:`repro.bench.environment` — build a simulated cluster plus one storage
  backend (versioning or Lustre-like) and the matching ADIO driver factory;
* :mod:`repro.bench.harness` — run one MPI-I/O job (every rank writes its
  vector in atomic mode) and measure the aggregated throughput;
* :mod:`repro.bench.experiments` — the experiment definitions (EXP1, EXP1b,
  EXP2, EXP3, ABL1-3, FUT1): parameter sweeps returning result tables;
* :mod:`repro.bench.metrics` / :mod:`repro.bench.reporting` — result records
  and text tables matching the rows/series the paper reports.
"""

from repro.bench.environment import ExperimentEnvironment, build_environment
from repro.bench.harness import RunResult, run_atomic_write_job, verify_job_atomicity
from repro.bench.metrics import ThroughputSample, speedup
from repro.bench.reporting import format_table

__all__ = [
    "ExperimentEnvironment",
    "build_environment",
    "RunResult",
    "run_atomic_write_job",
    "verify_job_atomicity",
    "ThroughputSample",
    "speedup",
    "format_table",
]
