"""``python -m repro.bench`` — run the experiment harness from the shell."""

from repro.bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
