"""Run one MPI-I/O job against one backend and measure aggregated throughput.

A job follows the structure of both of the paper's experiments:

1. every rank opens the shared file collectively and enables atomic mode;
2. a barrier aligns all ranks (the measurement starts here);
3. every rank writes its own (non-contiguous, possibly overlapping) access in
   a single MPI-I/O call;
4. a final barrier ends the measurement.

Aggregated throughput = (application bytes written by all ranks) / (time
between the two barriers), the metric the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.environment import ExperimentEnvironment
from repro.bench.metrics import ThroughputSample
from repro.core.atomicity import VectoredWrite, check_mpi_atomicity
from repro.core.listio import IOVector
from repro.errors import BenchmarkError
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import MPIContext, run_mpi_job
from repro.mpiio.file import AccessMode, File

#: a per-rank workload: rank index -> list of (file offset, payload) pairs
PairsForRank = Callable[[int], Sequence[Tuple[int, bytes]]]


def drive_processes(cluster, processes, name: str = "bench-driver") -> None:
    """Run the simulation until every process in ``processes`` finished.

    The shared scaffolding of the client-level microbenchmark suites
    (metadata read path, write pipeline): spawn one process per simulated
    client, wrap them in a driver that joins them, run to the driver.
    """
    def driver():
        yield cluster.sim.all_of(processes)
    process = cluster.sim.process(driver(), name=name)
    cluster.sim.run(stop_event=process)


def cache_totals(clients) -> Tuple[int, int]:
    """Aggregate (hits, misses) over the clients' metadata node caches."""
    hits = misses = 0
    for client in clients:
        if client.metadata_cache is not None:
            hits += client.metadata_cache.stats.hits
            misses += client.metadata_cache.stats.misses
    return hits, misses


@dataclass
class RunResult:
    """Outcome of one measured MPI-I/O write job."""

    backend: str
    num_clients: int
    atomic: bool
    total_bytes: int
    write_elapsed: float
    job_elapsed: float
    per_rank_elapsed: List[float]
    lock_wait_time: float
    storage_stats: Dict[str, object]
    cluster_stats: Dict[str, object]
    path: str
    file_size: int
    environment: ExperimentEnvironment = field(repr=False, default=None)

    @property
    def sample(self) -> ThroughputSample:
        """The throughput point this run contributes to its experiment."""
        return ThroughputSample(backend=self.backend, num_clients=self.num_clients,
                                total_bytes=self.total_bytes,
                                elapsed=self.write_elapsed)

    @property
    def throughput_mib(self) -> float:
        """Aggregated throughput in MiB/s."""
        return self.sample.throughput_mib


def _rank_view_and_payload(pairs: Sequence[Tuple[int, bytes]]):
    """Turn (offset, payload) pairs into an Indexed filetype + flat buffer."""
    ordered = sorted(pairs, key=lambda pair: pair[0])
    blocklengths = [len(data) for _, data in ordered]
    displacements = [offset for offset, _ in ordered]
    payload = b"".join(data for _, data in ordered)
    return Indexed(blocklengths, displacements, base=BYTE), payload


def run_atomic_write_job(environment: ExperimentEnvironment,
                         num_clients: int,
                         pairs_for_rank: PairsForRank,
                         file_size: int,
                         atomic: bool = True,
                         collective: bool = True,
                         path: str = "/shared/output",
                         ) -> RunResult:
    """Execute the write phase of one experiment and measure it."""
    if num_clients <= 0:
        raise BenchmarkError("num_clients must be positive")
    cluster = environment.cluster
    write_spans: Dict[int, Tuple[float, float]] = {}
    drivers: List = [None] * num_clients

    def rank_main(ctx: MPIContext):
        driver = environment.driver_factory(ctx)
        drivers[ctx.rank] = driver
        handle = yield from File.open(
            driver, path, AccessMode.default_write(), rank=ctx.rank,
            comm=ctx.comm, size_hint=file_size)
        handle.set_atomicity(atomic)

        pairs = list(pairs_for_rank(ctx.rank))
        filetype, payload = _rank_view_and_payload(pairs)
        handle.set_view(displacement=0, etype=BYTE, filetype=filetype)

        yield from ctx.comm.barrier(ctx.rank)
        started = ctx.sim.now
        if collective:
            written = yield from handle.write_at_all(0, payload)
        else:
            written = yield from handle.write_at(0, payload)
        finished = ctx.sim.now
        write_spans[ctx.rank] = (started, finished)
        yield from ctx.comm.barrier(ctx.rank)
        yield from handle.close()
        return written

    # a unique prefix lets the same environment host several successive jobs
    job = run_mpi_job(cluster, num_clients, rank_main,
                      node_prefix=f"bench{len(cluster.nodes)}-rank")

    starts = [span[0] for span in write_spans.values()]
    ends = [span[1] for span in write_spans.values()]
    write_elapsed = max(ends) - min(starts) if starts else 0.0
    total_bytes = sum(job.results)

    lock_wait = sum(getattr(driver, "lock_wait_time", 0.0) for driver in drivers)

    return RunResult(
        backend=environment.backend,
        num_clients=num_clients,
        atomic=atomic,
        total_bytes=total_bytes,
        write_elapsed=write_elapsed,
        job_elapsed=job.elapsed,
        per_rank_elapsed=[write_spans[rank][1] - write_spans[rank][0]
                          for rank in sorted(write_spans)],
        lock_wait_time=lock_wait,
        storage_stats=environment.storage_stats(),
        cluster_stats=cluster.stats(),
        path=path,
        file_size=file_size,
        environment=environment,
    )


def read_back_file(environment: ExperimentEnvironment, path: str,
                   file_size: int) -> bytes:
    """Read the whole shared file with a fresh single-rank job (for checks)."""
    content: List[bytes] = []

    def rank_main(ctx: MPIContext):
        driver = environment.driver_factory(ctx)
        handle = yield from File.open(
            driver, path, AccessMode.RDWR | AccessMode.CREATE, rank=ctx.rank,
            comm=ctx.comm, size_hint=file_size)
        data = yield from handle.read_at(0, file_size)
        content.append(data)
        yield from handle.close()

    run_mpi_job(environment.cluster, 1, rank_main,
                node_prefix=f"verify{len(environment.cluster.nodes)}-rank")
    return content[0]


def verify_job_atomicity(environment: ExperimentEnvironment,
                         num_clients: int,
                         pairs_for_rank: PairsForRank,
                         result: RunResult) -> bool:
    """Check that the file left behind by a run satisfies MPI atomicity."""
    observed = read_back_file(environment, result.path, result.file_size)
    writes = [VectoredWrite(rank, IOVector.for_write(list(pairs_for_rank(rank))))
              for rank in range(num_clients)]
    return check_mpi_atomicity(b"\x00" * result.file_size, writes, observed)
