"""``python -m repro.bench trace`` — export a Chrome trace of one run.

Runs the simulator-core collective I/O workload (every rank writes its
interleaved blocks with one ``write_at_all``, syncs, reads them back
collectively) with tracing enabled and dumps the resulting span/counter
timeline as Chrome trace-event JSON — loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``, one lane per rank,
node, shard and link.

The trace is driven purely by the simulation clock, so the file is
byte-stable across hosts and repeat runs: diffing two exports answers
"did this change move the timeline" exactly.
"""

from __future__ import annotations

import argparse
from typing import Dict

from repro.cluster.config import ClusterConfig
from repro.obs.export import validate_chrome_trace


def run_trace(args: argparse.Namespace) -> Dict[str, object]:
    """Run one traced collective I/O point and dump its Chrome trace.

    Returns a small summary dict (also printed): span count, lane
    groups, deepest causal chain and — with ``--validate`` — the schema
    check's verdict.  Raises on validation problems so CI smoke runs
    fail loudly.
    """
    from repro.bench.simcore import run_collective_io_point

    config = ClusterConfig(network_model=args.network, tracing=True)
    row = run_collective_io_point(
        args.ranks, args.blocks, args.block_size, args.read_rounds,
        num_aggregators=args.aggregators or max(1, args.ranks // 4),
        config=config, seed=args.seed, trace_path=args.out)

    summary = {
        "out": args.out,
        "num_ranks": args.ranks,
        "network_model": args.network,
        "sim_elapsed_s": row["sim_elapsed_s"],
        "processed_events": row["processed_events"],
        "read_digest": row["read_digest"],
    }
    if args.validate:
        with open(args.out) as handle:
            problems = validate_chrome_trace(handle.read())
        summary["validation_problems"] = problems
        if problems:
            raise SystemExit(
                "trace schema validation failed:\n  " + "\n  ".join(problems))
    for key, value in summary.items():
        print(f"{key}: {value}")
    return summary


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the trace subcommand's flags on the bench parser."""
    group = parser.add_argument_group("trace options")
    group.add_argument("--ranks", type=int, default=8,
                       help="MPI ranks of the traced job (default: 8)")
    group.add_argument("--blocks", type=int, default=8,
                       help="blocks per rank (default: 8)")
    group.add_argument("--block-size", type=int, default=1024,
                       help="bytes per block (default: 1024)")
    group.add_argument("--read-rounds", type=int, default=1,
                       help="collective read-back rounds (default: 1)")
    group.add_argument("--aggregators", type=int, default=None,
                       help="aggregator/resolver ranks (default: ranks/4)")
    group.add_argument("--network", choices=["bottleneck", "queued"],
                       default="queued",
                       help="network model; 'queued' adds per-link lanes "
                            "(default: queued)")
    group.add_argument("--out", default="trace_collective.json",
                       help="output path (default: trace_collective.json)")
    group.add_argument("--validate", action="store_true",
                       help="check the dumped trace against the "
                            "trace-event schema and fail on problems")
