"""Collective-write microbenchmark: control RPCs per write vs aggregation.

A :class:`~repro.workloads.collective_checkpoint.CollectiveCheckpointWorkload`
(per-round collective dumps of interleaved blocks, each round made durable
with a ``sync``) runs as a real MPI job through the versioning ADIO driver
in two families of modes:

* ``independent`` — the per-rank coalesced baseline (PR 2): every rank's
  ``write_at_all`` stages its own vector and the round's ``sync`` commits
  one snapshot batch *per rank* — ``N`` version tickets, ``N`` metadata
  builds per round;
* ``collective-a<A>`` — two-phase collective buffering with ``A``
  aggregators: the ranks exchange their blocks over the compute
  interconnect and the round commits as ``A`` stripe batches, so the
  control traffic per logical write drops by ~``N/A`` (the aggregation
  factor) while non-aggregator ranks touch the storage control plane zero
  times.

Every point records control RPCs per logical write, snapshots, exchange
traffic, simulated write-phase seconds and host wall-clock into
``BENCH_collective.json`` (via ``benchmarks/test_perf_collective.py``);
all modes of one rank count must read back byte-identical file contents,
which the perf suite asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bench.metrics import CollectiveSample
from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.errors import BenchmarkError
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import run_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.obs.digest import digest_columns
from repro.vstore.client import VectoredClient
from repro.workloads.collective_checkpoint import CollectiveCheckpointWorkload

PATH = "/checkpoint"


@dataclass
class CollectiveSettings:
    """Workload and deployment knobs of the collective benchmark."""

    rank_counts: Tuple[int, ...] = (4, 8)
    #: aggregator counts tried per rank count (clamped to the rank count;
    #: duplicates after clamping are dropped)
    aggregator_counts: Tuple[int, ...] = (1, 2, 4)
    rounds: int = 3
    blocks_per_rank: int = 4
    block_size: int = 8 * 1024
    num_providers: int = 4
    num_metadata_providers: int = 2
    chunk_size: int = 16 * 1024
    config: ClusterConfig = field(default_factory=ClusterConfig)
    seed: int = 0

    def scaled_down(self) -> "CollectiveSettings":
        """Smoke-mode variant for CI: same shape, a fraction of the work."""
        return replace(
            self,
            rank_counts=(4,),
            aggregator_counts=(1, 2),
            rounds=2,
            blocks_per_rank=2,
            block_size=2048,
            num_providers=2,
            chunk_size=4096,
        )

    def workload(self, num_ranks: int) -> CollectiveCheckpointWorkload:
        """The checkpoint workload for one rank count."""
        return CollectiveCheckpointWorkload(
            num_ranks=num_ranks,
            rounds=self.rounds,
            blocks_per_rank=self.blocks_per_rank,
            block_size=self.block_size,
        )


@dataclass
class CollectiveResult:
    """Sample plus the read-back bytes (for cross-mode equality checks)."""

    sample: CollectiveSample
    read_digest: bytes


def _mode_name(num_aggregators: Optional[int]) -> str:
    return ("independent" if num_aggregators is None
            else f"collective-a{num_aggregators}")


def run_collective_point(num_ranks: int,
                         num_aggregators: Optional[int],
                         settings: Optional[CollectiveSettings] = None,
                         ) -> CollectiveResult:
    """Run the checkpoint workload once: ``None`` aggregators = baseline."""
    settings = settings or CollectiveSettings()
    if num_ranks <= 0:
        raise BenchmarkError("num_ranks must be positive")
    if num_aggregators is not None \
            and not 1 <= num_aggregators <= num_ranks:
        raise BenchmarkError(
            f"aggregators must be in 1..{num_ranks}, got {num_aggregators}")
    wall_started = time.perf_counter()

    # latency digests ride in every point so the artifact carries RPC
    # percentile columns alongside the counter columns
    cluster = Cluster(config=settings.config.copy(latency_digests=True),
                      seed=settings.seed)
    deployment = BlobSeerDeployment(
        cluster,
        num_providers=settings.num_providers,
        num_metadata_providers=settings.num_metadata_providers,
        chunk_size=settings.chunk_size,
        node_prefix="cb",
    )
    workload = settings.workload(num_ranks)
    drivers: Dict[int, VersioningDriver] = {}
    write_spans: Dict[int, Tuple[float, float]] = {}
    comms = []

    def rank_main(ctx):
        driver = VersioningDriver(
            deployment, ctx.node, rank_name=f"cb{ctx.rank}",
            write_coalescing=True,
            collective_buffering=num_aggregators is not None,
            collective_aggregators=num_aggregators)
        drivers[ctx.rank] = driver
        if ctx.rank == 0:
            comms.append(ctx.comm)
        handle = yield from File.open(driver, PATH, rank=ctx.rank,
                                      comm=ctx.comm,
                                      size_hint=workload.file_size)
        yield from ctx.comm.barrier(ctx.rank)
        started = ctx.sim.now
        for round_index in range(workload.rounds):
            pairs = workload.write_pairs(ctx.rank, round_index)
            blocklengths = [len(payload) for _offset, payload in pairs]
            displacements = [offset for offset, _payload in pairs]
            payload = b"".join(payload for _offset, payload in pairs)
            handle.set_view(0, BYTE,
                            Indexed(blocklengths, displacements, base=BYTE))
            yield from handle.write_at_all(0, payload)
            # a checkpoint round is durable before the next one starts
            yield from handle.sync()
        write_spans[ctx.rank] = (started, ctx.sim.now)
        yield from ctx.comm.barrier(ctx.rank)
        yield from handle.close()

    run_mpi_job(cluster, num_ranks, rank_main, node_prefix="cb-rank")
    starts = [span[0] for span in write_spans.values()]
    ends = [span[1] for span in write_spans.values()]

    # read-back for the cross-mode equality check (fresh client, latest)
    verifier = VectoredClient(deployment, cluster.add_node("cb-verify"),
                              name="cb-verify")

    def verify():
        pieces = yield from verifier.vread(PATH, [(0, workload.file_size)])
        return pieces[0]

    process = cluster.sim.process(verify())
    digest = cluster.sim.run(stop_event=process)

    clients = [driver.client for driver in drivers.values()]
    sample = CollectiveSample(
        mode=_mode_name(num_aggregators),
        num_ranks=num_ranks,
        num_aggregators=num_aggregators or 0,
        rounds=workload.rounds,
        logical_writes=sum(client.logical_writes for client in clients),
        snapshots=sum(client.writes for client in clients),
        control_rpcs=sum(client.write_control_rpcs for client in clients),
        metadata_put_rpcs=sum(client.metadata_put_rpcs for client in clients),
        exchange_bytes=sum(driver.aggregator.stats.bytes_sent
                           for driver in drivers.values()),
        collectives_completed=comms[0].collectives_completed,
        latest_rpcs_elided=sum(client.latest_rpcs_elided
                               for client in clients),
        sim_write_s=max(ends) - min(starts) if starts else 0.0,
        wall_clock_s=time.perf_counter() - wall_started,
        network_model=settings.config.network_model,
        rpc_latency=digest_columns(cluster.obs.registry),
    )
    return CollectiveResult(sample=sample, read_digest=digest)


def run_collective_suite(settings: Optional[CollectiveSettings] = None,
                         ) -> Dict[str, CollectiveResult]:
    """Every (rank count, mode) point on identical settings.

    Keys are ``"N<ranks>:<mode>"``; each rank count gets the independent
    baseline plus one collective point per distinct clamped aggregator
    count.
    """
    settings = settings or CollectiveSettings()
    results: Dict[str, CollectiveResult] = {}
    for num_ranks in settings.rank_counts:
        results[f"N{num_ranks}:independent"] = run_collective_point(
            num_ranks, None, settings)
        seen = set()
        for count in settings.aggregator_counts:
            clamped = min(count, num_ranks)
            if clamped in seen:
                continue
            seen.add(clamped)
            results[f"N{num_ranks}:{_mode_name(clamped)}"] = \
                run_collective_point(num_ranks, clamped, settings)
    return results


def suite_rows(results: Dict[str, CollectiveResult]) -> List[Dict[str, object]]:
    """The suite's samples as artifact/table rows (insertion order)."""
    return [result.sample.as_row() for result in results.values()]
