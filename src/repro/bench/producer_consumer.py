"""FUT1 — the paper's future-work scenario: producer/consumer pipelines.

The conclusion of the paper argues that exposing the versioning interface at
application level helps producer–consumer workloads, "where for example the
output of simulations is concurrently used as the input of visualizations",
by avoiding the expensive synchronization current approaches need.

This experiment makes that argument measurable:

* *producers* (simulation ranks) repeatedly dump their overlapping
  subdomains into the shared dataset in MPI atomic mode;
* *consumers* (visualization ranks) concurrently read the whole dataset.

On the versioning backend consumers read the latest *published snapshot* and
never interact with in-flight writes.  On the locking backend consumers must
take shared covering-extent locks, so they stall producers (and vice versa).
The output rows report both the producer and the consumer throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.environment import build_environment
from repro.bench.experiments import ExperimentSettings
from repro.core.listio import IOVector
from repro.errors import BenchmarkError
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import MPIContext, run_mpi_job
from repro.mpiio.file import AccessMode, File
from repro.workloads.overlap_stress import OverlapStressWorkload

MiB = 1024 * 1024


def run_fut1_producer_consumer(settings: Optional[ExperimentSettings] = None,
                               backends: Sequence[str] = ("versioning",
                                                          "posix-locking"),
                               num_producers: int = 4,
                               num_consumers: int = 2,
                               iterations: int = 3,
                               ) -> List[Dict[str, object]]:
    """Concurrent simulation dumps + visualization reads, both backends."""
    settings = settings or ExperimentSettings()
    if num_producers <= 0 or num_consumers <= 0 or iterations <= 0:
        raise BenchmarkError("producers, consumers and iterations must be positive")

    workload = OverlapStressWorkload(
        num_clients=num_producers,
        regions_per_client=settings.regions_per_client,
        region_size=settings.region_size,
        overlap_fraction=settings.overlap_fraction,
    )
    file_size = workload.file_size
    rows: List[Dict[str, object]] = []

    for backend in backends:
        environment = build_environment(
            backend,
            num_storage_nodes=settings.num_storage_nodes,
            stripe_unit=settings.stripe_unit,
            num_metadata_providers=settings.num_metadata_providers,
            config=settings.config,
            seed=settings.seed,
        )
        cluster = environment.cluster
        total_ranks = num_producers + num_consumers
        produce_spans: List[float] = []
        consume_latencies: List[float] = []

        def rank_main(ctx: MPIContext):
            driver = environment.driver_factory(ctx)
            handle = yield from File.open(
                driver, "/dataset", AccessMode.default_write(), rank=ctx.rank,
                comm=ctx.comm, size_hint=file_size)
            handle.set_atomicity(True)
            is_producer = ctx.rank < num_producers
            if is_producer:
                pairs = workload.client_pairs(ctx.rank)
                lengths = [len(data) for _, data in pairs]
                displacements = [offset for offset, _ in pairs]
                handle.set_view(filetype=Indexed(lengths, displacements, base=BYTE))
                payload = b"".join(data for _, data in pairs)

            # a priming iteration fills the dataset so consumers always read
            # real data, then the measured iterations run producers and
            # consumers concurrently
            if is_producer:
                yield from handle.write_at(0, payload)
            yield from ctx.comm.barrier(ctx.rank)

            started = ctx.sim.now
            total_producing = 0.0
            for _iteration in range(iterations):
                yield from ctx.comm.barrier(ctx.rank)
                if is_producer:
                    write_start = ctx.sim.now
                    yield from handle.write_at(0, payload)
                    total_producing += ctx.sim.now - write_start
                else:
                    read_start = ctx.sim.now
                    yield from handle.read_at(0, file_size)
                    consume_latencies.append(ctx.sim.now - read_start)
            if is_producer:
                produce_spans.append(ctx.sim.now - started)

            yield from ctx.comm.barrier(ctx.rank)
            yield from handle.close()

        run_mpi_job(cluster, total_ranks, rank_main,
                    node_prefix=f"fut1-{backend}-rank")

        produced = workload.bytes_per_client * iterations * num_producers
        producer_elapsed = max(produce_spans)
        mean_read_latency = sum(consume_latencies) / len(consume_latencies)
        rows.append({
            "experiment": "FUT1",
            "backend": backend,
            "producers": num_producers,
            "consumers": num_consumers,
            "iterations": iterations,
            "producer_mib_s": produced / producer_elapsed / MiB,
            "producer_elapsed_s": producer_elapsed,
            "consumer_read_latency_s": mean_read_latency,
            "consumer_mib_s": file_size / mean_read_latency / MiB,
        })
    return rows
