"""Command-line entry point for the experiment harness.

Run any experiment of EXPERIMENTS.md from the shell::

    python -m repro.bench exp1 --clients 1,2,4,8 --storage-nodes 8
    python -m repro.bench exp2 --clients 4,16
    python -m repro.bench exp3
    python -m repro.bench abl1 --providers 1,2,4,8
    python -m repro.bench abl2
    python -m repro.bench abl3
    python -m repro.bench fut1 --producers 4 --consumers 2
    python -m repro.bench all

The tables are printed in the same format EXPERIMENTS.md uses.

``trace`` is the observability entry point — it runs one traced
collective I/O job and dumps a Perfetto-loadable Chrome trace::

    python -m repro.bench trace --ranks 8 --out trace_collective.json --validate
"""

from __future__ import annotations

import argparse
from typing import List, Sequence

from repro.bench.experiments import (
    ExperimentSettings,
    run_abl1_striping,
    run_abl2_lock_granularity,
    run_abl3_metadata_overhead,
    run_exp1_overlap_scalability,
    run_exp1b_nonoverlapping,
    run_exp2_tile_io,
    run_exp3_speedup_table,
)
from repro.bench.producer_consumer import run_fut1_producer_consumer
from repro.bench.reporting import format_table
from repro.bench.tracecmd import add_trace_arguments, run_trace


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's experiments on the simulated cluster.")
    parser.add_argument("experiment",
                        choices=["exp1", "exp1b", "exp2", "exp3",
                                 "abl1", "abl2", "abl3", "fut1", "all",
                                 "trace"],
                        help="which experiment to run ('trace' exports a "
                             "Chrome trace of one collective I/O job)")
    parser.add_argument("--clients", type=_int_list, default=[1, 2, 4, 8],
                        help="comma-separated client counts (default: 1,2,4,8)")
    parser.add_argument("--storage-nodes", type=int, default=8,
                        help="data providers / OSTs per backend (default: 8)")
    parser.add_argument("--regions-per-client", type=int, default=8,
                        help="non-contiguous regions per client write (default: 8)")
    parser.add_argument("--region-kib", type=int, default=64,
                        help="size of each region in KiB (default: 64)")
    parser.add_argument("--overlap", type=float, default=0.5,
                        help="overlap fraction between neighbouring clients")
    parser.add_argument("--providers", type=_int_list, default=[1, 2, 4, 8],
                        help="provider counts for abl1 (default: 1,2,4,8)")
    parser.add_argument("--producers", type=int, default=4,
                        help="producer ranks for fut1 (default: 4)")
    parser.add_argument("--consumers", type=int, default=2,
                        help="consumer ranks for fut1 (default: 2)")
    parser.add_argument("--iterations", type=int, default=3,
                        help="iterations for fut1 (default: 3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default: 0)")
    add_trace_arguments(parser)
    return parser


def settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    """Translate CLI arguments into harness settings."""
    return ExperimentSettings(
        client_counts=tuple(args.clients),
        num_storage_nodes=args.storage_nodes,
        regions_per_client=args.regions_per_client,
        region_size=args.region_kib * 1024,
        overlap_fraction=args.overlap,
        seed=args.seed,
    )


def run_experiment(name: str, args: argparse.Namespace) -> List[str]:
    """Run one experiment and return the rendered tables."""
    settings = settings_from_args(args)
    tables: List[str] = []
    if name in ("exp1", "all"):
        tables.append(format_table(run_exp1_overlap_scalability(settings),
                                   title="EXP1 — overlapped non-contiguous writes"))
    if name in ("exp1b", "all"):
        tables.append(format_table(run_exp1b_nonoverlapping(settings),
                                   title="EXP1b — disjoint accesses"))
    if name in ("exp2", "all"):
        tables.append(format_table(run_exp2_tile_io(settings),
                                   title="EXP2 — MPI-tile-IO"))
    if name in ("exp3", "all"):
        tables.append(format_table(run_exp3_speedup_table(settings),
                                   title="EXP3 — speedup (paper: 3.5x-10x)"))
    if name in ("abl1", "all"):
        tables.append(format_table(
            run_abl1_striping(settings, provider_counts=tuple(args.providers)),
            title="ABL1 — striping"))
    if name in ("abl2", "all"):
        tables.append(format_table(run_abl2_lock_granularity(settings),
                                   title="ABL2 — locking granularity"))
    if name in ("abl3", "all"):
        tables.append(format_table(run_abl3_metadata_overhead(settings),
                                   title="ABL3 — metadata overhead"))
    if name in ("fut1", "all"):
        tables.append(format_table(
            run_fut1_producer_consumer(settings, num_producers=args.producers,
                                       num_consumers=args.consumers,
                                       iterations=args.iterations),
            title="FUT1 — producer/consumer"))
    return tables


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "trace":
        run_trace(args)
        return 0
    for table in run_experiment(args.experiment, args):
        print(table)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
