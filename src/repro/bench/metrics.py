"""Result records and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

MiB = 1024 * 1024


@dataclass
class ThroughputSample:
    """One measured point of a throughput-vs-clients curve."""

    backend: str
    num_clients: int
    total_bytes: int
    elapsed: float

    @property
    def throughput(self) -> float:
        """Aggregated throughput in bytes of application data per second."""
        if self.elapsed <= 0:
            return float("inf")
        return self.total_bytes / self.elapsed

    @property
    def throughput_mib(self) -> float:
        """Aggregated throughput in MiB/s (the unit the paper plots)."""
        return self.throughput / MiB

    @property
    def per_client_mib(self) -> float:
        """Per-client share of the aggregated throughput (MiB/s)."""
        return self.throughput_mib / max(1, self.num_clients)


def speedup(ours: ThroughputSample, baseline: ThroughputSample) -> float:
    """Throughput ratio of our approach over the baseline (paper's headline)."""
    base = baseline.throughput
    if base <= 0:
        return float("inf")
    return ours.throughput / base


def scaling_efficiency(samples: List[ThroughputSample]) -> Dict[int, float]:
    """Throughput relative to the single-client point, per client count."""
    if not samples:
        return {}
    reference = min(samples, key=lambda sample: sample.num_clients)
    return {sample.num_clients: sample.throughput / reference.throughput
            for sample in samples}
