"""Result records and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

MiB = 1024 * 1024


@dataclass
class ThroughputSample:
    """One measured point of a throughput-vs-clients curve."""

    backend: str
    num_clients: int
    total_bytes: int
    elapsed: float

    @property
    def throughput(self) -> float:
        """Aggregated throughput in bytes of application data per second."""
        if self.elapsed <= 0:
            return float("inf")
        return self.total_bytes / self.elapsed

    @property
    def throughput_mib(self) -> float:
        """Aggregated throughput in MiB/s (the unit the paper plots)."""
        return self.throughput / MiB

    @property
    def per_client_mib(self) -> float:
        """Per-client share of the aggregated throughput (MiB/s)."""
        return self.throughput_mib / max(1, self.num_clients)


@dataclass
class MetadataPathSample:
    """One measured run of the metadata read-path microbenchmark.

    ``metadata_rpcs`` counts the RPC round-trips the clients spent resolving
    segment-tree nodes; ``cache_hits`` / ``cache_misses`` come from the
    client-side node caches; ``wall_clock_s`` is real (host) time spent
    executing the run and ``sim_elapsed_s`` the simulated time the read phase
    occupied — the two axes the perf trajectory in ``BENCH_metadata.json``
    tracks.
    """

    mode: str
    num_clients: int
    reads: int
    metadata_rpcs: int
    nodes_fetched: int
    cache_hits: int
    cache_misses: int
    sim_elapsed_s: float
    wall_clock_s: float
    #: cluster network model the run simulated (timing only, never bytes)
    network_model: str = "bottleneck"

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of node lookups answered by the client-side cache."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    @property
    def rpcs_per_read(self) -> float:
        """Average metadata round-trips one vectored read cost."""
        return self.metadata_rpcs / max(1, self.reads)

    def as_row(self) -> Dict[str, object]:
        """Plain-dict form for tables and the JSON benchmark artifact."""
        return {
            "mode": self.mode,
            "clients": self.num_clients,
            "reads": self.reads,
            "metadata_rpcs": self.metadata_rpcs,
            "rpcs_per_read": self.rpcs_per_read,
            "nodes_fetched": self.nodes_fetched,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "sim_elapsed_s": self.sim_elapsed_s,
            "wall_clock_s": self.wall_clock_s,
            "network_model": self.network_model,
        }


def rpc_reduction(baseline: MetadataPathSample,
                  optimized: MetadataPathSample) -> float:
    """How many times fewer metadata round-trips the optimized path spent."""
    if optimized.metadata_rpcs <= 0:
        return float("inf")
    return baseline.metadata_rpcs / optimized.metadata_rpcs


class PerWriteRpcMetrics:
    """Derived write-side metrics shared by the sample records.

    One definition of the headline normalization for every suite that
    counts snapshots and control round-trips against logical writes
    (:class:`WritePathSample`, :class:`CollectiveSample`), so the artifacts
    stay comparable.
    """

    @property
    def coalescing_factor(self) -> float:
        """Average logical writes folded into one snapshot (1.0 = none)."""
        if not self.snapshots:
            return 0.0
        return self.logical_writes / self.snapshots

    @property
    def control_rpcs_per_write(self) -> float:
        """Control-plane round-trips (incl. put_nodes) per logical write."""
        total = self.control_rpcs + self.metadata_put_rpcs
        return total / max(1, self.logical_writes)


@dataclass
class WritePathSample(PerWriteRpcMetrics):
    """One measured run of the write-pipeline microbenchmark.

    ``control_rpcs`` counts the write-side control-plane round-trips
    (``allocate``, ``assign_ticket``, ``complete``, publication waits) and
    ``metadata_put_rpcs`` the per-shard ``put_nodes`` round-trips; both are
    normalized per *logical* write — the unit the application issued, however
    many of them one snapshot coalesced.  ``first_read_cache_hit_rate`` is
    the node-cache hit rate of the very first read after the writes (the
    write-through-population signal); ``read_cache_hit_rate`` covers the
    whole read phase.
    """

    mode: str
    num_clients: int
    logical_writes: int
    snapshots: int
    control_rpcs: int
    metadata_put_rpcs: int
    cache_primed_nodes: int
    first_read_cache_hit_rate: float
    read_cache_hit_rate: float
    cache_evictions: int
    sim_write_s: float
    sim_read_s: float
    wall_clock_s: float
    #: cluster network model the run simulated (timing only, never bytes)
    network_model: str = "bottleneck"

    def as_row(self) -> Dict[str, object]:
        """Plain-dict form for tables and the JSON benchmark artifact."""
        return {
            "mode": self.mode,
            "clients": self.num_clients,
            "logical_writes": self.logical_writes,
            "snapshots": self.snapshots,
            "coalescing_factor": self.coalescing_factor,
            "control_rpcs": self.control_rpcs,
            "metadata_put_rpcs": self.metadata_put_rpcs,
            "control_rpcs_per_write": self.control_rpcs_per_write,
            "cache_primed_nodes": self.cache_primed_nodes,
            "first_read_cache_hit_rate": self.first_read_cache_hit_rate,
            "read_cache_hit_rate": self.read_cache_hit_rate,
            "cache_evictions": self.cache_evictions,
            "sim_write_s": self.sim_write_s,
            "sim_read_s": self.sim_read_s,
            "wall_clock_s": self.wall_clock_s,
            "network_model": self.network_model,
        }


def control_rpc_reduction(baseline: PerWriteRpcMetrics,
                          optimized: PerWriteRpcMetrics) -> float:
    """How many times fewer control round-trips per logical write.

    Works on any pair of :class:`PerWriteRpcMetrics` samples
    (:class:`WritePathSample`, :class:`CollectiveSample`) — the write-path
    and collective-buffering suites share one definition of the headline
    ratio.
    """
    if optimized.control_rpcs_per_write <= 0:
        return float("inf")
    return baseline.control_rpcs_per_write / optimized.control_rpcs_per_write


@dataclass
class CollectiveSample(PerWriteRpcMetrics):
    """One measured run of the collective-write microbenchmark.

    ``control_rpcs``/``metadata_put_rpcs`` aggregate the write-side control
    traffic of *all* ranks' clients; ``logical_writes`` counts the
    application-issued collective writes (one per rank per round), so
    ``control_rpcs_per_write`` is directly comparable between the per-rank
    baseline and the aggregated path.  ``exchange_bytes`` is the MPI-side
    two-phase traffic the aggregation spends instead — it moves over the
    compute interconnect, not the storage control plane, and is reported so
    the trade is visible.
    """

    mode: str
    num_ranks: int
    num_aggregators: int
    rounds: int
    logical_writes: int
    snapshots: int
    control_rpcs: int
    metadata_put_rpcs: int
    exchange_bytes: int
    collectives_completed: int
    latest_rpcs_elided: int
    sim_write_s: float
    wall_clock_s: float
    #: cluster network model the run simulated (timing only, never bytes)
    network_model: str = "bottleneck"
    #: flat RPC round-trip percentile columns (``rpc_latency_p50``...)
    #: from the run's latency digests; empty when digests were off
    rpc_latency: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Plain-dict form for tables and the JSON benchmark artifact."""
        row = {
            "mode": self.mode,
            "ranks": self.num_ranks,
            "aggregators": self.num_aggregators,
            "rounds": self.rounds,
            "logical_writes": self.logical_writes,
            "snapshots": self.snapshots,
            "coalescing_factor": self.coalescing_factor,
            "control_rpcs": self.control_rpcs,
            "metadata_put_rpcs": self.metadata_put_rpcs,
            "control_rpcs_per_write": self.control_rpcs_per_write,
            "exchange_bytes": self.exchange_bytes,
            "collectives_completed": self.collectives_completed,
            "latest_rpcs_elided": self.latest_rpcs_elided,
            "sim_write_s": self.sim_write_s,
            "wall_clock_s": self.wall_clock_s,
            "network_model": self.network_model,
        }
        row.update(self.rpc_latency)
        return row


@dataclass
class CollectiveReadSample:
    """One measured run of the collective-read microbenchmark.

    ``metadata_rpcs`` aggregates every rank's segment-tree round-trips and
    ``latest_rpcs`` the version-manager ``latest`` round-trips; both are
    normalized per *logical* read — one per rank per round, however many of
    them one resolver's stripe walk served.  ``exchange_bytes`` is the
    MPI-side scatter/plan traffic the aggregation spends instead (compute
    interconnect, not the storage control plane), ``plan_nodes_absorbed``
    counts cache entries the ranks warmed from broadcast plans, and the
    ``post_*`` columns measure one independent re-read per rank after the
    collective phase — the cache-warming signal.
    """

    mode: str
    num_ranks: int
    num_resolvers: int
    rounds: int
    logical_reads: int
    metadata_rpcs: int
    latest_rpcs: int
    nodes_fetched: int
    plan_nodes_absorbed: int
    exchange_bytes: int
    collectives_completed: int
    post_metadata_rpcs: int
    post_latest_rpcs: int
    sim_read_s: float
    wall_clock_s: float
    #: never-written bytes shipped as compact hole descriptors instead of
    #: literal zeros (zero-extent elision: the ``exchange_bytes`` drop)
    hole_bytes_elided: int = 0
    #: cluster network model the run simulated (timing only, never bytes)
    network_model: str = "bottleneck"
    #: flat RPC round-trip percentile columns (``rpc_latency_p50``...)
    #: from the run's latency digests; empty when digests were off
    rpc_latency: Dict[str, float] = field(default_factory=dict)

    @property
    def metadata_rpcs_per_read(self) -> float:
        """Control-plane round-trips (tree walk + ``latest``) per read."""
        total = self.metadata_rpcs + self.latest_rpcs
        return total / max(1, self.logical_reads)

    def as_row(self) -> Dict[str, object]:
        """Plain-dict form for tables and the JSON benchmark artifact."""
        row = {
            "mode": self.mode,
            "ranks": self.num_ranks,
            "resolvers": self.num_resolvers,
            "rounds": self.rounds,
            "logical_reads": self.logical_reads,
            "metadata_rpcs": self.metadata_rpcs,
            "latest_rpcs": self.latest_rpcs,
            "metadata_rpcs_per_read": self.metadata_rpcs_per_read,
            "nodes_fetched": self.nodes_fetched,
            "plan_nodes_absorbed": self.plan_nodes_absorbed,
            "exchange_bytes": self.exchange_bytes,
            "hole_bytes_elided": self.hole_bytes_elided,
            "collectives_completed": self.collectives_completed,
            "post_metadata_rpcs": self.post_metadata_rpcs,
            "post_latest_rpcs": self.post_latest_rpcs,
            "sim_read_s": self.sim_read_s,
            "wall_clock_s": self.wall_clock_s,
            "network_model": self.network_model,
        }
        row.update(self.rpc_latency)
        return row


def read_rpc_reduction(baseline: CollectiveReadSample,
                       optimized: CollectiveReadSample) -> float:
    """How many times fewer metadata round-trips per logical read."""
    if optimized.metadata_rpcs_per_read <= 0:
        return float("inf")
    return baseline.metadata_rpcs_per_read / optimized.metadata_rpcs_per_read


@dataclass
class SharedCacheSample:
    """One measured run of the node-local shared-cache microbenchmark.

    ``metadata_rpcs`` counts every client's segment-tree round-trips over
    the read phase (``latest`` is pinned once up front and reported
    separately), normalized per logical read.  The lookup partition —
    ``private_hits + shared_hits + fetched_lookups == lookups`` — is exact
    by construction and pinned by the conformance suite; ``shared_*``
    columns aggregate the per-node service stats, and
    ``prefetched_nodes`` counts extras shipped by speculative child
    prefetch (the node-traffic side of that trade).
    """

    mode: str
    pattern: str
    policy: str
    capacity: Optional[int]
    num_clients: int
    ranks_per_node: int
    rounds: int
    logical_reads: int
    metadata_rpcs: int
    latest_rpcs: int
    private_hits: int
    shared_hits: int
    fetched_lookups: int
    shared_evictions: int
    shared_rejections: int
    prefetched_nodes: int
    sim_read_s: float
    wall_clock_s: float
    #: cluster network model the run simulated (timing only, never bytes)
    network_model: str = "bottleneck"

    @property
    def lookups(self) -> int:
        """Deduplicated metadata lookups the read phase performed."""
        return self.private_hits + self.shared_hits + self.fetched_lookups

    @property
    def rpcs_per_read(self) -> float:
        """Metadata tree-walk round-trips per logical read."""
        return self.metadata_rpcs / max(1, self.logical_reads)

    @property
    def shared_hit_rate(self) -> float:
        """Fraction of lookups the shared tier answered."""
        if not self.lookups:
            return 0.0
        return self.shared_hits / self.lookups

    def as_row(self) -> Dict[str, object]:
        """Plain-dict form for tables and the JSON benchmark artifact."""
        return {
            "mode": self.mode,
            "pattern": self.pattern,
            "policy": self.policy,
            "capacity": self.capacity,
            "clients": self.num_clients,
            "ranks_per_node": self.ranks_per_node,
            "rounds": self.rounds,
            "logical_reads": self.logical_reads,
            "metadata_rpcs": self.metadata_rpcs,
            "rpcs_per_read": self.rpcs_per_read,
            "latest_rpcs": self.latest_rpcs,
            "lookups": self.lookups,
            "private_hits": self.private_hits,
            "shared_hits": self.shared_hits,
            "fetched_lookups": self.fetched_lookups,
            "shared_hit_rate": self.shared_hit_rate,
            "shared_evictions": self.shared_evictions,
            "shared_rejections": self.shared_rejections,
            "prefetched_nodes": self.prefetched_nodes,
            "sim_read_s": self.sim_read_s,
            "wall_clock_s": self.wall_clock_s,
            "network_model": self.network_model,
        }


def shared_rpc_reduction(baseline: SharedCacheSample,
                         optimized: SharedCacheSample) -> float:
    """How many times fewer metadata round-trips per logical read."""
    if optimized.rpcs_per_read <= 0:
        return float("inf")
    return baseline.rpcs_per_read / optimized.rpcs_per_read


@dataclass
class CoopCacheSample:
    """One measured run of the cooperative cross-node cache microbenchmark.

    The headline is ``server_rpcs_per_read``: **authoritative** metadata
    shard round-trips (server-side ``get_node``/``get_nodes`` handler
    invocations, wherever they were issued from — clients or peer
    read-throughs) per logical read.  The node-local shared tier alone
    flattens this at the ``1/ranks_per_node`` ideal (one fetch per node);
    the cooperative tier pushes it below, and falling with node count,
    because one node's fetch serves the whole cluster over peer probes.
    The probe/peer columns report what the tier spends and saves;
    ``coalesced_fetches`` counts upstream fetches avoided by parking
    simultaneous missers on one in-flight fetch.
    """

    mode: str
    num_nodes: int
    ranks_per_node: int
    num_clients: int
    rounds: int
    logical_reads: int
    server_read_rpcs: int
    client_metadata_rpcs: int
    probe_rpcs: int
    peer_hits: int
    peer_rejections: int
    probe_misses: int
    read_throughs: int
    unavailable_probes: int
    coalesced_fetches: int
    private_hits: int
    shared_hits: int
    fetched_lookups: int
    sim_read_s: float
    wall_clock_s: float
    #: cluster network model the run simulated (timing only, never bytes)
    network_model: str = "bottleneck"

    @property
    def lookups(self) -> int:
        """Deduplicated metadata lookups (four-way partition total)."""
        return (self.private_hits + self.shared_hits + self.peer_hits
                + self.fetched_lookups)

    @property
    def server_rpcs_per_read(self) -> float:
        """Authoritative shard round-trips per logical read (headline)."""
        return self.server_read_rpcs / max(1, self.logical_reads)

    @property
    def peer_hit_rate(self) -> float:
        """Fraction of lookups a cooperative peer answered."""
        if not self.lookups:
            return 0.0
        return self.peer_hits / self.lookups

    def as_row(self) -> Dict[str, object]:
        """Plain-dict form for tables and the JSON benchmark artifact."""
        return {
            "mode": self.mode,
            "nodes": self.num_nodes,
            "ranks_per_node": self.ranks_per_node,
            "clients": self.num_clients,
            "rounds": self.rounds,
            "logical_reads": self.logical_reads,
            "server_read_rpcs": self.server_read_rpcs,
            "server_rpcs_per_read": self.server_rpcs_per_read,
            "client_metadata_rpcs": self.client_metadata_rpcs,
            "probe_rpcs": self.probe_rpcs,
            "peer_hits": self.peer_hits,
            "peer_hit_rate": self.peer_hit_rate,
            "peer_rejections": self.peer_rejections,
            "probe_misses": self.probe_misses,
            "read_throughs": self.read_throughs,
            "unavailable_probes": self.unavailable_probes,
            "coalesced_fetches": self.coalesced_fetches,
            "lookups": self.lookups,
            "private_hits": self.private_hits,
            "shared_hits": self.shared_hits,
            "fetched_lookups": self.fetched_lookups,
            "sim_read_s": self.sim_read_s,
            "wall_clock_s": self.wall_clock_s,
            "network_model": self.network_model,
        }


def coop_rpc_reduction(baseline: CoopCacheSample,
                       optimized: CoopCacheSample) -> float:
    """How many times fewer authoritative shard round-trips per read."""
    if optimized.server_rpcs_per_read <= 0:
        return float("inf")
    return baseline.server_rpcs_per_read / optimized.server_rpcs_per_read


def speedup(ours: ThroughputSample, baseline: ThroughputSample) -> float:
    """Throughput ratio of our approach over the baseline (paper's headline)."""
    base = baseline.throughput
    if base <= 0:
        return float("inf")
    return ours.throughput / base


def scaling_efficiency(samples: List[ThroughputSample]) -> Dict[int, float]:
    """Throughput relative to the single-client point, per client count."""
    if not samples:
        return {}
    reference = min(samples, key=lambda sample: sample.num_clients)
    return {sample.num_clients: sample.throughput / reference.throughput
            for sample in samples}
