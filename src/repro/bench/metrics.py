"""Result records and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

MiB = 1024 * 1024


@dataclass
class ThroughputSample:
    """One measured point of a throughput-vs-clients curve."""

    backend: str
    num_clients: int
    total_bytes: int
    elapsed: float

    @property
    def throughput(self) -> float:
        """Aggregated throughput in bytes of application data per second."""
        if self.elapsed <= 0:
            return float("inf")
        return self.total_bytes / self.elapsed

    @property
    def throughput_mib(self) -> float:
        """Aggregated throughput in MiB/s (the unit the paper plots)."""
        return self.throughput / MiB

    @property
    def per_client_mib(self) -> float:
        """Per-client share of the aggregated throughput (MiB/s)."""
        return self.throughput_mib / max(1, self.num_clients)


@dataclass
class MetadataPathSample:
    """One measured run of the metadata read-path microbenchmark.

    ``metadata_rpcs`` counts the RPC round-trips the clients spent resolving
    segment-tree nodes; ``cache_hits`` / ``cache_misses`` come from the
    client-side node caches; ``wall_clock_s`` is real (host) time spent
    executing the run and ``sim_elapsed_s`` the simulated time the read phase
    occupied — the two axes the perf trajectory in ``BENCH_metadata.json``
    tracks.
    """

    mode: str
    num_clients: int
    reads: int
    metadata_rpcs: int
    nodes_fetched: int
    cache_hits: int
    cache_misses: int
    sim_elapsed_s: float
    wall_clock_s: float

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of node lookups answered by the client-side cache."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    @property
    def rpcs_per_read(self) -> float:
        """Average metadata round-trips one vectored read cost."""
        return self.metadata_rpcs / max(1, self.reads)

    def as_row(self) -> Dict[str, object]:
        """Plain-dict form for tables and the JSON benchmark artifact."""
        return {
            "mode": self.mode,
            "clients": self.num_clients,
            "reads": self.reads,
            "metadata_rpcs": self.metadata_rpcs,
            "rpcs_per_read": self.rpcs_per_read,
            "nodes_fetched": self.nodes_fetched,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "sim_elapsed_s": self.sim_elapsed_s,
            "wall_clock_s": self.wall_clock_s,
        }


def rpc_reduction(baseline: MetadataPathSample,
                  optimized: MetadataPathSample) -> float:
    """How many times fewer metadata round-trips the optimized path spent."""
    if optimized.metadata_rpcs <= 0:
        return float("inf")
    return baseline.metadata_rpcs / optimized.metadata_rpcs


def speedup(ours: ThroughputSample, baseline: ThroughputSample) -> float:
    """Throughput ratio of our approach over the baseline (paper's headline)."""
    base = baseline.throughput
    if base <= 0:
        return float("inf")
    return ours.throughput / base


def scaling_efficiency(samples: List[ThroughputSample]) -> Dict[int, float]:
    """Throughput relative to the single-client point, per client count."""
    if not samples:
        return {}
    reference = min(samples, key=lambda sample: sample.num_clients)
    return {sample.num_clients: sample.throughput / reference.throughput
            for sample in samples}
