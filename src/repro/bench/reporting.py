"""Plain-text tables and series, matching what the paper reports."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None,
                 floatfmt: str = "{:.2f}") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(str(column)), *(len(line[index]) for line in rendered))
              for index, column in enumerate(columns)]

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width)
                        for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(series: Dict[str, Dict[int, float]], x_label: str = "clients",
                  y_label: str = "MiB/s", title: Optional[str] = None) -> str:
    """Render one curve per backend: the figure-style view of an experiment."""
    x_values = sorted({x for curve in series.values() for x in curve})
    rows = []
    for x in x_values:
        row: Dict[str, object] = {x_label: x}
        for name, curve in series.items():
            row[f"{name} ({y_label})"] = curve.get(x, float("nan"))
        rows.append(row)
    return format_table(rows, title=title)
