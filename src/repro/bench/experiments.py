"""Experiment definitions regenerating every figure/table of the evaluation.

Each ``run_*`` function sweeps the parameters of one experiment of DESIGN.md
(EXP1, EXP1b, EXP2, EXP3, ABL1, ABL2, ABL3, FUT1) and returns the rows of the
corresponding table/figure.  The benchmark files under ``benchmarks/`` call
these functions with "quick" parameters (so the suite stays fast) and print
the rows; EXPERIMENTS.md records a full-size run next to the paper's numbers.

The paper reports *shapes*, not absolute values we could match on different
hardware: the versioning backend keeps scaling with the number of concurrent
writers while the locking baseline stays flat (serialized), yielding 3.5x-10x
higher aggregated throughput.  The assertions in ``benchmarks/`` check those
shapes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.environment import build_environment
from repro.bench.harness import RunResult, run_atomic_write_job
from repro.bench.metrics import ThroughputSample, speedup
from repro.cluster import ClusterConfig
from repro.workloads.overlap_stress import OverlapStressWorkload
from repro.workloads.tile_io import TileIOWorkload


#: hardware parameters shared by every experiment (absolute scale only)
DEFAULT_CONFIG = ClusterConfig()


@dataclass
class ExperimentSettings:
    """Knobs shared by the sweep functions.

    The default ``client_counts`` now reach toward the paper-scale runs
    (the simulator spends far fewer host cycles per operation than it did
    at seed time); every sweep row records the host wall-clock the point
    cost (``wall_clock_s``), so simulator host-cost regressions show up in
    the artifacts next to the simulated metrics.  The benchmark suite under
    ``benchmarks/`` still passes smaller counts for CI-speed runs.
    """

    client_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64)
    num_storage_nodes: int = 8
    stripe_unit: int = 64 * 1024
    num_metadata_providers: int = 2
    config: ClusterConfig = field(default_factory=lambda: DEFAULT_CONFIG.copy())
    seed: int = 0

    # EXP1 workload shape
    regions_per_client: int = 8
    region_size: int = 64 * 1024
    overlap_fraction: float = 0.5

    # EXP2 workload shape (per-process tile)
    tile_elements_x: int = 64
    tile_elements_y: int = 64
    element_size: int = 32
    tile_overlap: int = 8


def _run_point(backend: str, num_clients: int, pairs_for_rank, file_size: int,
               settings: ExperimentSettings, publish_cost: float = 0.0,
               allocation: str = "round_robin",
               num_storage_nodes: Optional[int] = None,
               ) -> Tuple[RunResult, float]:
    """Build a fresh environment and run one (backend, clients) point.

    Returns the run result plus the host wall-clock seconds the point cost
    — the simulator-cost axis every sweep row records.
    """
    started = time.perf_counter()
    environment = build_environment(
        backend,
        num_storage_nodes=num_storage_nodes or settings.num_storage_nodes,
        stripe_unit=settings.stripe_unit,
        num_metadata_providers=settings.num_metadata_providers,
        publish_cost=publish_cost,
        allocation=allocation,
        config=settings.config,
        seed=settings.seed,
    )
    result = run_atomic_write_job(environment, num_clients, pairs_for_rank,
                                  file_size=file_size, atomic=True)
    return result, time.perf_counter() - started


# ----------------------------------------------------------------------
# EXP1 — scalability of concurrent overlapped non-contiguous writes
# ----------------------------------------------------------------------
def run_exp1_overlap_scalability(settings: Optional[ExperimentSettings] = None,
                                 backends: Sequence[str] = ("versioning",
                                                            "posix-locking"),
                                 overlap_fraction: Optional[float] = None,
                                 ) -> List[Dict[str, object]]:
    """Aggregated throughput vs number of clients, overlapped accesses (Fig. A)."""
    settings = settings or ExperimentSettings()
    fraction = settings.overlap_fraction if overlap_fraction is None else overlap_fraction
    rows: List[Dict[str, object]] = []
    for num_clients in settings.client_counts:
        workload = OverlapStressWorkload(
            num_clients=num_clients,
            regions_per_client=settings.regions_per_client,
            region_size=settings.region_size,
            overlap_fraction=fraction,
        )
        for backend in backends:
            result, wall = _run_point(backend, num_clients,
                                      workload.client_pairs,
                                      workload.file_size, settings)
            rows.append({
                "experiment": "EXP1" if fraction > 0 else "EXP1b",
                "backend": backend,
                "clients": num_clients,
                "regions_per_client": workload.regions_per_client,
                "region_kib": workload.region_size // 1024,
                "overlap": fraction,
                "total_mib": result.total_bytes / (1024 * 1024),
                "elapsed_s": result.write_elapsed,
                "throughput_mib_s": result.throughput_mib,
                "lock_wait_s": result.lock_wait_time,
                "wall_clock_s": wall,
            })
    return rows


def run_exp1b_nonoverlapping(settings: Optional[ExperimentSettings] = None,
                             backends: Sequence[str] = ("versioning",
                                                        "posix-locking",
                                                        "conflict-detect"),
                             ) -> List[Dict[str, object]]:
    """EXP1b: same sweep with disjoint accesses (conflict-detection's use case)."""
    return run_exp1_overlap_scalability(settings, backends, overlap_fraction=0.0)


# ----------------------------------------------------------------------
# EXP2 — MPI-tile-IO
# ----------------------------------------------------------------------
def run_exp2_tile_io(settings: Optional[ExperimentSettings] = None,
                     backends: Sequence[str] = ("versioning", "posix-locking"),
                     ) -> List[Dict[str, object]]:
    """Aggregated MPI-tile-IO write throughput vs number of clients (Fig. B)."""
    settings = settings or ExperimentSettings()
    base = TileIOWorkload(
        nr_tiles_x=1, nr_tiles_y=1,
        sz_tile_x=settings.tile_elements_x, sz_tile_y=settings.tile_elements_y,
        sz_element=settings.element_size,
        overlap_x=settings.tile_overlap, overlap_y=settings.tile_overlap,
    )
    rows: List[Dict[str, object]] = []
    for num_clients in settings.client_counts:
        workload = base.scaled_to(num_clients)
        for backend in backends:
            result, wall = _run_point(backend, workload.num_processes,
                                      workload.rank_pairs, workload.file_size,
                                      settings)
            rows.append({
                "experiment": "EXP2",
                "backend": backend,
                "clients": workload.num_processes,
                "tile_grid": f"{workload.nr_tiles_x}x{workload.nr_tiles_y}",
                "tile_elements": f"{workload.sz_tile_x}x{workload.sz_tile_y}",
                "element_bytes": workload.sz_element,
                "overlap_elements": workload.overlap_x,
                "total_mib": result.total_bytes / (1024 * 1024),
                "elapsed_s": result.write_elapsed,
                "throughput_mib_s": result.throughput_mib,
                "lock_wait_s": result.lock_wait_time,
                "wall_clock_s": wall,
            })
    return rows


# ----------------------------------------------------------------------
# EXP3 — the headline speedup table (3.5x .. 10x)
# ----------------------------------------------------------------------
def run_exp3_speedup_table(settings: Optional[ExperimentSettings] = None,
                           ) -> List[Dict[str, object]]:
    """Speedup of versioning over locking across both experiments' setups."""
    settings = settings or ExperimentSettings()
    rows: List[Dict[str, object]] = []

    exp1 = run_exp1_overlap_scalability(settings)
    exp2 = run_exp2_tile_io(settings)
    for experiment, source in (("EXP1", exp1), ("EXP2", exp2)):
        by_clients: Dict[int, Dict[str, Dict[str, object]]] = {}
        for row in source:
            by_clients.setdefault(row["clients"], {})[row["backend"]] = row
        for clients, per_backend in sorted(by_clients.items()):
            if "versioning" not in per_backend or "posix-locking" not in per_backend:
                continue
            ours = per_backend["versioning"]["throughput_mib_s"]
            baseline = per_backend["posix-locking"]["throughput_mib_s"]
            rows.append({
                "experiment": experiment,
                "clients": clients,
                "versioning_mib_s": ours,
                "lustre_locking_mib_s": baseline,
                "speedup": ours / baseline if baseline else float("inf"),
            })
    return rows


# ----------------------------------------------------------------------
# ABL1 — striping: number of data providers
# ----------------------------------------------------------------------
def run_abl1_striping(settings: Optional[ExperimentSettings] = None,
                      provider_counts: Sequence[int] = (1, 2, 4, 8, 16),
                      num_clients: int = 8,
                      allocation: str = "round_robin",
                      ) -> List[Dict[str, object]]:
    """Versioning throughput vs number of data providers (design principle 2)."""
    settings = settings or ExperimentSettings()
    workload = OverlapStressWorkload(
        num_clients=num_clients,
        regions_per_client=settings.regions_per_client,
        region_size=settings.region_size,
        overlap_fraction=settings.overlap_fraction,
    )
    rows: List[Dict[str, object]] = []
    for providers in provider_counts:
        result, wall = _run_point("versioning", num_clients,
                                  workload.client_pairs,
                                  workload.file_size, settings,
                                  allocation=allocation,
                                  num_storage_nodes=providers)
        stats = result.storage_stats
        rows.append({
            "experiment": "ABL1",
            "providers": providers,
            "clients": num_clients,
            "allocation": allocation,
            "throughput_mib_s": result.throughput_mib,
            "load_imbalance": stats.get("load_imbalance", 1.0),
            "wall_clock_s": wall,
        })
    return rows


# ----------------------------------------------------------------------
# ABL2 — locking granularity
# ----------------------------------------------------------------------
def run_abl2_lock_granularity(settings: Optional[ExperimentSettings] = None,
                              num_clients: int = 8,
                              overlaps: Sequence[float] = (0.0, 0.5),
                              ) -> List[Dict[str, object]]:
    """Covering-extent vs per-range locks vs conflict detection vs versioning."""
    settings = settings or ExperimentSettings()
    backends = ("posix-locking", "posix-listlock", "conflict-detect", "versioning")
    rows: List[Dict[str, object]] = []
    for overlap in overlaps:
        workload = OverlapStressWorkload(
            num_clients=num_clients,
            regions_per_client=settings.regions_per_client,
            region_size=settings.region_size,
            overlap_fraction=overlap,
        )
        for backend in backends:
            result, wall = _run_point(backend, num_clients,
                                      workload.client_pairs,
                                      workload.file_size, settings)
            rows.append({
                "experiment": "ABL2",
                "backend": backend,
                "clients": num_clients,
                "overlap": overlap,
                "throughput_mib_s": result.throughput_mib,
                "lock_wait_s": result.lock_wait_time,
                "wall_clock_s": wall,
            })
    return rows


# ----------------------------------------------------------------------
# ABL3 — metadata / publication overhead of the versioning approach
# ----------------------------------------------------------------------
def run_abl3_metadata_overhead(settings: Optional[ExperimentSettings] = None,
                               num_clients: int = 8,
                               regions_per_client_values: Sequence[int] = (1, 8, 64),
                               publish_costs: Sequence[float] = (0.0, 1e-3),
                               ) -> List[Dict[str, object]]:
    """Cost of snapshot publication vs number of regions per vectored write."""
    settings = settings or ExperimentSettings()
    rows: List[Dict[str, object]] = []
    for regions_per_client in regions_per_client_values:
        workload = OverlapStressWorkload(
            num_clients=num_clients,
            regions_per_client=regions_per_client,
            region_size=max(4096, settings.region_size // regions_per_client),
            overlap_fraction=settings.overlap_fraction,
        )
        for publish_cost in publish_costs:
            result, wall = _run_point("versioning", num_clients,
                                      workload.client_pairs,
                                      workload.file_size, settings,
                                      publish_cost=publish_cost)
            stats = result.storage_stats
            rows.append({
                "experiment": "ABL3",
                "clients": num_clients,
                "regions_per_client": regions_per_client,
                "publish_cost_ms": publish_cost * 1000,
                "metadata_nodes": stats.get("metadata_nodes", 0),
                "throughput_mib_s": result.throughput_mib,
                "wall_clock_s": wall,
            })
    return rows
