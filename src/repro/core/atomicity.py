"""An executable definition of MPI-I/O atomicity.

The MPI standard's atomic mode requires that when several processes issue
concurrent, possibly overlapping write operations (each of which may cover a
*set of non-contiguous regions*), every byte of the resulting file reflects a
state obtainable by executing the writes one after another in *some* order —
i.e. the concurrent execution is equivalent to a serial one, and in
particular overlapped regions never interleave data from two writers at a
granularity finer than a whole write operation.

This module turns that definition into a checker used throughout the test
suite:

* :func:`apply_writes` — replay a list of vectored writes in a given order;
* :func:`find_serialization` — search for an order of the concurrent writes
  that reproduces an observed final state;
* :func:`check_mpi_atomicity` — the boolean/raising wrapper used by tests and
  by the property-based atomicity suite.

The search is exact.  Its cost is bounded by pruning on a per-byte
"candidate writer" analysis before falling back to permutation search over
the (usually tiny) set of mutually conflicting writes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.errors import AtomicityViolation


@dataclass(frozen=True)
class VectoredWrite:
    """A concurrent vectored write issued by one writer.

    ``writer_id`` only serves error reporting; the checker treats writes as
    anonymous operations.
    """

    writer_id: int
    vector: IOVector

    def region_list(self) -> RegionList:
        """Byte ranges touched by the write."""
        return self.vector.region_list()


def apply_writes(initial: bytes, writes: Sequence[VectoredWrite],
                 order: Optional[Sequence[int]] = None) -> bytes:
    """Replay ``writes`` (optionally re-ordered by ``order``) over ``initial``.

    Parameters
    ----------
    initial:
        Starting file content.
    writes:
        The vectored writes.
    order:
        Indices into ``writes`` giving the serialization order.  ``None``
        replays them in list order.

    Returns
    -------
    The resulting file content (grown as needed).
    """
    content = bytearray(initial)
    sequence = list(range(len(writes))) if order is None else list(order)
    for index in sequence:
        writes[index].vector.apply_to(content)
    return bytes(content)


def _conflict_groups(writes: Sequence[VectoredWrite]) -> List[List[int]]:
    """Partition write indices into connected components of the conflict graph.

    Two writes conflict when their byte ranges overlap.  Only the relative
    order *within* a component can influence the final content, so the
    serialization search may treat components independently — this is what
    keeps the exact search tractable for realistic workloads.
    """
    count = len(writes)
    region_lists = [write.region_list().normalized() for write in writes]
    parent = list(range(count))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for i in range(count):
        for j in range(i + 1, count):
            if region_lists[i].overlaps(region_lists[j]):
                union(i, j)

    groups: Dict[int, List[int]] = {}
    for index in range(count):
        groups.setdefault(find(index), []).append(index)
    return list(groups.values())


def find_serialization(initial: bytes, writes: Sequence[VectoredWrite],
                       observed: bytes,
                       max_group_permutations: int = 2_000_000,
                       ) -> Optional[List[int]]:
    """Find an order of ``writes`` whose replay over ``initial`` equals ``observed``.

    Returns the order (list of indices into ``writes``) or ``None`` when no
    serialization produces the observed content — i.e. atomicity was violated.

    The search decomposes the writes into conflict groups (connected
    components of the overlap graph); non-conflicting groups commute, so only
    intra-group orders are enumerated.  ``max_group_permutations`` guards
    against pathological inputs (it raises rather than silently truncating).
    """
    if not writes:
        return [] if bytes(observed) == bytes(initial) else None

    final_length = len(observed)
    groups = _conflict_groups(writes)

    chosen_orders: List[List[int]] = []
    for group in groups:
        if len(group) > 10:
            permutation_count = 1
            for factor in range(2, len(group) + 1):
                permutation_count *= factor
                if permutation_count > max_group_permutations:
                    raise AtomicityViolation(
                        f"conflict group of {len(group)} writes exceeds the "
                        f"permutation budget ({max_group_permutations}); "
                        "reduce the workload used with the exact checker")

        solution: Optional[Tuple[int, ...]] = None
        for permutation in itertools.permutations(group):
            candidate = apply_writes(initial, writes, permutation)
            if _matches_on_touched_bytes(candidate, observed, writes, group,
                                         initial, final_length):
                solution = permutation
                break
        if solution is None:
            return None
        chosen_orders.append(list(solution))

    # Interleave groups in any fixed order (they commute); verify globally.
    flat_order = [index for group_order in chosen_orders for index in group_order]
    if apply_writes(initial, writes, flat_order)[:final_length] != bytes(observed):
        return None
    return flat_order


def _matches_on_touched_bytes(candidate: bytes, observed: bytes,
                              writes: Sequence[VectoredWrite],
                              group: Iterable[int], initial: bytes,
                              final_length: int) -> bool:
    """Compare candidate and observed content on the bytes touched by ``group``."""
    touched = RegionList()
    for index in group:
        touched = touched.union(writes[index].region_list())
    for region in touched:
        start = region.offset
        end = min(region.end, final_length)
        if start >= final_length:
            continue
        if candidate[start:end] != observed[start:end]:
            return False
    return True


def check_mpi_atomicity(initial: bytes, writes: Sequence[VectoredWrite],
                        observed: bytes, raise_on_violation: bool = False) -> bool:
    """Decide whether ``observed`` satisfies MPI atomicity for ``writes``.

    Also verifies that bytes never touched by any write kept their initial
    value (zero-fill beyond the initial length), which catches backends that
    corrupt unrelated data.

    Parameters
    ----------
    raise_on_violation:
        When True, raise :class:`~repro.errors.AtomicityViolation` with a
        diagnostic message instead of returning False.
    """
    observed = bytes(observed)
    initial = bytes(initial)

    # 1. untouched bytes must be preserved
    all_touched = RegionList()
    for write in writes:
        all_touched = all_touched.union(write.region_list())
    length = len(observed)
    untouched = RegionList.single(0, length).subtract(all_touched)
    for region in untouched:
        expected = initial[region.offset:region.end]
        if len(expected) < region.size:
            expected = expected + b"\x00" * (region.size - len(expected))
        actual = observed[region.offset:region.end]
        if actual != expected:
            if raise_on_violation:
                raise AtomicityViolation(
                    f"bytes [{region.offset}, {region.end}) were modified but "
                    "no write touches them")
            return False

    # 2. there must exist a serialization reproducing the touched bytes
    order = find_serialization(initial, writes, observed)
    if order is None:
        if raise_on_violation:
            raise AtomicityViolation(
                "no serialization of the concurrent writes reproduces the "
                f"observed content (writers: {[w.writer_id for w in writes]})")
        return False
    return True


def interleaving_example(initial: bytes, writes: Sequence[VectoredWrite]) -> bytes:
    """Produce a deliberately *non-atomic* final state for testing the checker.

    The writes are applied request-by-request in a round-robin interleaving,
    which mixes data from different writers inside overlapped regions whenever
    the writes conflict.  Used by failure-injection tests to demonstrate that
    the checker (and therefore the property-based suite) can actually detect
    violations.
    """
    content = bytearray(initial)
    cursors = [0] * len(writes)
    remaining = sum(len(write.vector) for write in writes)
    while remaining:
        for index, write in enumerate(writes):
            if cursors[index] < len(write.vector):
                request = write.vector[cursors[index]]
                IOVector([request]).apply_to(content)
                cursors[index] += 1
                remaining -= 1
    return bytes(content)
