"""Core abstractions shared by every storage backend.

* :mod:`repro.core.regions` — byte-region algebra (the vocabulary for
  non-contiguous accesses);
* :mod:`repro.core.listio` — List-I/O style vectored access descriptors,
  closely following the interface proposal of Ching et al. (CLUSTER'02) that
  the paper's storage API mirrors;
* :mod:`repro.core.atomicity` — an executable definition of MPI atomicity:
  a checker that decides whether a final file state could have been produced
  by *some* serialization of a set of concurrent vectored writes.
"""

from repro.core.regions import Region, RegionList
from repro.core.listio import IORequest, IOVector
from repro.core.atomicity import (
    VectoredWrite,
    apply_writes,
    check_mpi_atomicity,
    find_serialization,
)

__all__ = [
    "Region",
    "RegionList",
    "IORequest",
    "IOVector",
    "VectoredWrite",
    "apply_writes",
    "check_mpi_atomicity",
    "find_serialization",
]
