"""Byte-region algebra.

Every layer of the stack talks about *non-contiguous sets of byte ranges in a
flat file*: the MPI-I/O layer produces them by flattening derived datatypes,
the versioning backend stores them as chunk descriptors, the lock manager
locks them, and the atomicity checker reasons about their overlaps.  This
module provides the two value types used everywhere:

* :class:`Region` — a half-open byte interval ``[offset, offset + size)``;
* :class:`RegionList` — an ordered collection of regions with the usual set
  operations (normalization, union, intersection, subtraction, covering
  extent).

Both types are immutable so they can be hashed, shared between simulated
processes, and used as dictionary keys without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidRegion

#: region count above which sort-based set operations switch to the
#: vectorized (numpy) kernel; below it plain-Python merges win
_VECTOR_THRESHOLD = 64


def _coalesce_runs(starts: np.ndarray, ends: np.ndarray) -> List["Region"]:
    """Coalesce sorted ``[start, end)`` interval arrays into canonical Regions.

    ``starts`` must already be sorted ascending; overlapping *and* adjacent
    intervals merge, matching the linear-merge semantics of
    :meth:`RegionList.union`.  One running-maximum pass finds run boundaries
    without any per-interval Python work.
    """
    if len(starts) == 0:
        return []
    running = np.maximum.accumulate(ends)
    breaks = np.empty(len(starts), dtype=bool)
    breaks[0] = True
    np.greater(starts[1:], running[:-1], out=breaks[1:])
    head = np.flatnonzero(breaks)
    tail = np.append(head[1:], len(starts)) - 1
    run_starts = starts[head].tolist()
    run_ends = running[tail].tolist()
    return [Region(int(start), int(end - start))
            for start, end in zip(run_starts, run_ends)]


@dataclass(frozen=True, order=True)
class Region:
    """A half-open byte interval ``[offset, offset + size)`` in a flat file."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise InvalidRegion(f"negative offset: {self.offset}")
        if self.size < 0:
            raise InvalidRegion(f"negative size: {self.size}")

    # ------------------------------------------------------------------
    @property
    def end(self) -> int:
        """First byte *after* the region."""
        return self.offset + self.size

    @property
    def empty(self) -> bool:
        """True for zero-length regions."""
        return self.size == 0

    def contains(self, offset: int) -> bool:
        """True if byte ``offset`` lies inside the region."""
        return self.offset <= offset < self.end

    def contains_region(self, other: "Region") -> bool:
        """True if ``other`` is entirely inside this region."""
        if other.empty:
            return self.offset <= other.offset <= self.end
        return self.offset <= other.offset and other.end <= self.end

    def overlaps(self, other: "Region") -> bool:
        """True if the two regions share at least one byte."""
        if self.empty or other.empty:
            return False
        return self.offset < other.end and other.offset < self.end

    def adjacent(self, other: "Region") -> bool:
        """True if the regions touch end-to-start (no gap, no overlap)."""
        return self.end == other.offset or other.end == self.offset

    def intersect(self, other: "Region") -> "Region":
        """The overlapping part (possibly empty, anchored at the overlap start)."""
        start = max(self.offset, other.offset)
        end = min(self.end, other.end)
        if end <= start:
            return Region(start if start >= 0 else 0, 0)
        return Region(start, end - start)

    def union_extent(self, other: "Region") -> "Region":
        """Smallest contiguous region covering both (may include gap bytes)."""
        if self.empty:
            return other
        if other.empty:
            return self
        start = min(self.offset, other.offset)
        end = max(self.end, other.end)
        return Region(start, end - start)

    def subtract(self, other: "Region") -> Tuple["Region", ...]:
        """The parts of this region not covered by ``other`` (0, 1 or 2 pieces)."""
        if not self.overlaps(other):
            return (self,) if not self.empty else ()
        pieces: List[Region] = []
        if self.offset < other.offset:
            pieces.append(Region(self.offset, other.offset - self.offset))
        if other.end < self.end:
            pieces.append(Region(other.end, self.end - other.end))
        return tuple(pieces)

    def shift(self, delta: int) -> "Region":
        """A copy of the region moved by ``delta`` bytes."""
        return Region(self.offset + delta, self.size)

    def split_at(self, offset: int) -> Tuple["Region", "Region"]:
        """Split at absolute byte ``offset`` (must lie inside the region)."""
        if not (self.offset < offset < self.end):
            raise InvalidRegion(
                f"split point {offset} outside the interior of {self}")
        return (Region(self.offset, offset - self.offset),
                Region(offset, self.end - offset))

    def chunk_aligned_pieces(self, chunk_size: int) -> Tuple["Region", ...]:
        """Split the region at every multiple of ``chunk_size``.

        This is the decomposition used when striping a write across fixed-size
        chunks: each returned piece lies entirely within one chunk.
        """
        if chunk_size <= 0:
            raise InvalidRegion(f"chunk_size must be positive, got {chunk_size}")
        if self.empty:
            return ()
        pieces: List[Region] = []
        cursor = self.offset
        while cursor < self.end:
            boundary = ((cursor // chunk_size) + 1) * chunk_size
            piece_end = min(boundary, self.end)
            pieces.append(Region(cursor, piece_end - cursor))
            cursor = piece_end
        return tuple(pieces)

    def as_tuple(self) -> Tuple[int, int]:
        """``(offset, size)`` tuple form."""
        return (self.offset, self.size)

    def __repr__(self) -> str:
        return f"Region({self.offset}, {self.size})"


class RegionList:
    """An immutable ordered list of byte regions with set-like operations.

    The constructor accepts regions in any order, possibly overlapping or
    adjacent; :meth:`normalized` returns the canonical form (sorted by offset,
    overlapping/adjacent regions coalesced, empties dropped).  Most algebraic
    operations are defined on the normalized form.

    :meth:`normalized` is memoized on the instance (the type is immutable, so
    the canonical form can never change), and the algebraic operations below
    produce their results directly in canonical form via single-pass merges —
    the lists sit on every entry of the segment-tree read frontier, so both
    properties matter for the metadata hot path.
    """

    __slots__ = ("_regions", "_normalized")

    def __init__(self, regions: Iterable[Region | Tuple[int, int]] = ()):
        converted: List[Region] = []
        for region in regions:
            if isinstance(region, Region):
                converted.append(region)
            else:
                offset, size = region
                converted.append(Region(int(offset), int(size)))
        self._regions: Tuple[Region, ...] = tuple(converted)
        self._normalized: Optional["RegionList"] = None

    @classmethod
    def _from_normalized(cls, regions: Sequence[Region]) -> "RegionList":
        """Wrap regions already known to be in canonical form (no re-check)."""
        instance = cls.__new__(cls)
        instance._regions = tuple(regions)
        instance._normalized = instance
        return instance

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def __getitem__(self, index: int) -> Region:
        return self._regions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionList):
            return NotImplemented
        return self._regions == other._regions

    def __hash__(self) -> int:
        return hash(self._regions)

    def __repr__(self) -> str:
        inner = ", ".join(f"({r.offset}, {r.size})" for r in self._regions)
        return f"RegionList([{inner}])"

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def regions(self) -> Tuple[Region, ...]:
        """The underlying tuple of regions (in construction order)."""
        return self._regions

    def total_bytes(self) -> int:
        """Sum of region sizes (overlapping bytes counted multiple times)."""
        return sum(region.size for region in self._regions)

    def covered_bytes(self) -> int:
        """Number of distinct bytes covered (overlaps counted once)."""
        return self.normalized().total_bytes()

    def covering_extent(self) -> Region:
        """Smallest contiguous region covering every listed region.

        This is exactly the range a POSIX-locking MPI-I/O driver must lock
        for a non-contiguous access (the paper's Section III observation).
        """
        non_empty = [region for region in self._regions if not region.empty]
        if not non_empty:
            return Region(0, 0)
        start = min(region.offset for region in non_empty)
        end = max(region.end for region in non_empty)
        return Region(start, end - start)

    def is_normalized(self) -> bool:
        """True if sorted, non-overlapping, non-adjacent, and without empties."""
        previous_end = None
        for region in self._regions:
            if region.empty:
                return False
            if previous_end is not None and region.offset <= previous_end:
                return False
            previous_end = region.end
        return True

    def is_contiguous(self) -> bool:
        """True if the normalized form is a single region (or empty)."""
        return len(self.normalized()) <= 1

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def normalized(self) -> "RegionList":
        """Canonical form: sorted, coalesced, empties removed (memoized)."""
        if self._normalized is not None:
            return self._normalized
        if self.is_normalized():
            self._normalized = self
            return self
        if len(self._regions) >= _VECTOR_THRESHOLD:
            starts = np.fromiter((r.offset for r in self._regions),
                                 dtype=np.int64, count=len(self._regions))
            sizes = np.fromiter((r.size for r in self._regions),
                                dtype=np.int64, count=len(self._regions))
            keep = sizes > 0
            starts, sizes = starts[keep], sizes[keep]
            order = np.argsort(starts, kind="stable")
            starts = starts[order]
            ends = starts + sizes[order]
            result = RegionList._from_normalized(_coalesce_runs(starts, ends))
            self._normalized = result
            return result
        non_empty = sorted(
            (region for region in self._regions if not region.empty),
            key=lambda region: (region.offset, region.end),
        )
        if not non_empty:
            result = RegionList._from_normalized(())
        else:
            merged: List[Region] = [non_empty[0]]
            for region in non_empty[1:]:
                last = merged[-1]
                if region.offset <= last.end:
                    if region.end > last.end:
                        merged[-1] = Region(last.offset, region.end - last.offset)
                else:
                    merged.append(region)
            result = RegionList._from_normalized(merged)
        self._normalized = result
        return result

    def union(self, other: "RegionList") -> "RegionList":
        """Normalized union of both region sets (linear merge)."""
        a = self.normalized()._regions
        b = other.normalized()._regions
        if not a:
            return other.normalized()
        if not b:
            return self.normalized()
        merged: List[Region] = []
        i = j = 0
        while i < len(a) or j < len(b):
            if j >= len(b) or (i < len(a) and a[i].offset <= b[j].offset):
                region = a[i]
                i += 1
            else:
                region = b[j]
                j += 1
            if merged and region.offset <= merged[-1].end:
                last = merged[-1]
                if region.end > last.end:
                    merged[-1] = Region(last.offset, region.end - last.offset)
            else:
                merged.append(region)
        return RegionList._from_normalized(merged)

    @classmethod
    def union_all(cls, lists: Sequence["RegionList"]) -> "RegionList":
        """Normalized union of many region lists in one pass.

        Replaces the O(n²) ``result = result.union(lst)`` accumulation that
        dominated collective-read planning: all offsets are gathered into flat
        arrays, sorted once, and coalesced with a running-maximum sweep.
        Small inputs stay on the pairwise linear merge, which wins below the
        vector threshold.
        """
        sources = [lst for lst in lists if lst._regions]
        if not sources:
            return cls._from_normalized(())
        if len(sources) == 1:
            return sources[0].normalized()
        total = sum(len(lst._regions) for lst in sources)
        if total < _VECTOR_THRESHOLD:
            result = sources[0]
            for other in sources[1:]:
                result = result.union(other)
            return result.normalized()
        starts = np.empty(total, dtype=np.int64)
        sizes = np.empty(total, dtype=np.int64)
        index = 0
        for lst in sources:
            for region in lst._regions:
                starts[index] = region.offset
                sizes[index] = region.size
                index += 1
        keep = sizes > 0
        starts, sizes = starts[keep], sizes[keep]
        order = np.argsort(starts, kind="stable")
        starts = starts[order]
        ends = starts + sizes[order]
        return cls._from_normalized(_coalesce_runs(starts, ends))

    def intersection(self, other: "RegionList") -> "RegionList":
        """Normalized set of bytes present in both region sets (linear merge)."""
        a = self.normalized()._regions
        b = other.normalized()._regions
        result: List[Region] = []
        i = j = 0
        while i < len(a) and j < len(b):
            start = max(a[i].offset, b[j].offset)
            end = min(a[i].end, b[j].end)
            if end > start:
                result.append(Region(start, end - start))
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return RegionList._from_normalized(result)

    def subtract(self, other: "RegionList") -> "RegionList":
        """Normalized set of bytes in ``self`` but not in ``other``.

        Single-pass sweep over the two normalized run lists: for each kept
        region the cut list is consumed monotonically, so the whole operation
        is O(len(self) + len(other)) instead of the former O(n·m) per-piece
        re-subtraction.
        """
        a = self.normalized()._regions
        b = other.normalized()._regions
        if not a or not b:
            return self.normalized()
        result: List[Region] = []
        j = 0
        for region in a:
            cursor = region.offset
            end = region.end
            # skip cuts entirely before this region
            while j < len(b) and b[j].end <= cursor:
                j += 1
            k = j
            while cursor < end and k < len(b):
                cut = b[k]
                if cut.offset >= end:
                    break
                if cut.offset > cursor:
                    result.append(Region(cursor, cut.offset - cursor))
                cursor = max(cursor, cut.end)
                if cut.end <= end:
                    k += 1
                else:
                    break
            if cursor < end:
                result.append(Region(cursor, end - cursor))
            # a cut can span the gap between two kept regions, so only the
            # cuts that end at or before this region's start are consumed
            j = k
        return RegionList._from_normalized(result)

    def overlaps(self, other: "RegionList") -> bool:
        """True if any byte is covered by both region sets (early exit)."""
        a = self.normalized()._regions
        b = other.normalized()._regions
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i].offset < b[j].end and b[j].offset < a[i].end:
                return True
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return False

    def gaps(self) -> "RegionList":
        """Regions *between* the normalized regions (holes inside the extent)."""
        norm = self.normalized()._regions
        holes: List[Region] = []
        for left, right in zip(norm, norm[1:]):
            holes.append(Region(left.end, right.offset - left.end))
        return RegionList._from_normalized(holes)

    def shift(self, delta: int) -> "RegionList":
        """Every region moved by ``delta`` bytes (order preserved)."""
        return RegionList(region.shift(delta) for region in self._regions)

    def clip(self, bounds: Region) -> "RegionList":
        """Regions clipped to ``bounds`` (pieces outside are dropped)."""
        regions = self._regions
        if self._normalized is self:
            # canonical fast path: the regions are sorted and disjoint, so
            # only a bisected window can overlap the bounds; regions fully
            # inside are reused untouched and only the (at most two)
            # boundary regions are clamped.  Clipping a canonical list only
            # shrinks/drops runs, so the result is still canonical.
            b_start, b_end = bounds.offset, bounds.end
            if b_end <= b_start or not regions:
                return RegionList._from_normalized(())
            lo, hi = 0, len(regions)
            while lo < hi:
                mid = (lo + hi) // 2
                if regions[mid].end <= b_start:
                    lo = mid + 1
                else:
                    hi = mid
            clipped: List[Region] = []
            for region in regions[lo:]:
                offset = region.offset
                if offset >= b_end:
                    break
                end = region.end
                start = offset if offset > b_start else b_start
                stop = end if end < b_end else b_end
                if start == offset and stop == end:
                    clipped.append(region)
                elif stop > start:
                    clipped.append(Region(start, stop - start))
            return RegionList._from_normalized(clipped)
        clipped = []
        for region in regions:
            piece = region.intersect(bounds)
            if not piece.empty:
                clipped.append(piece)
        return RegionList(clipped)

    def chunk_aligned(self, chunk_size: int) -> "RegionList":
        """Every region split on ``chunk_size`` boundaries (order preserved)."""
        pieces: List[Region] = []
        for region in self._regions:
            pieces.extend(region.chunk_aligned_pieces(chunk_size))
        return RegionList(pieces)

    def as_tuples(self) -> List[Tuple[int, int]]:
        """``[(offset, size), ...]`` form (construction order)."""
        return [region.as_tuple() for region in self._regions]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(cls, tuples: Sequence[Tuple[int, int]]) -> "RegionList":
        """Build from ``[(offset, size), ...]``."""
        return cls(Region(int(offset), int(size)) for offset, size in tuples)

    @classmethod
    def single(cls, offset: int, size: int) -> "RegionList":
        """A list holding one region."""
        return cls([Region(offset, size)])


def pairwise_overlap_matrix(region_lists: Sequence[RegionList]) -> List[List[bool]]:
    """Symmetric boolean matrix: entry ``[i][j]`` is True if lists i, j overlap.

    Used by the conflict-detection ADIO driver (related work [9] in the paper)
    to decide which concurrent accesses actually need mutual exclusion.
    """
    count = len(region_lists)
    matrix = [[False] * count for _ in range(count)]
    for i in range(count):
        for j in range(i + 1, count):
            conflict = region_lists[i].overlaps(region_lists[j])
            matrix[i][j] = conflict
            matrix[j][i] = conflict
    return matrix
