"""List-I/O style vectored access descriptors.

The paper extends the storage back-end's access interface so that a *single
call* can describe a complex non-contiguous access, "closely matched [to] the
List I/O interface proposal" of Ching et al. (CLUSTER'02).  These descriptor
types are that interface: an :class:`IOVector` carries an ordered list of
``(file offset, length)`` pairs plus, for writes, the corresponding payload
buffers.  Both storage backends and every ADIO driver consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.regions import Region, RegionList
from repro.errors import InvalidRegion


@dataclass(frozen=True)
class IORequest:
    """A single element of a vectored access: one byte range, one buffer.

    ``data`` is ``None`` for read requests (the buffer is produced by the
    backend) and a ``bytes`` payload of exactly ``size`` bytes for writes.
    """

    offset: int
    size: int
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise InvalidRegion(f"negative offset: {self.offset}")
        if self.size < 0:
            raise InvalidRegion(f"negative size: {self.size}")
        if self.data is not None and len(self.data) != self.size:
            raise InvalidRegion(
                f"payload length {len(self.data)} does not match size {self.size}")

    @property
    def region(self) -> Region:
        """The byte range touched by this request."""
        return Region(self.offset, self.size)

    @property
    def is_write(self) -> bool:
        """True when a payload is attached."""
        return self.data is not None


class IOVector:
    """An ordered vectored access: the unit of MPI atomicity.

    One :class:`IOVector` corresponds to one MPI-I/O call made by one rank.
    Its requests may be non-contiguous and may (between *different* vectors)
    overlap; MPI atomic mode requires that the whole vector is applied
    indivisibly with respect to other vectors.

    Within a single vector, later requests overwrite earlier ones on any
    overlapping bytes (matching the "monotonically nondecreasing file offset"
    convention of MPI datatypes is *not* required).
    """

    __slots__ = ("_requests",)

    def __init__(self, requests: Iterable[IORequest] = ()):
        self._requests: Tuple[IORequest, ...] = tuple(requests)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_write(cls, pairs: Sequence[Tuple[int, bytes]]) -> "IOVector":
        """Build a write vector from ``[(offset, payload), ...]``."""
        return cls(IORequest(offset, len(data), bytes(data)) for offset, data in pairs)

    @classmethod
    def for_read(cls, pairs: Sequence[Tuple[int, int]]) -> "IOVector":
        """Build a read vector from ``[(offset, size), ...]``."""
        return cls(IORequest(offset, size) for offset, size in pairs)

    @classmethod
    def contiguous_write(cls, offset: int, data: bytes) -> "IOVector":
        """A single-range write vector."""
        return cls([IORequest(offset, len(data), bytes(data))])

    @classmethod
    def contiguous_read(cls, offset: int, size: int) -> "IOVector":
        """A single-range read vector."""
        return cls([IORequest(offset, size)])

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[IORequest]:
        return iter(self._requests)

    def __len__(self) -> int:
        return len(self._requests)

    def __getitem__(self, index: int) -> IORequest:
        return self._requests[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOVector):
            return NotImplemented
        return self._requests == other._requests

    def __hash__(self) -> int:
        return hash(self._requests)

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"<IOVector {kind} n={len(self)} bytes={self.total_bytes()}>"

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def requests(self) -> Tuple[IORequest, ...]:
        """The underlying requests, in call order."""
        return self._requests

    @property
    def is_write(self) -> bool:
        """True if every request carries a payload (a pure write vector)."""
        return bool(self._requests) and all(req.is_write for req in self._requests)

    @property
    def is_read(self) -> bool:
        """True if no request carries a payload (a pure read vector)."""
        return all(not req.is_write for req in self._requests)

    def total_bytes(self) -> int:
        """Sum of request sizes."""
        return sum(req.size for req in self._requests)

    def region_list(self) -> RegionList:
        """The touched byte ranges (construction order, not normalized)."""
        return RegionList(req.region for req in self._requests)

    def covering_extent(self) -> Region:
        """Smallest contiguous range covering the whole vector."""
        return self.region_list().covering_extent()

    def is_contiguous(self) -> bool:
        """True when the access touches one contiguous range."""
        return self.region_list().is_contiguous()

    def overlaps(self, other: "IOVector") -> bool:
        """True if the two vectors touch at least one common byte."""
        return self.region_list().overlaps(other.region_list())

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def sorted_by_offset(self) -> "IOVector":
        """Requests re-ordered by offset (stable)."""
        return IOVector(sorted(self._requests, key=lambda req: (req.offset, req.size)))

    def coalesced(self) -> "IOVector":
        """Merge adjacent/overlapping *write* requests into larger ones.

        Later requests win on overlapping bytes, matching :meth:`apply_to`.
        Read vectors are returned with ranges normalized.
        """
        if not self._requests:
            return IOVector()
        if self.is_read:
            ranges = self.region_list().normalized()
            return IOVector.for_read([(r.offset, r.size) for r in ranges])

        extent = self.covering_extent()
        if extent.empty:
            return IOVector()
        buffer = bytearray(extent.size)
        mask = bytearray(extent.size)
        for req in self._requests:
            if req.size == 0:
                continue
            start = req.offset - extent.offset
            buffer[start:start + req.size] = req.data  # type: ignore[arg-type]
            mask[start:start + req.size] = b"\x01" * req.size

        pieces: List[Tuple[int, bytes]] = []
        run_start: Optional[int] = None
        for index in range(extent.size + 1):
            covered = index < extent.size and mask[index]
            if covered and run_start is None:
                run_start = index
            elif not covered and run_start is not None:
                pieces.append((extent.offset + run_start,
                               bytes(buffer[run_start:index])))
                run_start = None
        return IOVector.for_write(pieces)

    def apply_to(self, content: bytearray) -> None:
        """Apply the write vector in request order onto ``content`` in place.

        The target is grown with zero bytes if a request extends past its end,
        mirroring how a file grows on writes past EOF.
        """
        for req in self._requests:
            if not req.is_write:
                raise InvalidRegion("apply_to() called on a read vector")
            end = req.offset + req.size
            if end > len(content):
                content.extend(b"\x00" * (end - len(content)))
            content[req.offset:end] = req.data  # type: ignore[arg-type]

    def extract_from(self, content: bytes) -> List[bytes]:
        """Read the vector's ranges out of ``content`` (zero-filled past EOF)."""
        results: List[bytes] = []
        for req in self._requests:
            end = req.offset + req.size
            piece = content[req.offset:min(end, len(content))]
            if len(piece) < req.size:
                piece = piece + b"\x00" * (req.size - len(piece))
            results.append(bytes(piece))
        return results
