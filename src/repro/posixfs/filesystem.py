"""Synchronous facade over the Lustre-like baseline file system.

Mirrors :class:`repro.vstore.backend.VersioningBackend` for the locking-based
side: a private cluster, one MDS + ``num_osts`` OSTs, and blocking
``create`` / ``write`` / ``read`` / ``lock`` methods for single-client use
(examples, unit tests).  Multi-writer experiments instantiate
:class:`~repro.posixfs.deployment.PosixFsDeployment` on a shared cluster
instead, so that lock contention plays out in simulated time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster import Cluster, ClusterConfig
from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.posixfs.client import LockHandle
from repro.posixfs.deployment import PosixFsDeployment
from repro.posixfs.lock_manager import LockMode
from repro.posixfs.mds import FileAttributes


class PosixParallelFS:
    """Single-client, synchronous entry point to the locking-based baseline."""

    def __init__(self, num_osts: int = 4, stripe_size: int = 64 * 1024,
                 stripe_count: Optional[int] = None,
                 config: Optional[ClusterConfig] = None, seed: int = 0):
        self.cluster = Cluster(config=config, seed=seed)
        self.deployment = PosixFsDeployment(
            self.cluster, num_osts=num_osts,
            default_stripe_size=stripe_size,
            default_stripe_count=stripe_count)
        self._client_node = self.cluster.add_node("posix-facade-client",
                                                  role="compute")
        self.client = self.deployment.client(self._client_node, name="facade")

    # ------------------------------------------------------------------
    def _run(self, generator):
        process = self.cluster.sim.process(generator, name="posix-facade-op")
        return self.cluster.sim.run(stop_event=process)

    # ------------------------------------------------------------------
    def create(self, path: str, stripe_size: Optional[int] = None,
               stripe_count: Optional[int] = None) -> FileAttributes:
        """Create a file with the given striping."""
        return self._run(self.client.create(path, stripe_size, stripe_count))

    def stat(self, path: str) -> FileAttributes:
        """File attributes (size, layout)."""
        return self._run(self.client.stat(path))

    def write(self, path: str, offset: int, data: bytes) -> int:
        """POSIX-atomic contiguous write."""
        return self._run(self.client.write(path, offset, bytes(data)))

    def read(self, path: str, offset: int, size: int) -> bytes:
        """POSIX-atomic contiguous read."""
        return self._run(self.client.read(path, offset, size))

    def write_vector(self, path: str,
                     pairs: Sequence[Tuple[int, bytes]]) -> int:
        """Non-atomic vectored write (one POSIX write per range)."""
        return self._run(self.client.write_vector(path, IOVector.for_write(pairs)))

    def read_vector(self, path: str,
                    pairs: Sequence[Tuple[int, int]]) -> List[bytes]:
        """Vectored read (one POSIX read per range)."""
        return self._run(self.client.read_vector(path, IOVector.for_read(pairs)))

    def lock(self, path: str, offset: int, size: int,
             exclusive: bool = True) -> LockHandle:
        """Acquire an advisory (fcntl-style) byte-range lock."""
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        return self._run(self.client.lock_extent(path, offset, size, mode))

    def unlock(self, handle: LockHandle) -> None:
        """Release an advisory lock handle."""
        self._run(self.client.unlock(handle))

    def stats(self) -> dict:
        """Cluster + storage statistics."""
        combined = dict(self.cluster.stats())
        combined.update(self.deployment.stats())
        return combined
