"""Object storage targets (OSTs): the striped data servers of the baseline."""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.cluster.rpc import Service
from repro.errors import FileSystemError
from repro.posixfs.lock_manager import LockManager, SimLockService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node


class ObjectStore:
    """Pure per-OST object storage: object id -> growable byte array."""

    def __init__(self, ost_id: str):
        self.ost_id = ost_id
        self._objects: Dict[str, bytearray] = {}
        self.bytes_written: int = 0
        self.bytes_read: int = 0

    # ------------------------------------------------------------------
    def write_range(self, object_id: str, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset`` of the object (growing it with zeros)."""
        if offset < 0:
            raise FileSystemError(f"negative object offset {offset}")
        obj = self._objects.setdefault(object_id, bytearray())
        end = offset + len(data)
        if end > len(obj):
            obj.extend(b"\x00" * (end - len(obj)))
        obj[offset:end] = data
        self.bytes_written += len(data)
        return len(data)

    def read_range(self, object_id: str, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset`` (zero-filled past the object end)."""
        if offset < 0 or size < 0:
            raise FileSystemError(f"invalid object read ({offset}, {size})")
        obj = self._objects.get(object_id, bytearray())
        piece = bytes(obj[offset:offset + size])
        if len(piece) < size:
            piece += b"\x00" * (size - len(piece))
        self.bytes_read += size
        return piece

    def object_size(self, object_id: str) -> int:
        """Current length of the stored object (0 if never written)."""
        return len(self._objects.get(object_id, b""))

    def object_count(self) -> int:
        """Number of distinct objects stored on this OST."""
        return len(self._objects)

    def stored_bytes(self) -> int:
        """Total bytes held by this OST."""
        return sum(len(obj) for obj in self._objects.values())


class SimOST(Service):
    """One object storage target: disk-backed object store + its lock service.

    The lock service for the stripes this OST owns is co-located on the same
    node (Lustre's design); it is a separate :class:`Service` so that its
    traffic is accounted independently, but shares the node and its NIC.
    """

    def __init__(self, node: "Node", store: Optional[ObjectStore] = None):
        super().__init__(node, name=f"ost:{node.name}")
        self.store = store or ObjectStore(ost_id=node.name)
        self.locks = SimLockService(node, LockManager(manager_id=f"ldlm:{node.name}"))

    # ------------------------------------------------------------------
    # RPC handlers (generator methods)
    # ------------------------------------------------------------------
    def write_range(self, object_id: str, offset: int, data: bytes):
        """Write one stripe piece, charging disk time."""
        yield from self.node.disk_io(len(data))
        return self.store.write_range(object_id, offset, data)

    def read_range(self, object_id: str, offset: int, size: int):
        """Read one stripe piece, charging disk time."""
        yield from self.node.disk_io(size)
        return self.store.read_range(object_id, offset, size)
