"""Striping layout: mapping file byte ranges onto object storage targets.

A file with stripe size ``s`` over ``n`` OSTs places byte
``offset`` in stripe ``offset // s``; stripe ``k`` lives on OST
``k % n`` at object offset ``(k // n) * s + (offset % s)`` — the classic
RAID-0 / Lustre layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.regions import Region, RegionList
from repro.errors import InvalidRegion


@dataclass(frozen=True)
class StripePiece:
    """One stripe-aligned piece of a file byte range."""

    ost_index: int
    object_offset: int
    length: int
    file_offset: int


@dataclass(frozen=True)
class StripeLayout:
    """Striping parameters of one file."""

    stripe_size: int
    ost_count: int

    def __post_init__(self) -> None:
        if self.stripe_size <= 0:
            raise InvalidRegion(f"stripe_size must be positive, got {self.stripe_size}")
        if self.ost_count <= 0:
            raise InvalidRegion(f"ost_count must be positive, got {self.ost_count}")

    # ------------------------------------------------------------------
    def map_region(self, region: Region) -> List[StripePiece]:
        """Split a file byte range into per-OST object pieces."""
        pieces: List[StripePiece] = []
        for part in region.chunk_aligned_pieces(self.stripe_size):
            stripe_index = part.offset // self.stripe_size
            ost_index = stripe_index % self.ost_count
            object_offset = ((stripe_index // self.ost_count) * self.stripe_size
                             + part.offset % self.stripe_size)
            pieces.append(StripePiece(
                ost_index=ost_index,
                object_offset=object_offset,
                length=part.size,
                file_offset=part.offset,
            ))
        return pieces

    def map_regions(self, regions: RegionList) -> List[StripePiece]:
        """Map every region of a list (construction order preserved)."""
        pieces: List[StripePiece] = []
        for region in regions:
            pieces.extend(self.map_region(region))
        return pieces

    def osts_for_region(self, region: Region) -> List[int]:
        """Sorted list of distinct OST indices a byte range touches."""
        return sorted({piece.ost_index for piece in self.map_region(region)})

    def osts_for_regions(self, regions: RegionList) -> List[int]:
        """Sorted list of distinct OST indices a set of byte ranges touches."""
        indices = set()
        for region in regions:
            indices.update(self.osts_for_region(region))
        return sorted(indices)
