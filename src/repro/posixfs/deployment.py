"""Deployment of the Lustre-like file system on a simulated cluster."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.errors import FileSystemError
from repro.posixfs.client import PosixClient
from repro.posixfs.mds import MetadataServer, SimMetadataServer
from repro.posixfs.ost import SimOST

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node


class PosixFsDeployment:
    """One MDS plus ``num_osts`` object storage targets (each with a disk)."""

    def __init__(self, cluster: "Cluster", num_osts: int = 4,
                 default_stripe_size: int = 64 * 1024,
                 default_stripe_count: Optional[int] = None,
                 node_prefix: str = "pfs"):
        if num_osts <= 0:
            raise FileSystemError("a deployment needs at least one OST")
        self.cluster = cluster
        self.default_stripe_size = default_stripe_size
        self.default_stripe_count = default_stripe_count or num_osts

        mds_node = cluster.add_node(f"{node_prefix}-mds", role="mds")
        self.mds = SimMetadataServer(
            mds_node, MetadataServer(default_stripe_size, self.default_stripe_count))

        self.osts: List[SimOST] = []
        for index in range(num_osts):
            node = cluster.add_node(f"{node_prefix}-ost{index}", role="ost",
                                    with_disk=True)
            self.osts.append(SimOST(node))

        self._client_counter = 0

    # ------------------------------------------------------------------
    def client(self, node: "Node", name: Optional[str] = None) -> PosixClient:
        """Create a client bound to ``node``."""
        self._client_counter += 1
        return PosixClient(self, node, name or f"posixclient{self._client_counter}")

    def stats(self) -> dict:
        """Aggregate storage-side statistics for benchmark reports."""
        return {
            "osts": len(self.osts),
            "stored_bytes": sum(ost.store.stored_bytes() for ost in self.osts),
            "objects": sum(ost.store.object_count() for ost in self.osts),
            "files": self.mds.server.file_count(),
            "locks_granted": sum(ost.locks.manager.locks_granted for ost in self.osts),
            "locks_queued": sum(ost.locks.manager.locks_queued for ost in self.osts),
            "lock_wait_time": sum(ost.locks.total_wait_time for ost in self.osts),
        }
