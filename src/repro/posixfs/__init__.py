"""The locking-based baseline: a Lustre-like striped parallel file system.

This is the storage back-end the paper compares against: a POSIX-compliant
parallel file system where

* file data is striped round-robin over several **object storage targets**
  (:mod:`repro.posixfs.ost`), each with its own disk;
* a **metadata server** (:mod:`repro.posixfs.mds`) owns the namespace and the
  striping layout of each file;
* POSIX atomicity of individual contiguous reads/writes is enforced with
  **distributed byte-range locks** managed by the storage servers that own
  the affected stripes (:mod:`repro.posixfs.lock_manager`), exactly as the
  paper describes for Lustre/GPFS;
* an **fcntl-style advisory lock space** is exposed to upper layers; the
  locking ADIO drivers of :mod:`repro.mpiio` use it to extend POSIX atomicity
  to non-contiguous MPI accesses by locking the covering extent (or each
  range) of an access — the very serialization the paper's versioning
  approach eliminates.
"""

from repro.posixfs.layout import StripeLayout, StripePiece
from repro.posixfs.lock_manager import LockManager, LockMode, LockRequest
from repro.posixfs.mds import FileAttributes, MetadataServer, SimMetadataServer
from repro.posixfs.ost import ObjectStore, SimOST
from repro.posixfs.client import PosixClient
from repro.posixfs.deployment import PosixFsDeployment
from repro.posixfs.filesystem import PosixParallelFS

__all__ = [
    "StripeLayout",
    "StripePiece",
    "LockManager",
    "LockMode",
    "LockRequest",
    "FileAttributes",
    "MetadataServer",
    "SimMetadataServer",
    "ObjectStore",
    "SimOST",
    "PosixClient",
    "PosixFsDeployment",
    "PosixParallelFS",
]
