"""Distributed byte-range lock manager.

Each object storage target runs one :class:`LockManager` instance that
controls the byte ranges of the stripes it hosts (mirroring Lustre's LDLM,
where "locks are stored and managed on the storage servers hosting the
objects they control", as the paper puts it).  Two independent lock spaces
coexist, distinguished by the ``file_id`` prefix used by the client:

* ``data:<path>`` — the file system's own extent locks giving POSIX atomicity
  to individual contiguous reads/writes;
* ``fcntl:<path>`` — the advisory locks exposed to upper layers, which the
  locking ADIO drivers use to make whole non-contiguous MPI accesses atomic.

Grant policy: FIFO with conflict checks against both granted locks and
*earlier waiting* requests — i.e. fair queueing, no starvation, no barging.
The manager itself is pure (no simulation types); the service wrapper
:class:`SimLockService` turns grant callbacks into simulation events so that
waiting writers consume simulated time, which is precisely the cost the
paper's versioning approach avoids.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.regions import Region
from repro.cluster.rpc import Service
from repro.errors import LockError, LockNotHeld

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node


class LockMode(enum.Enum):
    """Lock compatibility modes."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def conflicts_with(self, other: "LockMode") -> bool:
        """Two shared locks are compatible; everything else conflicts."""
        return not (self is LockMode.SHARED and other is LockMode.SHARED)


@dataclass
class LockRequest:
    """One byte-range lock request (also the token used to release it)."""

    token: int
    file_id: str
    region: Region
    mode: LockMode
    owner: str
    granted: bool = False
    released: bool = False
    #: simulated time at which the lock was requested / granted (filled by the
    #: service wrapper; used by the benchmark harness to report wait times)
    requested_at: float = 0.0
    granted_at: float = 0.0
    on_grant: Optional[Callable[["LockRequest"], None]] = field(default=None,
                                                                repr=False)

    def conflicts_with(self, other: "LockRequest") -> bool:
        """True if the two requests cannot be held simultaneously."""
        return (self.file_id == other.file_id
                and self.region.overlaps(other.region)
                and self.mode.conflicts_with(other.mode))

    @property
    def wait_time(self) -> float:
        """Simulated time spent waiting for the grant."""
        return max(0.0, self.granted_at - self.requested_at)


class LockManager:
    """Pure byte-range lock table with fair FIFO granting."""

    def __init__(self, manager_id: str = "lockmgr"):
        self.manager_id = manager_id
        self._tokens = itertools.count(1)
        self._granted: Dict[str, List[LockRequest]] = {}
        self._waiting: Dict[str, List[LockRequest]] = {}
        self._by_token: Dict[int, LockRequest] = {}
        #: benchmark counters
        self.locks_granted: int = 0
        self.locks_queued: int = 0

    # ------------------------------------------------------------------
    def request(self, file_id: str, region: Region, mode: LockMode, owner: str,
                on_grant: Optional[Callable[[LockRequest], None]] = None,
                ) -> LockRequest:
        """Ask for a lock; it is granted immediately when compatible.

        When the lock cannot be granted yet the request is queued and
        ``on_grant`` will be invoked at grant time.
        """
        if region.empty:
            raise LockError("cannot lock an empty byte range")
        request = LockRequest(token=next(self._tokens), file_id=file_id,
                              region=region, mode=mode, owner=owner,
                              on_grant=on_grant)
        self._by_token[request.token] = request
        self._waiting.setdefault(file_id, []).append(request)
        self._dispatch(file_id)
        if not request.granted:
            self.locks_queued += 1
        return request

    def release(self, token: int) -> None:
        """Release a granted lock (or cancel a still-queued request)."""
        request = self._by_token.get(token)
        if request is None or request.released:
            raise LockNotHeld(f"token {token} does not name a held lock")
        request.released = True
        del self._by_token[token]
        if request.granted:
            self._granted[request.file_id].remove(request)
        else:
            self._waiting[request.file_id].remove(request)
        self._dispatch(request.file_id)

    # ------------------------------------------------------------------
    def _dispatch(self, file_id: str) -> None:
        """Grant every queued request allowed by fair FIFO ordering."""
        waiting = self._waiting.get(file_id, [])
        granted = self._granted.setdefault(file_id, [])
        still_waiting: List[LockRequest] = []
        for request in waiting:
            blocked = any(request.conflicts_with(holder) for holder in granted)
            if not blocked:
                # fairness: do not overtake an earlier conflicting waiter
                blocked = any(request.conflicts_with(earlier)
                              for earlier in still_waiting)
            if blocked:
                still_waiting.append(request)
            else:
                request.granted = True
                granted.append(request)
                self.locks_granted += 1
                if request.on_grant is not None:
                    request.on_grant(request)
        self._waiting[file_id] = still_waiting

    # ------------------------------------------------------------------
    def held_locks(self, file_id: str) -> List[LockRequest]:
        """Currently granted locks on ``file_id``."""
        return list(self._granted.get(file_id, []))

    def queued_locks(self, file_id: str) -> List[LockRequest]:
        """Currently waiting requests on ``file_id``."""
        return list(self._waiting.get(file_id, []))

    def is_held(self, token: int) -> bool:
        """True if ``token`` names a granted, unreleased lock."""
        request = self._by_token.get(token)
        return bool(request and request.granted and not request.released)


class SimLockService(Service):
    """A lock manager deployed on a storage node (one per OST).

    The ``acquire`` handler blocks the calling process (via a simulation
    event) until the lock is granted, so lock contention directly turns into
    simulated waiting time.
    """

    def __init__(self, node: "Node", manager: Optional[LockManager] = None):
        super().__init__(node, name=f"locks:{node.name}")
        self.manager = manager or LockManager(manager_id=node.name)
        #: cumulative simulated time writers spent waiting for locks here
        self.total_wait_time: float = 0.0

    # ------------------------------------------------------------------
    # RPC handlers (generator methods)
    # ------------------------------------------------------------------
    def acquire(self, file_id: str, offset: int, size: int, mode: LockMode,
                owner: str):
        """Acquire a byte-range lock, waiting if it conflicts."""
        sim = self.node.sim
        grant_event = sim.event()
        request = self.manager.request(
            file_id, Region(offset, size), mode, owner,
            on_grant=lambda req: grant_event.succeed(req))
        request.requested_at = sim.now
        if not request.granted:
            yield grant_event
        request.granted_at = sim.now
        self.total_wait_time += request.wait_time
        return request.token

    def release(self, token: int):
        """Release a previously acquired lock."""
        self.manager.release(token)
        return None
        yield  # pragma: no cover - makes this a generator function

    def try_acquire(self, file_id: str, offset: int, size: int, mode: LockMode,
                    owner: str):
        """Non-blocking acquire: returns the token or ``None`` if it conflicts."""
        probe = LockRequest(token=-1, file_id=file_id, region=Region(offset, size),
                            mode=mode, owner=owner)
        conflicts = any(probe.conflicts_with(holder)
                        for holder in self.manager.held_locks(file_id))
        conflicts = conflicts or any(probe.conflicts_with(waiter)
                                     for waiter in self.manager.queued_locks(file_id))
        if conflicts:
            return None
        request = self.manager.request(file_id, Region(offset, size), mode, owner)
        request.requested_at = request.granted_at = self.node.sim.now
        return request.token
        yield  # pragma: no cover - makes this a generator function
