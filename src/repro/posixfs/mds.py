"""The metadata server: namespace and striping layout of the baseline FS."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.cluster.rpc import Service
from repro.errors import FileExists, FileNotFound
from repro.posixfs.layout import StripeLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node


@dataclass
class FileAttributes:
    """Inode-like attributes of one file."""

    path: str
    inode: int
    layout: StripeLayout
    size: int = 0

    def object_id(self, ost_index: int) -> str:
        """Identifier of this file's object on a given OST."""
        return f"inode{self.inode}@ost{ost_index}"


class MetadataServer:
    """Pure namespace + layout bookkeeping."""

    def __init__(self, default_stripe_size: int = 64 * 1024,
                 default_stripe_count: int = 4):
        self.default_stripe_size = default_stripe_size
        self.default_stripe_count = default_stripe_count
        self._files: Dict[str, FileAttributes] = {}
        self._next_inode = 1

    # ------------------------------------------------------------------
    def create(self, path: str, stripe_size: Optional[int] = None,
               stripe_count: Optional[int] = None,
               exist_ok: bool = False) -> FileAttributes:
        """Create a file with the given striping (or the defaults)."""
        if path in self._files:
            if exist_ok:
                return self._files[path]
            raise FileExists(f"file {path!r} already exists")
        layout = StripeLayout(
            stripe_size=stripe_size or self.default_stripe_size,
            ost_count=stripe_count or self.default_stripe_count,
        )
        attributes = FileAttributes(path=path, inode=self._next_inode, layout=layout)
        self._next_inode += 1
        self._files[path] = attributes
        return attributes

    def lookup(self, path: str) -> FileAttributes:
        """Attributes of an existing file."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        """True if ``path`` names a file."""
        return path in self._files

    def update_size(self, path: str, new_end: int) -> int:
        """Grow the recorded file size to at least ``new_end``; return the size."""
        attributes = self.lookup(path)
        attributes.size = max(attributes.size, new_end)
        return attributes.size

    def unlink(self, path: str) -> None:
        """Remove a file from the namespace (objects are left to the OSTs)."""
        if path not in self._files:
            raise FileNotFound(f"no such file: {path!r}")
        del self._files[path]

    def file_count(self) -> int:
        """Number of files in the namespace."""
        return len(self._files)


class SimMetadataServer(Service):
    """The MDS deployed on a cluster node (control-plane RPCs only)."""

    def __init__(self, node: "Node", server: Optional[MetadataServer] = None,
                 default_stripe_size: int = 64 * 1024,
                 default_stripe_count: int = 4):
        super().__init__(node, name="mds")
        self.server = server or MetadataServer(default_stripe_size,
                                               default_stripe_count)

    # ------------------------------------------------------------------
    # RPC handlers (generator methods)
    # ------------------------------------------------------------------
    def create(self, path: str, stripe_size: Optional[int] = None,
               stripe_count: Optional[int] = None, exist_ok: bool = False):
        """Create a file entry."""
        return self.server.create(path, stripe_size, stripe_count, exist_ok)
        yield  # pragma: no cover - makes this a generator function

    def lookup(self, path: str):
        """Open / stat an existing file."""
        return self.server.lookup(path)
        yield  # pragma: no cover - makes this a generator function

    def update_size(self, path: str, new_end: int):
        """Record a size extension after a write past EOF."""
        return self.server.update_size(path, new_end)
        yield  # pragma: no cover - makes this a generator function
