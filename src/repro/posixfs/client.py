"""POSIX client of the Lustre-like baseline file system.

The client implements the semantics the paper attributes to POSIX parallel
file systems:

* a single contiguous :meth:`PosixClient.write` or :meth:`PosixClient.read`
  is atomic — internally it takes exclusive (resp. shared) extent locks on
  the OSTs owning the touched stripes before moving data;
* nothing stronger is guaranteed across *sets* of writes, so upper layers
  (the locking ADIO drivers) must build MPI atomicity themselves out of the
  fcntl-style advisory locks exposed by :meth:`PosixClient.lock_regions` /
  :meth:`PosixClient.unlock`.

Lock ordering: locks are always acquired in (OST index, offset) order, which
rules out deadlocks between clients acquiring multiple sub-locks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.core.regions import Region, RegionList
from repro.errors import FileSystemError, LockNotHeld
from repro.posixfs.lock_manager import LockMode
from repro.posixfs.mds import FileAttributes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.posixfs.deployment import PosixFsDeployment


class LockHandle:
    """Token set returned by :meth:`PosixClient.lock_regions`."""

    __slots__ = ("entries", "acquired_at", "wait_time")

    def __init__(self, entries: List[Tuple[int, int]], acquired_at: float,
                 wait_time: float):
        #: list of (ost_index, token)
        self.entries = entries
        self.acquired_at = acquired_at
        self.wait_time = wait_time


class PosixClient:
    """Client-side access to a :class:`~repro.posixfs.deployment.PosixFsDeployment`."""

    def __init__(self, deployment: "PosixFsDeployment", node: "Node",
                 name: Optional[str] = None):
        self.deployment = deployment
        self.cluster = deployment.cluster
        self.node = node
        self.name = name or f"posix:{node.name}"
        self._attributes: Dict[str, FileAttributes] = {}
        #: client-side counters (aggregated by the benchmark harness)
        self.bytes_written: int = 0
        self.bytes_read: int = 0
        self.lock_wait_time: float = 0.0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _rpc(self, service, method, request_bytes, response_bytes, *args):
        result = yield from self.cluster.rpc.call(
            self.node, service, method, request_bytes, response_bytes, *args)
        return result

    def _control(self, service, method, *args):
        size = self.cluster.config.control_message_size
        result = yield from self._rpc(service, method, size, size, *args)
        return result

    def _attrs(self, path: str):
        if path not in self._attributes:
            attributes = yield from self._control(self.deployment.mds, "lookup", path)
            self._attributes[path] = attributes
        return self._attributes[path]

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, path: str, stripe_size: Optional[int] = None,
               stripe_count: Optional[int] = None, exist_ok: bool = False):
        """Create a file (choosing its striping) and cache its attributes."""
        attributes = yield from self._control(
            self.deployment.mds, "create", path, stripe_size, stripe_count, exist_ok)
        self._attributes[path] = attributes
        return attributes

    def open(self, path: str):
        """Fetch (and cache) the attributes of an existing file."""
        attributes = yield from self._attrs(path)
        return attributes

    def stat(self, path: str):
        """Fresh attributes from the MDS (size included)."""
        attributes = yield from self._control(self.deployment.mds, "lookup", path)
        self._attributes[path] = attributes
        return attributes

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    def lock_regions(self, path: str, regions: RegionList, mode: LockMode,
                     namespace: str = "fcntl"):
        """Acquire byte-range locks covering ``regions`` on every involved OST.

        Locks are taken in (OST index, offset) order; the returned
        :class:`LockHandle` releases them all.  ``namespace`` separates the
        advisory (``fcntl``) space used by the MPI-I/O drivers from the file
        system's internal ``data`` space.
        """
        attributes = yield from self._attrs(path)
        started = self.cluster.sim.now
        normalized = regions.normalized()
        if len(normalized) == 0:
            return LockHandle([], started, 0.0)
        file_id = f"{namespace}:{path}"

        # group the byte ranges by the OST that owns them, keep global order
        per_ost: Dict[int, List[Region]] = {}
        for region in normalized:
            for piece in attributes.layout.map_region(region):
                per_ost.setdefault(piece.ost_index, []).append(
                    Region(piece.file_offset, piece.length))

        entries: List[Tuple[int, int]] = []
        for ost_index in sorted(per_ost):
            ost = self.deployment.osts[ost_index]
            ranges = RegionList(per_ost[ost_index]).normalized()
            for region in ranges:
                token = yield from self._control(
                    ost.locks, "acquire", file_id, region.offset, region.size,
                    mode, self.name)
                entries.append((ost_index, token))

        handle = LockHandle(entries, self.cluster.sim.now,
                            self.cluster.sim.now - started)
        self.lock_wait_time += handle.wait_time
        return handle

    def lock_extent(self, path: str, offset: int, size: int, mode: LockMode,
                    namespace: str = "fcntl"):
        """Lock one contiguous extent (convenience wrapper)."""
        handle = yield from self.lock_regions(
            path, RegionList.single(offset, size), mode, namespace)
        return handle

    def unlock(self, handle: LockHandle):
        """Release every lock of a handle."""
        if handle is None:
            raise LockNotHeld("unlock() of a missing handle")
        for ost_index, token in reversed(handle.entries):
            ost = self.deployment.osts[ost_index]
            yield from self._control(ost.locks, "release", token)
        handle.entries = []
        return None

    # ------------------------------------------------------------------
    # POSIX data path
    # ------------------------------------------------------------------
    def write(self, path: str, offset: int, data: bytes, _locked: bool = False):
        """POSIX-atomic contiguous write.

        The implicit exclusive extent lock (``data`` namespace) makes the
        write atomic with respect to other contiguous reads/writes — the
        POSIX guarantee the paper says is *not* sufficient for MPI atomicity.
        ``_locked=True`` skips it when an upper layer already serialized the
        access (the covering-extent ADIO driver does this to avoid paying the
        internal lock twice).
        """
        if not data:
            return 0
        attributes = yield from self._attrs(path)
        handle = None
        if not _locked:
            handle = yield from self.lock_regions(
                path, RegionList.single(offset, len(data)),
                LockMode.EXCLUSIVE, namespace="data")

        write_processes = []
        for piece in attributes.layout.map_region(Region(offset, len(data))):
            ost = self.deployment.osts[piece.ost_index]
            payload = data[piece.file_offset - offset:
                           piece.file_offset - offset + piece.length]
            write_processes.append(self.cluster.sim.process(
                self._rpc(ost, "write_range", piece.length,
                          self.cluster.config.control_message_size,
                          attributes.object_id(piece.ost_index),
                          piece.object_offset, payload),
                name=f"{self.name}:write:{piece.ost_index}"))
        if write_processes:
            yield self.cluster.sim.all_of(write_processes)

        yield from self._control(self.deployment.mds, "update_size",
                                 path, offset + len(data))
        if handle is not None:
            yield from self.unlock(handle)
        self.bytes_written += len(data)
        return len(data)

    def read(self, path: str, offset: int, size: int, _locked: bool = False):
        """POSIX-atomic contiguous read."""
        if size == 0:
            return b""
        attributes = yield from self._attrs(path)
        handle = None
        if not _locked:
            handle = yield from self.lock_regions(
                path, RegionList.single(offset, size),
                LockMode.SHARED, namespace="data")

        pieces: List[Tuple[int, bytes]] = []

        def fetch(piece):
            data = yield from self._rpc(
                self.deployment.osts[piece.ost_index], "read_range",
                self.cluster.config.control_message_size, piece.length,
                attributes.object_id(piece.ost_index), piece.object_offset,
                piece.length)
            pieces.append((piece.file_offset, data))

        read_processes = [
            self.cluster.sim.process(fetch(piece), name=f"{self.name}:read")
            for piece in attributes.layout.map_region(Region(offset, size))
        ]
        if read_processes:
            yield self.cluster.sim.all_of(read_processes)
        if handle is not None:
            yield from self.unlock(handle)

        buffer = bytearray(size)
        for file_offset, data in pieces:
            start = file_offset - offset
            buffer[start:start + len(data)] = data
        self.bytes_read += size
        return bytes(buffer)

    # ------------------------------------------------------------------
    # vectored helpers used by the ADIO drivers
    # ------------------------------------------------------------------
    def write_vector(self, path: str, vector: IOVector, _locked: bool = False):
        """Issue the vector's writes one contiguous POSIX write at a time.

        No atomicity is guaranteed across the requests — that is exactly the
        gap the locking ADIO drivers must close with advisory locks.
        """
        total = 0
        for request in vector:
            if not request.is_write:
                raise FileSystemError("write_vector() needs a write vector")
            written = yield from self.write(path, request.offset, request.data,
                                            _locked=_locked)
            total += written
        return total

    def read_vector(self, path: str, vector: IOVector, _locked: bool = False):
        """Issue the vector's reads one contiguous POSIX read at a time."""
        results: List[bytes] = []
        for request in vector:
            data = yield from self.read(path, request.offset, request.size,
                                        _locked=_locked)
            results.append(data)
        return results
