"""Node-local shared-cache workload: independent readers on shared nodes.

The access shapes that separate the cache tiers and eviction policies of the
node-local shared metadata cache:

``identical``
    Every client reads the *same* section of the dump in every round (a
    different section per round).  Co-located clients resolve identical
    metadata lookups, so with a shared tier only the node's first toucher
    fetches — metadata RPCs per logical read approach ``1 / ranks_per_node``
    of the private-cache baseline.  This is the "parallel analysis processes
    scanning one dump" pattern.

``streaming``
    Every client scans its *own* fresh section each round and never revisits
    a leaf — zero leaf reuse, but every traversal still descends through the
    same upper tree levels.  Under a small shared-cache capacity this is the
    pattern that separates eviction policies: plain LRU lets the leaf stream
    flush the shared upper levels, the level-aware policy pins them.

Contents are deterministic (a per-block byte pattern), so every read's
expected bytes are known in closed form and all cache configurations must
return byte-identical data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import BenchmarkError

PATTERNS = ("identical", "streaming")


@dataclass(frozen=True)
class SharedScanWorkload:
    """Parameters of the independent-scan pattern."""

    num_clients: int
    rounds: int = 4
    blocks_per_round: int = 8
    block_size: int = 4096
    pattern: str = "identical"

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise BenchmarkError("num_clients must be positive")
        if self.rounds <= 0 or self.blocks_per_round <= 0 \
                or self.block_size <= 0:
            raise BenchmarkError("rounds/blocks/block_size must be positive")
        if self.pattern not in PATTERNS:
            raise BenchmarkError(
                f"unknown pattern {self.pattern!r}; choose from {PATTERNS}")

    # ------------------------------------------------------------------
    @property
    def section_size(self) -> int:
        """Bytes of one scan section."""
        return self.blocks_per_round * self.block_size

    @property
    def num_sections(self) -> int:
        """Sections the file holds (streaming needs one per client-round)."""
        if self.pattern == "identical":
            return self.rounds
        return self.rounds * self.num_clients

    @property
    def file_size(self) -> int:
        """Size of the shared dump."""
        return self.num_sections * self.section_size

    # ------------------------------------------------------------------
    def section_index(self, client: int, round_index: int) -> int:
        """Which section one client scans in one round."""
        self._validate(client, round_index)
        if self.pattern == "identical":
            return round_index
        return round_index * self.num_clients + client

    def read_pairs(self, client: int,
                   round_index: int) -> List[Tuple[int, int]]:
        """``(offset, size)`` pairs of one client's scan in one round."""
        base = self.section_index(client, round_index) * self.section_size
        return [(base, self.section_size)]

    def expected_contents(self) -> bytes:
        """Reference contents of the whole dump (per-block byte pattern)."""
        return b"".join(bytes([(index * 31 + 7) % 251 + 1]) * self.block_size
                        for index in range(self.num_sections
                                           * self.blocks_per_round))

    def expected_pieces(self, client: int, round_index: int) -> bytes:
        """The bytes one client's scan must return, concatenated."""
        content = self.expected_contents()
        return b"".join(content[offset:offset + size]
                        for offset, size in self.read_pairs(client,
                                                            round_index))

    def total_read_bytes(self) -> int:
        """Bytes fetched over all clients and rounds."""
        return self.num_clients * self.rounds * self.section_size

    def _validate(self, client: int, round_index: int) -> None:
        if not 0 <= client < self.num_clients:
            raise BenchmarkError(f"client {client} out of range")
        if not 0 <= round_index < self.rounds:
            raise BenchmarkError(f"round {round_index} out of range")
