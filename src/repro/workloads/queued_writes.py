"""Queued-small-writes workload: trains of small vectored writes per rank.

Checkpointing codes and tile writers rarely emit one big vector: they issue
*many small* noncontiguous writes back to back (per variable, per row block,
per timestep slice) and only need them visible at a sync point.  This
workload models that pattern for the write-pipeline benchmarks: every client
owns a disjoint span of the shared file and issues ``writes_per_client``
vectored writes of ``regions_per_write`` small regions each.

The regions of consecutive writes *interleave* in file order (write ``w``
takes every ``writes_per_client``-th slot starting at ``w``), so the writes
of one client touch overlapping segment-tree paths — exactly the case where
coalescing them into one snapshot collapses the copy-on-write metadata as
well as the control round-trips.  Client spans are disjoint, which keeps the
final file contents independent of cross-client commit order: every write
mode must produce byte-identical data, so the benchmark can assert
equivalence (overlapping-writer semantics are covered by the atomicity
property tests instead).

An optional ``hole_size`` leaves never-written gaps between regions, keeping
zero-fill resolution in the measured read-back path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class QueuedWritesWorkload:
    """Parameters of the queued-small-writes pattern."""

    num_clients: int
    writes_per_client: int = 8
    regions_per_write: int = 4
    region_size: int = 8 * 1024
    hole_size: int = 0

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise BenchmarkError("num_clients must be positive")
        if self.writes_per_client <= 0:
            raise BenchmarkError("writes_per_client must be positive")
        if self.regions_per_write <= 0:
            raise BenchmarkError("regions_per_write must be positive")
        if self.region_size <= 0:
            raise BenchmarkError("region_size must be positive")
        if self.hole_size < 0:
            raise BenchmarkError("hole_size must be non-negative")

    # ------------------------------------------------------------------
    @property
    def slot_size(self) -> int:
        """One region plus its trailing hole."""
        return self.region_size + self.hole_size

    @property
    def slots_per_client(self) -> int:
        """Total regions one client writes over all its queued writes."""
        return self.writes_per_client * self.regions_per_write

    @property
    def client_span(self) -> int:
        """Bytes of the file owned by one client (regions plus holes)."""
        return self.slots_per_client * self.slot_size

    @property
    def file_size(self) -> int:
        """Size of the shared file."""
        return self.num_clients * self.client_span

    # ------------------------------------------------------------------
    def write_offsets(self, rank: int, write_index: int) -> List[int]:
        """File offsets of the regions of one queued write.

        Write ``w`` of a client takes slots ``w, w + writes_per_client,
        w + 2*writes_per_client, ...`` inside the client's span, so
        consecutive writes interleave in file order.
        """
        self._validate(rank, write_index)
        base = rank * self.client_span
        return [base + (i * self.writes_per_client + write_index) * self.slot_size
                for i in range(self.regions_per_write)]

    def write_pairs(self, rank: int, write_index: int) -> List[Tuple[int, bytes]]:
        """``(offset, payload)`` pairs of one queued write (deterministic)."""
        pairs = []
        for region, offset in enumerate(self.write_offsets(rank, write_index)):
            fill = 1 + (rank * 131 + write_index * 17 + region * 7) % 255
            pairs.append((offset, bytes([fill]) * self.region_size))
        return pairs

    def client_write_vectors(self, rank: int) -> List[List[Tuple[int, bytes]]]:
        """Every queued write of one client, in issue order."""
        return [self.write_pairs(rank, write_index)
                for write_index in range(self.writes_per_client)]

    def read_pairs(self, rank: int) -> List[Tuple[int, int]]:
        """The read-back access: one whole-span range per client.

        Spans include the holes, so the read path resolves both written
        segments and zero-filled gaps.
        """
        if not 0 <= rank < self.num_clients:
            raise BenchmarkError(f"rank {rank} out of range")
        return [(rank * self.client_span, self.client_span)]

    def expected_client_bytes(self, rank: int) -> bytes:
        """Reference content of a client's span after all its writes."""
        span = bytearray(self.client_span)
        base = rank * self.client_span
        for write_index in range(self.writes_per_client):
            for offset, payload in self.write_pairs(rank, write_index):
                rel = offset - base
                span[rel:rel + len(payload)] = payload
        return bytes(span)

    def total_write_bytes(self) -> int:
        """Payload bytes issued by all clients together."""
        return self.num_clients * self.slots_per_client * self.region_size

    def _validate(self, rank: int, write_index: int) -> None:
        if not 0 <= rank < self.num_clients:
            raise BenchmarkError(f"rank {rank} out of range")
        if not 0 <= write_index < self.writes_per_client:
            raise BenchmarkError(f"write index {write_index} out of range")
