"""Collective checkpoint workload: interleaved block dumps, one per round.

The access pattern parallel checkpointing codes produce (and the pattern
iFast-style host-side aggregation exploits): in every checkpoint round the
ranks collectively dump one section of the shared file, each rank owning the
blocks congruent to its rank index — rank ``r`` writes blocks ``r, r+N,
r+2N, ...`` of the round's section.  Each rank's access is a noncontiguous
stride, but the *union* over ranks is one dense section: the sweet spot of
two-phase collective buffering, where a handful of aggregators can commit
the whole round as a few large contiguous stripes.

Rounds land in disjoint sections, and within a round the ranks' blocks are
disjoint too, so the final file contents are independent of commit order —
every write mode must produce byte-identical data, which the benchmark
asserts (overlapping-writer resolution is pinned by the conformance and
property suites instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class CollectiveCheckpointWorkload:
    """Parameters of the collective checkpoint pattern."""

    num_ranks: int
    rounds: int = 2
    blocks_per_rank: int = 4
    block_size: int = 4096

    def __post_init__(self) -> None:
        if self.num_ranks <= 0:
            raise BenchmarkError("num_ranks must be positive")
        if self.rounds <= 0:
            raise BenchmarkError("rounds must be positive")
        if self.blocks_per_rank <= 0:
            raise BenchmarkError("blocks_per_rank must be positive")
        if self.block_size <= 0:
            raise BenchmarkError("block_size must be positive")

    # ------------------------------------------------------------------
    @property
    def blocks_per_section(self) -> int:
        """Blocks one checkpoint round covers (all ranks together)."""
        return self.num_ranks * self.blocks_per_rank

    @property
    def section_size(self) -> int:
        """Bytes of one checkpoint round's section."""
        return self.blocks_per_section * self.block_size

    @property
    def file_size(self) -> int:
        """Size of the shared checkpoint file."""
        return self.rounds * self.section_size

    # ------------------------------------------------------------------
    def _fill(self, rank: int, round_index: int, slot: int) -> int:
        """Deterministic non-zero fill byte of one block."""
        return 1 + (rank * 61 + round_index * 17 + slot * 5) % 255

    def write_pairs(self, rank: int,
                    round_index: int) -> List[Tuple[int, bytes]]:
        """``(offset, payload)`` pairs of one rank's dump in one round."""
        self._validate(rank, round_index)
        base = round_index * self.section_size
        pairs = []
        for slot in range(rank, self.blocks_per_section, self.num_ranks):
            payload = bytes([self._fill(rank, round_index, slot)]) \
                * self.block_size
            pairs.append((base + slot * self.block_size, payload))
        return pairs

    def rank_bytes_per_round(self) -> int:
        """Payload bytes one rank contributes to one round."""
        return self.blocks_per_rank * self.block_size

    def total_write_bytes(self) -> int:
        """Payload bytes over all ranks and rounds (== file size: dense)."""
        return self.file_size

    def expected_contents(self) -> bytes:
        """Reference contents of the whole file after every round."""
        content = bytearray(self.file_size)
        for round_index in range(self.rounds):
            for rank in range(self.num_ranks):
                for offset, payload in self.write_pairs(rank, round_index):
                    content[offset:offset + len(payload)] = payload
        return bytes(content)

    def _validate(self, rank: int, round_index: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise BenchmarkError(f"rank {rank} out of range")
        if not 0 <= round_index < self.rounds:
            raise BenchmarkError(f"round {round_index} out of range")
