"""Collective read workload: interleaved block scans over a shared dump.

The read-side mirror of :mod:`repro.workloads.collective_checkpoint` — the
access pattern parallel analysis/restart codes produce: the shared file
holds one dense section per round (written earlier by a checkpoint), and in
every scan round the ranks collectively read that round's section back,
each rank fetching the blocks congruent to its rank index — rank ``r``
reads blocks ``r, r+N, r+2N, ...``.  Each rank's access is a noncontiguous
stride, but the *union* over ranks is one dense section: the sweet spot of
aggregated metadata resolution, where a handful of resolver ranks can walk
the section's segment tree once on behalf of the whole group.

``halo_blocks`` adds read overlap across ranks (each rank also reads that
many of the following ranks' blocks, ghost-cell style), so the resolver-side
deduplication of shared extents is exercised too.  The file contents are
those of the matching :class:`~repro.workloads.collective_checkpoint.
CollectiveCheckpointWorkload`, so every read's expected bytes are known in
closed form and every read mode must return byte-identical data.

``hole_every`` makes the dump *sparse*: every ``hole_every``-th block slot
is never written and reads back as zeros — the shape that exercises
zero-extent elision in the collective read scatter (resolvers ship hole
descriptors instead of literal zero bytes).  :meth:`seed_pairs` yields the
write vector that produces exactly this sparse dump, and
:meth:`expected_contents` zero-fills the hole slots so the byte-identity
oracle stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import BenchmarkError
from repro.workloads.collective_checkpoint import CollectiveCheckpointWorkload


@dataclass(frozen=True)
class CollectiveReadWorkload:
    """Parameters of the collective scan pattern."""

    num_ranks: int
    rounds: int = 2
    blocks_per_rank: int = 4
    block_size: int = 4096
    #: extra blocks each rank reads past its own (overlap across ranks)
    halo_blocks: int = 0
    #: sparseness: when > 0, every ``hole_every``-th block slot of each
    #: section is never written (reads back as zeros); 0 = dense dump
    hole_every: int = 0

    def __post_init__(self) -> None:
        if self.halo_blocks < 0:
            raise BenchmarkError("halo_blocks must be non-negative")
        if self.hole_every < 0:
            raise BenchmarkError("hole_every must be non-negative")
        if self.hole_every == 1:
            raise BenchmarkError(
                "hole_every=1 would leave the whole file unwritten")
        # delegate the shared-parameter validation to the content workload
        self.content_workload()

    # ------------------------------------------------------------------
    def content_workload(self) -> CollectiveCheckpointWorkload:
        """The checkpoint workload whose dump this workload scans."""
        return CollectiveCheckpointWorkload(
            num_ranks=self.num_ranks,
            rounds=self.rounds,
            blocks_per_rank=self.blocks_per_rank,
            block_size=self.block_size,
        )

    @property
    def blocks_per_section(self) -> int:
        """Blocks one scan round covers (all ranks together)."""
        return self.num_ranks * self.blocks_per_rank

    @property
    def section_size(self) -> int:
        """Bytes of one round's section."""
        return self.blocks_per_section * self.block_size

    @property
    def file_size(self) -> int:
        """Size of the shared file."""
        return self.rounds * self.section_size

    # ------------------------------------------------------------------
    def read_pairs(self, rank: int,
                   round_index: int) -> List[Tuple[int, int]]:
        """``(offset, size)`` pairs of one rank's scan in one round.

        The rank's own interleaved blocks plus ``halo_blocks`` trailing
        neighbour blocks per own block (clipped to the section), merged so
        the pairs stay disjoint and sorted — the shape an ``Indexed``
        filetype needs.
        """
        self._validate(rank, round_index)
        base = round_index * self.section_size
        slots = set()
        for slot in range(rank, self.blocks_per_section, self.num_ranks):
            slots.add(slot)
            for halo in range(1, self.halo_blocks + 1):
                if slot + halo < self.blocks_per_section:
                    slots.add(slot + halo)
        pairs: List[Tuple[int, int]] = []
        for slot in sorted(slots):
            offset = base + slot * self.block_size
            if pairs and pairs[-1][0] + pairs[-1][1] == offset:
                pairs[-1] = (pairs[-1][0], pairs[-1][1] + self.block_size)
            else:
                pairs.append((offset, self.block_size))
        return pairs

    def rank_bytes_per_round(self, rank: int) -> int:
        """Bytes one rank fetches in one round (halo included)."""
        return sum(size for _offset, size in self.read_pairs(rank, 0))

    def total_read_bytes(self) -> int:
        """Bytes fetched over all ranks and rounds (overlaps counted twice)."""
        return self.rounds * sum(self.rank_bytes_per_round(rank)
                                 for rank in range(self.num_ranks))

    def is_hole(self, slot: int) -> bool:
        """Whether a section-relative block slot is never written."""
        return (self.hole_every > 0
                and slot % self.hole_every == self.hole_every - 1)

    def hole_bytes_per_section(self) -> int:
        """Never-written bytes of one section."""
        return self.block_size * sum(1 for slot in range(self.blocks_per_section)
                                     if self.is_hole(slot))

    def seed_pairs(self) -> List[Tuple[int, bytes]]:
        """The ``(offset, payload)`` write vector producing the (sparse) dump.

        Dense dumps yield one pair covering the whole file; sparse ones skip
        the hole slots, with adjacent written blocks merged into runs.
        """
        content = self.content_workload().expected_contents()
        if self.hole_every <= 0:
            return [(0, content)]
        pairs: List[Tuple[int, bytes]] = []
        for round_index in range(self.rounds):
            base = round_index * self.section_size
            for slot in range(self.blocks_per_section):
                if self.is_hole(slot):
                    continue
                offset = base + slot * self.block_size
                payload = content[offset:offset + self.block_size]
                if pairs and pairs[-1][0] + len(pairs[-1][1]) == offset:
                    pairs[-1] = (pairs[-1][0], pairs[-1][1] + payload)
                else:
                    pairs.append((offset, payload))
        return pairs

    def expected_contents(self) -> bytes:
        """Reference contents of the whole file (hole slots zero-filled)."""
        content = self.content_workload().expected_contents()
        if self.hole_every <= 0:
            return content
        sparse = bytearray(content)
        for round_index in range(self.rounds):
            base = round_index * self.section_size
            for slot in range(self.blocks_per_section):
                if self.is_hole(slot):
                    offset = base + slot * self.block_size
                    sparse[offset:offset + self.block_size] = \
                        b"\x00" * self.block_size
        return bytes(sparse)

    def expected_pieces(self, rank: int, round_index: int) -> bytes:
        """The bytes one rank's scan must return, concatenated."""
        content = self.expected_contents()
        return b"".join(content[offset:offset + size]
                        for offset, size in self.read_pairs(rank,
                                                            round_index))

    def _validate(self, rank: int, round_index: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise BenchmarkError(f"rank {rank} out of range")
        if not 0 <= round_index < self.rounds:
            raise BenchmarkError(f"round {round_index} out of range")
