"""Experiment 1 workload: concurrent, overlapping, non-contiguous writes.

The paper's first experiment considers "the extreme case where each of the
clients writes a large set of non-contiguous regions that are intentionally
selected in such way as to generate a large number of overlapping[s] that
need to obey MPI atomicity".  This generator reproduces that pattern:

* the shared file is divided into ``regions_per_client`` slots per client;
* client ``r`` writes one region in every slot, starting at a per-client
  phase shift smaller than the region size, so each of its regions overlaps
  the corresponding region of clients ``r-1`` and ``r+1``;
* with ``overlap_fraction=0`` the phase shift is at least one region size and
  the accesses become disjoint (the control used by EXP1b and by the
  conflict-detection driver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.errors import BenchmarkError


@dataclass(frozen=True)
class OverlapStressWorkload:
    """Parameters of the overlapped non-contiguous write stress test."""

    num_clients: int
    regions_per_client: int = 16
    region_size: int = 64 * 1024
    overlap_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise BenchmarkError("num_clients must be positive")
        if self.regions_per_client <= 0:
            raise BenchmarkError("regions_per_client must be positive")
        if self.region_size <= 0:
            raise BenchmarkError("region_size must be positive")
        if not (0.0 <= self.overlap_fraction < 1.0):
            raise BenchmarkError("overlap_fraction must be in [0, 1)")

    # ------------------------------------------------------------------
    @property
    def client_shift(self) -> int:
        """File-offset shift between consecutive clients' regions."""
        if self.overlap_fraction == 0.0:
            return self.region_size  # disjoint
        return max(1, int(round(self.region_size * (1.0 - self.overlap_fraction))))

    @property
    def slot_stride(self) -> int:
        """Distance between two consecutive slots of the same client."""
        return self.region_size + self.client_shift * self.num_clients

    @property
    def file_size(self) -> int:
        """Bytes of the shared file the workload needs."""
        last_offset = ((self.regions_per_client - 1) * self.slot_stride
                       + (self.num_clients - 1) * self.client_shift
                       + self.region_size)
        return last_offset

    @property
    def bytes_per_client(self) -> int:
        """Bytes written by each client."""
        return self.regions_per_client * self.region_size

    @property
    def total_bytes(self) -> int:
        """Bytes written by all clients together (overlaps counted per writer)."""
        return self.bytes_per_client * self.num_clients

    # ------------------------------------------------------------------
    def client_regions(self, client: int) -> RegionList:
        """Byte regions written by ``client``."""
        if not (0 <= client < self.num_clients):
            raise BenchmarkError(f"client {client} outside 0..{self.num_clients - 1}")
        regions: List[Tuple[int, int]] = []
        for slot in range(self.regions_per_client):
            offset = slot * self.slot_stride + client * self.client_shift
            regions.append((offset, self.region_size))
        return RegionList.from_tuples(regions)

    def client_pairs(self, client: int) -> List[Tuple[int, bytes]]:
        """``(offset, payload)`` pairs; the payload byte identifies the writer."""
        value = (client + 1) % 256
        return [(region.offset, bytes([value]) * region.size)
                for region in self.client_regions(client)]

    def client_vector(self, client: int) -> IOVector:
        """The write vector of one client (one MPI-I/O call's worth of data)."""
        return IOVector.for_write(self.client_pairs(client))

    def has_overlaps(self) -> bool:
        """True if at least two clients' regions overlap."""
        if self.num_clients < 2 or self.overlap_fraction == 0.0:
            return False
        return self.client_regions(0).overlaps(self.client_regions(1))

    def overlapping_client_pairs(self) -> List[Tuple[int, int]]:
        """All pairs of clients whose regions overlap."""
        regions = [self.client_regions(client) for client in range(self.num_clients)]
        pairs: List[Tuple[int, int]] = []
        for a in range(self.num_clients):
            for b in range(a + 1, self.num_clients):
                if regions[a].overlaps(regions[b]):
                    pairs.append((a, b))
        return pairs
