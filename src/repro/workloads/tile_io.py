"""MPI-tile-IO: the standard benchmark used in the paper's second experiment.

MPI-tile-IO models the I/O of applications (visualization, tiled displays,
cellular-automata simulations) that divide a dense 2-D dataset into a grid of
tiles, one MPI process per tile.  Its parameters follow the original
benchmark: number of tiles in x/y, elements per tile in x/y, bytes per
element, and an *overlap* in elements between adjacent tiles — the overlapped
tile borders are what requires MPI atomic mode when all processes write the
shared file concurrently.

Each process's access is a 2-D subarray of the global array, i.e. one
non-contiguous region per row of its tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.errors import BenchmarkError
from repro.mpi.datatypes import BasicType, Datatype, Subarray


@dataclass(frozen=True)
class TileIOWorkload:
    """Parameters of one MPI-tile-IO run (defaults follow the benchmark)."""

    nr_tiles_x: int = 4
    nr_tiles_y: int = 4
    sz_tile_x: int = 256
    sz_tile_y: int = 256
    sz_element: int = 32
    overlap_x: int = 16
    overlap_y: int = 16

    def __post_init__(self) -> None:
        if self.nr_tiles_x <= 0 or self.nr_tiles_y <= 0:
            raise BenchmarkError("tile grid dimensions must be positive")
        if self.sz_tile_x <= 0 or self.sz_tile_y <= 0:
            raise BenchmarkError("tile sizes must be positive")
        if self.sz_element <= 0:
            raise BenchmarkError("element size must be positive")
        if self.overlap_x < 0 or self.overlap_y < 0:
            raise BenchmarkError("overlaps must be non-negative")
        if self.overlap_x >= self.sz_tile_x or self.overlap_y >= self.sz_tile_y:
            raise BenchmarkError("overlap must be smaller than the tile size")

    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """One process per tile."""
        return self.nr_tiles_x * self.nr_tiles_y

    @property
    def array_size_x(self) -> int:
        """Elements of the global array along x (tiles overlap, so not a plain product)."""
        return self.nr_tiles_x * (self.sz_tile_x - self.overlap_x) + self.overlap_x

    @property
    def array_size_y(self) -> int:
        """Elements of the global array along y."""
        return self.nr_tiles_y * (self.sz_tile_y - self.overlap_y) + self.overlap_y

    @property
    def file_size(self) -> int:
        """Bytes of the shared dataset file."""
        return self.array_size_x * self.array_size_y * self.sz_element

    @property
    def bytes_per_process(self) -> int:
        """Bytes each process writes (its whole tile, overlaps included)."""
        return self.sz_tile_x * self.sz_tile_y * self.sz_element

    @property
    def total_bytes(self) -> int:
        """Bytes written by the whole job (overlaps counted per writer)."""
        return self.bytes_per_process * self.num_processes

    # ------------------------------------------------------------------
    def tile_coords(self, rank: int) -> Tuple[int, int]:
        """(tile_y, tile_x) position of ``rank`` (row-major tile numbering)."""
        if not (0 <= rank < self.num_processes):
            raise BenchmarkError(f"rank {rank} outside 0..{self.num_processes - 1}")
        return divmod(rank, self.nr_tiles_x)

    def tile_start(self, rank: int) -> Tuple[int, int]:
        """(row, column) of the tile's first element in the global array."""
        tile_y, tile_x = self.tile_coords(rank)
        return (tile_y * (self.sz_tile_y - self.overlap_y),
                tile_x * (self.sz_tile_x - self.overlap_x))

    def rank_datatype(self, rank: int) -> Datatype:
        """The 2-D subarray datatype of ``rank``'s tile in the global array."""
        start_y, start_x = self.tile_start(rank)
        element = BasicType("element", self.sz_element)
        return Subarray(sizes=[self.array_size_y, self.array_size_x],
                        subsizes=[self.sz_tile_y, self.sz_tile_x],
                        starts=[start_y, start_x],
                        base=element)

    def rank_regions(self, rank: int) -> RegionList:
        """Byte regions of ``rank``'s tile in the shared file."""
        return self.rank_datatype(rank).flatten()

    def rank_pairs(self, rank: int) -> List[Tuple[int, bytes]]:
        """``(offset, payload)`` pairs of one tile dump (writer-tagged payload)."""
        value = (rank + 1) % 256
        return [(region.offset, bytes([value]) * region.size)
                for region in self.rank_regions(rank)]

    def rank_vector(self, rank: int) -> IOVector:
        """The write vector of ``rank``'s tile."""
        return IOVector.for_write(self.rank_pairs(rank))

    def has_overlaps(self) -> bool:
        """True when adjacent tiles share border elements."""
        return (self.overlap_x > 0 and self.nr_tiles_x > 1) or \
            (self.overlap_y > 0 and self.nr_tiles_y > 1)

    def scaled_to(self, num_processes: int) -> "TileIOWorkload":
        """A copy with the tile grid resized to roughly ``num_processes`` tiles.

        Used by the client-count sweeps: the grid is kept as square as
        possible (like ``MPI_Dims_create``), every other parameter unchanged.
        """
        if num_processes <= 0:
            raise BenchmarkError("num_processes must be positive")
        best = (1, num_processes)
        for tiles_x in range(1, num_processes + 1):
            if num_processes % tiles_x == 0:
                tiles_y = num_processes // tiles_x
                if abs(tiles_x - tiles_y) < abs(best[0] - best[1]):
                    best = (tiles_x, tiles_y)
        return TileIOWorkload(
            nr_tiles_x=best[0], nr_tiles_y=best[1],
            sz_tile_x=self.sz_tile_x, sz_tile_y=self.sz_tile_y,
            sz_element=self.sz_element,
            overlap_x=self.overlap_x, overlap_y=self.overlap_y)
