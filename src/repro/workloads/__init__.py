"""Workload generators reproducing the paper's access patterns.

* :mod:`repro.workloads.domain` — n-dimensional domain decomposition with
  overlapping (ghost-cell) subdomains, the access pattern the paper's
  introduction motivates;
* :mod:`repro.workloads.overlap_stress` — Experiment 1: every client writes a
  large set of non-contiguous regions deliberately chosen to overlap with its
  neighbours' regions;
* :mod:`repro.workloads.tile_io` — Experiment 2: a faithful re-implementation
  of the MPI-tile-IO benchmark (dense 2-D tile grid with overlapping tile
  borders);
* :mod:`repro.workloads.ghost_cells` — a small iterative stencil simulation
  (2-D heat diffusion) whose ranks dump their overlapping subdomains every
  iteration; used by the examples and the producer/consumer experiment;
* :mod:`repro.workloads.queued_writes` — trains of small back-to-back
  vectored writes per rank (checkpoint-style), the pattern the write-pipeline
  benchmarks coalesce;
* :mod:`repro.workloads.collective_checkpoint` — per-round collective dumps
  of interleaved blocks (each rank a stride, the union dense), the pattern
  two-phase collective buffering aggregates;
* :mod:`repro.workloads.collective_read` — the read-side mirror: per-round
  collective scans of a checkpoint's interleaved blocks (optionally with
  halo overlap), the pattern aggregated metadata resolution serves;
* :mod:`repro.workloads.shared_scan` — independent readers co-located on
  shared compute nodes (identical-extent and streaming patterns), the
  workload the node-local shared metadata cache amortizes;
* :mod:`repro.workloads.random_vectored` — seed-derived random vectored
  patterns (disjoint within a rank, overlapping across ranks, optional
  hot-spot window), the scenario fuzzer's workhorse family.
"""

from repro.workloads.domain import DomainDecomposition, process_grid
from repro.workloads.overlap_stress import OverlapStressWorkload
from repro.workloads.queued_writes import QueuedWritesWorkload
from repro.workloads.collective_checkpoint import CollectiveCheckpointWorkload
from repro.workloads.collective_read import CollectiveReadWorkload
from repro.workloads.shared_scan import SharedScanWorkload
from repro.workloads.tile_io import TileIOWorkload
from repro.workloads.ghost_cells import GhostCellSimulation
from repro.workloads.random_vectored import RandomVectoredWorkload

__all__ = [
    "DomainDecomposition",
    "process_grid",
    "OverlapStressWorkload",
    "QueuedWritesWorkload",
    "CollectiveCheckpointWorkload",
    "CollectiveReadWorkload",
    "SharedScanWorkload",
    "TileIOWorkload",
    "GhostCellSimulation",
    "RandomVectoredWorkload",
]
