"""N-dimensional domain decomposition with overlapping subdomains.

A spatial domain of ``sizes`` cells (each ``element_size`` bytes) is split
over a process grid.  Each rank owns a core block plus ``ghost`` cells of
overlap on every side (clipped at the domain boundary) — so neighbouring
subdomains overlap by up to ``2 * ghost`` cells, exactly the pattern that
forces MPI atomic mode when every rank dumps its subdomain (ghosts included)
into the shared file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.regions import Region, RegionList
from repro.errors import BenchmarkError
from repro.mpi.datatypes import BasicType, Datatype, Subarray


def process_grid(num_processes: int, ndims: int) -> Tuple[int, ...]:
    """Factor ``num_processes`` into a balanced ``ndims``-dimensional grid.

    Mirrors ``MPI_Dims_create``: dimensions are as close to each other as
    possible, larger dimensions first.
    """
    if num_processes <= 0 or ndims <= 0:
        raise BenchmarkError("num_processes and ndims must be positive")
    dims = [1] * ndims
    remaining = num_processes
    # repeatedly peel off the largest prime factor onto the smallest dimension
    factors: List[int] = []
    n = remaining
    divisor = 2
    while divisor * divisor <= n:
        while n % divisor == 0:
            factors.append(divisor)
            n //= divisor
        divisor += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class Subdomain:
    """One rank's (ghost-extended) block of the global domain."""

    rank: int
    starts: Tuple[int, ...]
    sizes: Tuple[int, ...]

    @property
    def cells(self) -> int:
        """Number of cells in the block."""
        total = 1
        for size in self.sizes:
            total *= size
        return total


class DomainDecomposition:
    """Decompose an n-dimensional cell domain over a process grid with ghosts."""

    def __init__(self, sizes: Sequence[int], num_processes: int,
                 ghost: int = 1, element_size: int = 8):
        if any(size <= 0 for size in sizes):
            raise BenchmarkError(f"invalid domain sizes {sizes}")
        if ghost < 0:
            raise BenchmarkError(f"negative ghost width {ghost}")
        if element_size <= 0:
            raise BenchmarkError(f"invalid element size {element_size}")
        self.sizes = tuple(int(size) for size in sizes)
        self.ndims = len(self.sizes)
        self.num_processes = num_processes
        self.ghost = ghost
        self.element_size = element_size
        self.grid = process_grid(num_processes, self.ndims)
        for dimension, (size, procs) in enumerate(zip(self.sizes, self.grid)):
            if procs > size:
                raise BenchmarkError(
                    f"more processes ({procs}) than cells ({size}) along "
                    f"dimension {dimension}")

    # ------------------------------------------------------------------
    @property
    def total_cells(self) -> int:
        """Cells in the whole domain."""
        total = 1
        for size in self.sizes:
            total *= size
        return total

    @property
    def file_size(self) -> int:
        """Bytes of the shared dump file (one element per cell)."""
        return self.total_cells * self.element_size

    def grid_coords(self, rank: int) -> Tuple[int, ...]:
        """Position of ``rank`` in the process grid (row-major)."""
        if not (0 <= rank < self.num_processes):
            raise BenchmarkError(f"rank {rank} outside 0..{self.num_processes - 1}")
        coords = []
        remainder = rank
        for extent in reversed(self.grid):
            coords.append(remainder % extent)
            remainder //= extent
        return tuple(reversed(coords))

    def subdomain(self, rank: int, with_ghosts: bool = True) -> Subdomain:
        """The block owned by ``rank`` (ghost-extended unless disabled)."""
        coords = self.grid_coords(rank)
        starts: List[int] = []
        sizes: List[int] = []
        for dimension, (coord, procs, size) in enumerate(
                zip(coords, self.grid, self.sizes)):
            base = (size * coord) // procs
            end = (size * (coord + 1)) // procs
            if with_ghosts:
                base = max(0, base - self.ghost)
                end = min(size, end + self.ghost)
            starts.append(base)
            sizes.append(end - base)
        return Subdomain(rank=rank, starts=tuple(starts), sizes=tuple(sizes))

    # ------------------------------------------------------------------
    def rank_datatype(self, rank: int, with_ghosts: bool = True) -> Datatype:
        """The subarray datatype describing ``rank``'s block in the file."""
        block = self.subdomain(rank, with_ghosts)
        element = BasicType("element", self.element_size)
        return Subarray(sizes=self.sizes, subsizes=block.sizes,
                        starts=block.starts, base=element)

    def rank_regions(self, rank: int, with_ghosts: bool = True) -> RegionList:
        """The byte regions of ``rank``'s block in the shared file."""
        return self.rank_datatype(rank, with_ghosts).flatten()

    def rank_write_pairs(self, rank: int, fill: int = None,
                         with_ghosts: bool = True) -> List[Tuple[int, bytes]]:
        """``(offset, payload)`` pairs for ``rank``'s dump.

        The payload of every region is filled with a per-rank byte value so
        that atomicity violations (mixed writers inside one overlap region)
        are visible in the file content.
        """
        value = (rank + 1) % 256 if fill is None else fill
        pairs: List[Tuple[int, bytes]] = []
        for region in self.rank_regions(rank, with_ghosts):
            pairs.append((region.offset, bytes([value]) * region.size))
        return pairs

    def overlap_pairs(self) -> List[Tuple[int, int]]:
        """Pairs of ranks whose (ghost-extended) blocks overlap in the file."""
        regions = [self.rank_regions(rank) for rank in range(self.num_processes)]
        overlapping: List[Tuple[int, int]] = []
        for a in range(self.num_processes):
            for b in range(a + 1, self.num_processes):
                if regions[a].overlaps(regions[b]):
                    overlapping.append((a, b))
        return overlapping

    def total_written_bytes(self) -> int:
        """Sum of all ranks' dump sizes (overlaps counted per writer)."""
        return sum(self.rank_regions(rank).total_bytes()
                   for rank in range(self.num_processes))
