"""Random vectored-access workload: seed-derived noncontiguous patterns.

The scenario fuzzer's workhorse pattern family, promoted from the ad-hoc
``random_pattern`` helper the conformance suites grew: every rank owns a
small set of regions that are disjoint *within* the rank (so one rank's
access is a valid ``Indexed`` view) but overlap freely *across* ranks —
exactly the territory of Thakur/Gropp/Lusk's noncontiguous MPI-IO access
classes, with the cross-rank overlap the paper's atomic-snapshot claim is
about.

Everything derives from ``(seed, shape parameters)`` through one
``random.Random`` instance consumed in a fixed order, so a workload is a
pure value: the same constructor arguments always produce the same regions
and the same fill bytes, which is what lets the fuzzer replay any run from
its seed alone.

``window`` confines every region to a sub-extent of the file — the
fuzzer's *hot-spot* hostility, where all ranks hammer the same few chunks
and cross-rank overlap (hence version-ordered conflict resolution) becomes
the common case instead of the corner case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import BenchmarkError

#: one write region: (offset, size, fill byte) — the payload is the fill
#: byte repeated, which keeps whole scenarios JSON-serializable
RegionSpec = Tuple[int, int, int]


@dataclass(frozen=True)
class RandomVectoredWorkload:
    """Per-rank random vectored accesses with cross-rank overlap.

    Parameters
    ----------
    num_ranks:
        Ranks drawing patterns.
    file_size:
        Extent regions are drawn from (exclusive upper bound).
    seed:
        Root of the pattern; same seed, same pattern, always.
    max_regions / max_region_size:
        Per-rank shape bounds (regions per rank are 1..max_regions).
    empty_rank_chance:
        Probability a rank sits a round out entirely (sparse participation,
        the empty-vector path collectives must still carry).
    window:
        Optional ``(offset, size)`` sub-extent confining every region (the
        hot-spot mode); ``None`` uses the whole file.
    """

    num_ranks: int
    file_size: int
    seed: int = 0
    max_regions: int = 4
    max_region_size: int = 1500
    empty_rank_chance: float = 0.2
    window: Optional[Tuple[int, int]] = None
    #: per-rank region specs, materialized once at construction
    _specs: Tuple[Tuple[RegionSpec, ...], ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_ranks <= 0:
            raise BenchmarkError("num_ranks must be positive")
        if self.max_regions <= 0:
            raise BenchmarkError("max_regions must be positive")
        if not (0.0 <= self.empty_rank_chance < 1.0):
            raise BenchmarkError("empty_rank_chance must be in [0, 1)")
        lo, span = (0, self.file_size) if self.window is None else self.window
        if not (0 <= lo and lo + span <= self.file_size and span > 0):
            raise BenchmarkError(
                f"window {self.window!r} outside file of {self.file_size}")
        region_cap = min(self.max_region_size, span)
        if region_cap <= 0:
            raise BenchmarkError("max_region_size must be positive")
        rng = random.Random(self.seed)
        specs: List[Tuple[RegionSpec, ...]] = []
        for rank in range(self.num_ranks):
            if self.num_ranks > 1 and rng.random() < self.empty_rank_chance:
                specs.append(())
                continue
            count = rng.randint(1, self.max_regions)
            count = min(count, max(1, span // max(1, region_cap)))
            starts = sorted(rng.sample(
                range(lo, lo + span - region_cap + 1), count))
            regions = []
            for index, offset in enumerate(starts):
                limit = (starts[index + 1] - offset if index + 1 < count
                         else region_cap)
                size = rng.randint(1, max(1, min(region_cap, limit)))
                fill = 1 + (self.seed * 7 + rank * 41 + index * 13) % 255
                regions.append((offset, size, fill))
            specs.append(tuple(regions))
        object.__setattr__(self, "_specs", tuple(specs))

    # ------------------------------------------------------------------
    def rank_specs(self, rank: int) -> List[RegionSpec]:
        """``(offset, size, fill)`` triples of one rank, offset-sorted."""
        self._validate(rank)
        return list(self._specs[rank])

    def write_pairs(self, rank: int) -> List[Tuple[int, bytes]]:
        """``(offset, payload)`` pairs of one rank's vectored write."""
        return [(offset, bytes([fill]) * size)
                for offset, size, fill in self.rank_specs(rank)]

    def read_regions(self, rank: int) -> List[Tuple[int, int]]:
        """``(offset, size)`` pairs covering the rank's own regions."""
        return [(offset, size) for offset, size, _fill in self.rank_specs(rank)]

    def halo_read_regions(self, rank: int, halo: int) -> List[Tuple[int, int]]:
        """The rank's regions grown by ``halo`` bytes on both sides.

        Grown regions reach into the neighbours' territory (ghost cells), so
        collective reads over them exercise cross-rank overlap resolution.
        Overlapping grown regions are merged so the result stays a valid
        disjoint ``Indexed`` view.
        """
        if halo < 0:
            raise BenchmarkError("halo must be non-negative")
        merged: List[Tuple[int, int]] = []
        for offset, size, _fill in self.rank_specs(rank):
            lo = max(0, offset - halo)
            hi = min(self.file_size, offset + size + halo)
            if merged and lo <= merged[-1][0] + merged[-1][1]:
                prev_lo, prev_size = merged[-1]
                merged[-1] = (prev_lo, max(prev_lo + prev_size, hi) - prev_lo)
            else:
                merged.append((lo, hi - lo))
        return merged

    # ------------------------------------------------------------------
    def expected_contents(self, base: Optional[bytes] = None) -> bytes:
        """The pattern applied in rank order over ``base`` (zeros default)."""
        content = bytearray(base) if base is not None \
            else bytearray(self.file_size)
        if len(content) != self.file_size:
            raise BenchmarkError("base must match file_size")
        for rank in range(self.num_ranks):
            for offset, size, fill in self._specs[rank]:
                content[offset:offset + size] = bytes([fill]) * size
        return bytes(content)

    def union_extent(self) -> Optional[Tuple[int, int]]:
        """``(lo, hi)`` over every rank's regions, or ``None`` if all empty."""
        offsets = [(offset, offset + size)
                   for specs in self._specs for offset, size, _ in specs]
        if not offsets:
            return None
        return min(lo for lo, _ in offsets), max(hi for _, hi in offsets)

    def has_cross_rank_overlap(self) -> bool:
        """True when at least two ranks' regions intersect."""
        intervals = sorted(
            (offset, offset + size, rank)
            for rank, specs in enumerate(self._specs)
            for offset, size, _ in specs)
        for (lo_a, hi_a, rank_a), (lo_b, _hi_b, rank_b) in zip(
                intervals, intervals[1:]):
            if rank_a != rank_b and lo_b < hi_a:
                return True
        return False

    def total_write_bytes(self) -> int:
        """Payload bytes over all ranks (overlaps counted per writer)."""
        return sum(size for specs in self._specs for _o, size, _f in specs)

    def _validate(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise BenchmarkError(f"rank {rank} out of range")
