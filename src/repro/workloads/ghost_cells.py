"""A small iterative stencil simulation with ghost-cell subdomain dumps.

This is the application the paper's introduction describes: an iterative
simulation over a 2-D spatial domain (here: explicit heat diffusion) where

* the domain is split into per-rank subdomains that overlap at their borders
  (ghost cells), so ranks do not have to exchange borders every iteration;
* at the end of each iteration every rank dumps its whole ghost-extended
  subdomain into a globally shared snapshot file, which requires MPI atomic
  mode because the overlapped borders are written by several ranks.

The numerical part is intentionally simple (NumPy vectorized 5-point
stencil); the point of the class is to produce realistic, correct dump
vectors and to let examples and tests verify the file contents against the
in-memory state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.listio import IOVector
from repro.errors import BenchmarkError
from repro.workloads.domain import DomainDecomposition


@dataclass
class GhostCellSimulation:
    """2-D heat diffusion over a decomposed domain with ghost-cell dumps."""

    domain_x: int = 64
    domain_y: int = 64
    num_ranks: int = 4
    ghost: int = 2
    alpha: float = 0.1
    element_dtype: np.dtype = np.dtype("float64")

    def __post_init__(self) -> None:
        if self.domain_x <= 0 or self.domain_y <= 0:
            raise BenchmarkError("domain dimensions must be positive")
        if not (0.0 < self.alpha <= 0.25):
            raise BenchmarkError("alpha must be in (0, 0.25] for stability")
        self.decomposition = DomainDecomposition(
            sizes=(self.domain_y, self.domain_x),
            num_processes=self.num_ranks,
            ghost=self.ghost,
            element_size=self.element_dtype.itemsize,
        )
        # global field initialized with a hot square in the centre
        self.field = np.zeros((self.domain_y, self.domain_x),
                              dtype=self.element_dtype)
        cy, cx = self.domain_y // 2, self.domain_x // 2
        half = max(1, min(self.domain_y, self.domain_x) // 8)
        self.field[cy - half:cy + half, cx - half:cx + half] = 100.0
        self.iteration = 0

    # ------------------------------------------------------------------
    @property
    def file_size(self) -> int:
        """Bytes of one shared snapshot file."""
        return self.decomposition.file_size

    def rank_block(self, rank: int) -> Tuple[slice, slice]:
        """NumPy slices of the rank's ghost-extended block in the global field."""
        block = self.decomposition.subdomain(rank, with_ghosts=True)
        (start_y, start_x), (size_y, size_x) = block.starts, block.sizes
        return (slice(start_y, start_y + size_y), slice(start_x, start_x + size_x))

    def step(self) -> None:
        """Advance the global field by one explicit diffusion step."""
        field = self.field
        interior = field[1:-1, 1:-1]
        laplacian = (field[:-2, 1:-1] + field[2:, 1:-1]
                     + field[1:-1, :-2] + field[1:-1, 2:]
                     - 4.0 * interior)
        updated = field.copy()
        updated[1:-1, 1:-1] = interior + self.alpha * laplacian
        self.field = updated
        self.iteration += 1

    # ------------------------------------------------------------------
    def rank_dump_pairs(self, rank: int) -> List[Tuple[int, bytes]]:
        """``(offset, payload)`` pairs for the rank's subdomain dump."""
        rows, cols = self.rank_block(rank)
        block = np.ascontiguousarray(self.field[rows, cols])
        regions = self.decomposition.rank_regions(rank, with_ghosts=True)
        row_bytes = block.shape[1] * self.element_dtype.itemsize
        pairs: List[Tuple[int, bytes]] = []
        raw = block.tobytes()
        for index, region in enumerate(regions):
            if region.size != row_bytes:
                raise BenchmarkError(
                    "region/row mismatch: the dump regions must be one row each")
            pairs.append((region.offset, raw[index * row_bytes:(index + 1) * row_bytes]))
        return pairs

    def rank_dump_vector(self, rank: int) -> IOVector:
        """The rank's dump as a write vector."""
        return IOVector.for_write(self.rank_dump_pairs(rank))

    def expected_file_content(self) -> bytes:
        """The bytes the shared snapshot file must contain after all dumps.

        Because every rank writes the *same global values* in its ghost
        region, any serialization of the dumps produces the full field —
        which is exactly why a correct atomic dump must equal this array.
        """
        return self.field.tobytes()

    def decode_file(self, content: bytes) -> np.ndarray:
        """Interpret a snapshot file as the 2-D field array."""
        expected = self.domain_y * self.domain_x * self.element_dtype.itemsize
        if len(content) < expected:
            content = content + b"\x00" * (expected - len(content))
        array = np.frombuffer(content[:expected], dtype=self.element_dtype)
        return array.reshape(self.domain_y, self.domain_x)

    def total_heat(self) -> float:
        """Sum of the field (a conserved quantity up to boundary losses)."""
        return float(self.field.sum())
