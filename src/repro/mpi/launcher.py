"""MPI job launcher: place ranks on compute nodes and run them to completion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import MPIError
from repro.mpi.simcomm import Communicator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node
    from repro.simengine import Process


@dataclass
class MPIContext:
    """What every rank's main function receives."""

    rank: int
    size: int
    comm: Communicator
    node: "Node"
    cluster: "Cluster"

    @property
    def sim(self):
        """The shared simulator (for timeouts, spawning helpers, ...)."""
        return self.cluster.sim


RankMain = Callable[[MPIContext], Generator]


@dataclass
class MPIJobResult:
    """Aggregate outcome of one MPI job."""

    results: List[Any]
    started_at: float
    finished_at: float

    @property
    def elapsed(self) -> float:
        """Wall-clock (simulated) duration of the whole job."""
        return self.finished_at - self.started_at


def launch_mpi_job(cluster: "Cluster", num_ranks: int, rank_main: RankMain,
                   nodes: Optional[Sequence["Node"]] = None,
                   node_prefix: str = "rank",
                   ranks_per_node: Optional[int] = None,
                   placement: Optional[Sequence[int]] = None) -> List["Process"]:
    """Start ``num_ranks`` rank processes and return them without waiting.

    Placement: by default each rank runs on its own compute node (created on
    demand), matching the one-process-per-node placement of the paper's
    Grid'5000 experiments — unless the cluster config raises
    ``ranks_per_node``, the call does (``ranks_per_node=k`` packs ``k``
    consecutive ranks per node), or an explicit ``placement`` map names a
    node index for every rank.  Co-located ranks share that node's NIC and
    its node-local metadata cache.  ``nodes`` (rank-indexed, repeats
    allowed) overrides all of that.
    """
    if num_ranks <= 0:
        raise MPIError(f"num_ranks must be positive, got {num_ranks}")
    if nodes is not None and len(nodes) < num_ranks:
        raise MPIError(f"{num_ranks} ranks need at least {num_ranks} nodes")
    if nodes is None:
        nodes = cluster.place_ranks(node_prefix, num_ranks,
                                    ranks_per_node=ranks_per_node,
                                    placement=placement)

    comm = Communicator(cluster, num_ranks)
    processes: List["Process"] = []
    for rank in range(num_ranks):
        context = MPIContext(rank=rank, size=num_ranks, comm=comm,
                             node=nodes[rank], cluster=cluster)
        processes.append(cluster.sim.process(rank_main(context),
                                             name=f"{node_prefix}{rank}"))
    return processes


def run_mpi_job(cluster: "Cluster", num_ranks: int, rank_main: RankMain,
                nodes: Optional[Sequence["Node"]] = None,
                node_prefix: str = "rank",
                ranks_per_node: Optional[int] = None,
                placement: Optional[Sequence[int]] = None) -> MPIJobResult:
    """Run an MPI job to completion and return every rank's result."""
    started_at = cluster.sim.now
    processes = launch_mpi_job(cluster, num_ranks, rank_main, nodes, node_prefix,
                               ranks_per_node=ranks_per_node,
                               placement=placement)

    def waiter():
        yield cluster.sim.all_of(processes)
        return [process.value for process in processes]

    waiter_process = cluster.sim.process(waiter(), name="mpi-job-waiter")
    results = cluster.sim.run(stop_event=waiter_process)
    return MPIJobResult(results=results, started_at=started_at,
                        finished_at=cluster.sim.now)
