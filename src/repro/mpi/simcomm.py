"""Simulated MPI communicator: the collective operations the stack needs.

The communicator is shared by the rank processes of one job.  Every
collective is implemented as a synchronization point: ranks arriving early
wait on a per-operation event; the last arrival completes the operation,
charges its communication cost (a tree-structured latency term plus the data
volume moved over the slowest rank's NIC bandwidth), and wakes everyone with
the result.

Matching of collective calls follows MPI semantics: all ranks must call the
same collectives in the same order; each call site consumes one "generation"
of the operation's sequence.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.simengine import Event


class _Collective:
    """State of one in-flight collective operation (one generation)."""

    def __init__(self, size: int):
        self.size = size
        self.contributions: Dict[int, Any] = {}
        self.event: Optional["Event"] = None
        self.result: Any = None


class SharedList(list):
    """Result list of an allgather, handed to every rank of the job.

    Real MPI gives each rank a private copy and each rank re-derives any
    planning from it; the simulator gives all ranks this one object, so a
    deterministic derivation every rank would compute identically (stripe
    partition math, write attribution) can be stashed in ``memo`` by the
    first rank and reused by the rest — ``size`` times less host work with
    byte-identical results.  ``memo`` must only ever hold values that are
    a pure function of the list contents, never rank-specific state.
    """

    __slots__ = ("memo",)

    def __init__(self, items):
        super().__init__(items)
        self.memo: Dict[Any, Any] = {}


class Communicator:
    """A communicator over ``size`` simulated ranks."""

    def __init__(self, cluster: "Cluster", size: int, name: str = "comm_world"):
        if size <= 0:
            raise MPIError(f"communicator size must be positive, got {size}")
        self.cluster = cluster
        self.size = size
        self.name = name
        self._pending: Dict[str, List[_Collective]] = {}
        self._generation: Dict[str, List[int]] = {}
        #: per-rank counters of how many collectives each rank entered
        self._rank_counts: Dict[str, Dict[int, int]] = {}
        #: total collectives completed (benchmark metric)
        self.collectives_completed: int = 0
        #: total payload bytes charged across completed collectives — the
        #: compute-interconnect side of every two-phase trade (benchmark
        #: metric; zero on single-rank communicators, which move no bytes)
        self.bytes_moved: int = 0

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise MPIError(f"rank {rank} outside communicator of size {self.size}")

    def _cost(self, payload_bytes: int) -> float:
        """Latency/bandwidth cost of one collective (binomial-tree model)."""
        config = self.cluster.config
        rounds = max(1, math.ceil(math.log2(self.size))) if self.size > 1 else 0
        return (rounds * config.network_latency
                + payload_bytes / config.network_bandwidth)

    def _enter(self, op: str, rank: int, contribution: Any,
               payload_bytes, finalize: Callable[[Dict[int, Any]], Any]):
        """Common rendezvous logic of every collective.

        ``payload_bytes`` is either a byte count or a callable evaluated on
        the collected contributions by the last arrival — the hook operations
        whose traffic depends on what every rank brought (alltoallv) use to
        charge their true cost.
        """
        self._check_rank(rank)
        counts = self._rank_counts.setdefault(op, {})
        generation = counts.get(rank, 0)
        counts[rank] = generation + 1

        pending = self._pending.setdefault(op, [])
        while len(pending) <= generation:
            pending.append(_Collective(self.size))
        collective = pending[generation]

        if rank in collective.contributions:
            raise MPIError(
                f"rank {rank} entered {op} generation {generation} twice")
        collective.contributions[rank] = contribution

        if len(collective.contributions) < self.size:
            if collective.event is None:
                collective.event = self.cluster.sim.event()
            yield collective.event
            return collective.result

        # last arrival: perform the operation, charge its cost, wake the others
        collective.result = finalize(collective.contributions)
        if callable(payload_bytes):
            payload_bytes = payload_bytes(collective.contributions)
        if self.size > 1:
            self.bytes_moved += payload_bytes
            yield self.cluster.sim.timeout(self._cost(payload_bytes))
        self.collectives_completed += 1
        if collective.event is not None:
            collective.event.succeed(collective.result)
        return collective.result

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self, rank: int):
        """Block until every rank reached the same barrier."""
        result = yield from self._enter("barrier", rank, None, 0, lambda _: None)
        return result

    def bcast(self, rank: int, value: Any = None, root: int = 0):
        """Broadcast ``value`` from ``root`` to every rank."""
        self._check_rank(root)
        size_estimate = len(value) if isinstance(value, (bytes, bytearray)) else 64
        result = yield from self._enter(
            "bcast", rank, value if rank == root else None, size_estimate,
            lambda contributions: contributions[root])
        return result

    def gather(self, rank: int, value: Any, root: int = 0):
        """Gather one value per rank at ``root`` (others receive ``None``)."""
        self._check_rank(root)
        gathered = yield from self._enter(
            "gather", rank, value, 64 * self.size,
            lambda contributions: [contributions[index] for index in range(self.size)])
        return gathered if rank == root else None

    def allgather(self, rank: int, value: Any, payload_bytes=None):
        """Gather one value per rank at every rank.

        ``payload_bytes`` overrides the default 64-bytes-per-rank estimate —
        either a byte count or a callable over the collected contributions
        (for values whose wire size depends on what every rank brought).
        """
        if payload_bytes is None:
            payload_bytes = 64 * self.size
        gathered = yield from self._enter(
            "allgather", rank, value, payload_bytes,
            lambda contributions: SharedList(
                contributions[index] for index in range(self.size)))
        return gathered

    def allreduce(self, rank: int, value: Any, op: Callable[[Any, Any], Any] = None):
        """Reduce one value per rank with ``op`` (default: sum) at every rank."""
        def finalize(contributions: Dict[int, Any]) -> Any:
            values = [contributions[index] for index in range(self.size)]
            if op is None:
                return sum(values)
            result = values[0]
            for item in values[1:]:
                result = op(result, item)
            return result

        reduced = yield from self._enter("allreduce", rank, value, 64, finalize)
        return reduced

    def alltoallv(self, rank: int, send_items: List[Any],
                  sizeof: Optional[Callable[[Any], int]] = None):
        """Personalized all-to-all: element ``j`` of ``send_items`` goes to rank ``j``.

        Every rank supplies one item per destination (lists of pieces, for
        the two-phase collective-buffering exchange) and receives the list
        ``[item from rank 0, item from rank 1, ...]`` addressed to it.

        ``sizeof`` prices one item (bytes on the wire); the charged cost uses
        the *bottleneck* rank — the largest sent-plus-received volume over
        any single NIC — rather than the total volume, since the pairwise
        transfers proceed in parallel.  A rank's item addressed to itself is
        a local copy and moves over no NIC, so it costs nothing.
        """
        if len(send_items) != self.size:
            raise MPIError(
                f"alltoallv needs one item per rank ({self.size}), "
                f"got {len(send_items)}")
        measure = sizeof or (lambda item: 64)

        def finalize(contributions: Dict[int, Any]) -> List[List[Any]]:
            return [[contributions[src][dst] for src in range(self.size)]
                    for dst in range(self.size)]

        def bottleneck_bytes(contributions: Dict[int, Any]) -> int:
            sent = [sum(measure(item)
                        for dst, item in enumerate(contributions[src])
                        if dst != src)
                    for src in range(self.size)]
            received = [sum(measure(contributions[src][dst])
                            for src in range(self.size) if src != dst)
                        for dst in range(self.size)]
            return max(s + r for s, r in zip(sent, received))

        matrix = yield from self._enter(
            "alltoallv", rank, send_items, bottleneck_bytes, finalize)
        return matrix[rank]

    def alltoallv_sparse(self, rank: int, send_map: Dict[int, Any],
                         sizeof: Optional[Callable[[Any], int]] = None):
        """Sparse personalized all-to-all: ``send_map[dst]`` goes to rank ``dst``.

        Semantically :meth:`alltoallv` where absent destinations send
        nothing, but both the exchange and the cost model only touch the
        non-empty entries — on a collective write/read most ranks talk to a
        handful of file-domain owners, so the dense one-item-per-rank lists
        (and their O(size²) bottleneck scan) waste nearly all their work.
        Returns ``{src: item}`` for the items addressed to this rank.

        All ranks of a call site must use the same variant (dense or sparse),
        exactly as MPI requires matching collective calls.
        """
        for dst in send_map:
            self._check_rank(dst)
        measure = sizeof or (lambda item: 64)

        def finalize(contributions: Dict[int, Any]) -> List[Dict[int, Any]]:
            inboxes: List[Dict[int, Any]] = [{} for _ in range(self.size)]
            for src in range(self.size):
                for dst, item in contributions[src].items():
                    inboxes[dst][src] = item
            return inboxes

        def bottleneck_bytes(contributions: Dict[int, Any]) -> int:
            load = [0] * self.size
            for src in range(self.size):
                for dst, item in contributions[src].items():
                    if dst == src:
                        continue
                    nbytes = measure(item)
                    load[src] += nbytes
                    load[dst] += nbytes
            return max(load) if load else 0

        inboxes = yield from self._enter(
            "alltoallv", rank, send_map, bottleneck_bytes, finalize)
        return inboxes[rank]

    def scatter(self, rank: int, values: Optional[List[Any]] = None, root: int = 0):
        """Scatter one element of ``values`` (given at ``root``) to each rank."""
        self._check_rank(root)

        def finalize(contributions: Dict[int, Any]) -> List[Any]:
            items = contributions[root]
            if items is None or len(items) != self.size:
                raise MPIError("scatter root must supply one value per rank")
            return list(items)

        scattered = yield from self._enter(
            "scatter", rank, values if rank == root else None, 64 * self.size,
            finalize)
        return scattered[rank]
