"""MPI-like derived datatypes and their flattening to byte regions.

MPI applications describe non-contiguous file accesses with derived
datatypes; the MPI-I/O layer flattens them into ``(offset, length)`` lists
before talking to the storage back-end.  This module reproduces the datatype
constructors the paper's workloads need:

* :class:`BasicType` — the predefined types (BYTE, INT, FLOAT, DOUBLE);
* :class:`Contiguous` — ``count`` repetitions of a base type;
* :class:`Vector` — ``count`` blocks of ``blocklength`` base elements spaced
  ``stride`` base elements apart (the classic strided access);
* :class:`Indexed` — explicit per-block lengths and displacements;
* :class:`Subarray` — an n-dimensional subarray of an n-dimensional array
  (the datatype MPI-tile-IO and ghost-cell dumps build their file views
  from).

``flatten()`` returns the byte regions of *one* instance of the datatype
relative to its own origin, with adjacent regions coalesced.  ``size`` is the
number of actual data bytes; ``extent`` is the span the next instance starts
after (lower bound 0, as produced by these constructors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.regions import Region, RegionList
from repro.errors import DatatypeError


class Datatype:
    """Base class of every datatype."""

    @property
    def size(self) -> int:
        """Number of data bytes in one instance."""
        raise NotImplementedError

    @property
    def extent(self) -> int:
        """Span of one instance (where the next tiled instance begins)."""
        raise NotImplementedError

    def flatten(self) -> RegionList:
        """Byte regions of one instance, relative to its origin, coalesced.

        The result is memoized on the instance: datatypes are immutable, and
        file views flatten the same filetype on every access, so recomputing
        the type map per access would dominate collective planning.
        """
        cached = self.__dict__.get("_flat")
        if cached is None:
            cached = self._flatten()
            object.__setattr__(self, "_flat", cached)
        return cached

    def _flatten(self) -> RegionList:
        """Compute the type map (subclass hook behind the memoized API)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def tiled(self, count: int, origin: int = 0) -> RegionList:
        """Regions of ``count`` instances tiled back to back from ``origin``."""
        if count < 0:
            raise DatatypeError(f"negative count {count}")
        if count == 0:
            return RegionList()
        base = self.flatten()
        # fast path: a fully dense datatype (size == extent, one region) tiles
        # to one big contiguous region — this keeps flattening large
        # contiguous accesses O(1) instead of O(bytes)
        if (len(base) == 1 and base[0].offset == 0
                and base[0].size == self.extent == self.size):
            return RegionList([Region(origin, count * self.extent)])
        regions: List[Region] = []
        for index in range(count):
            shift = origin + index * self.extent
            regions.extend(region.shift(shift) for region in base)
        return RegionList(regions).normalized()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} size={self.size} "
                f"extent={self.extent}>")


@dataclass(frozen=True)
class BasicType(Datatype):
    """A predefined MPI type of fixed byte width."""

    name: str
    width: int

    @property
    def size(self) -> int:
        return self.width

    @property
    def extent(self) -> int:
        return self.width

    def _flatten(self) -> RegionList:
        return RegionList([(0, self.width)])


BYTE = BasicType("MPI_BYTE", 1)
INT = BasicType("MPI_INT", 4)
FLOAT = BasicType("MPI_FLOAT", 4)
DOUBLE = BasicType("MPI_DOUBLE", 8)


@dataclass(frozen=True)
class Contiguous(Datatype):
    """``count`` contiguous repetitions of ``base``."""

    count: int
    base: Datatype = BYTE

    def __post_init__(self) -> None:
        if self.count < 0:
            raise DatatypeError(f"negative count {self.count}")

    @property
    def size(self) -> int:
        return self.count * self.base.size

    @property
    def extent(self) -> int:
        return self.count * self.base.extent

    def _flatten(self) -> RegionList:
        return self.base.tiled(self.count)


@dataclass(frozen=True)
class Vector(Datatype):
    """``count`` blocks of ``blocklength`` base elements, stride in elements."""

    count: int
    blocklength: int
    stride: int
    base: Datatype = BYTE

    def __post_init__(self) -> None:
        if self.count < 0 or self.blocklength < 0:
            raise DatatypeError("count and blocklength must be non-negative")
        if self.stride < self.blocklength:
            raise DatatypeError(
                f"stride ({self.stride}) smaller than blocklength "
                f"({self.blocklength}) would overlap blocks")

    @property
    def size(self) -> int:
        return self.count * self.blocklength * self.base.size

    @property
    def extent(self) -> int:
        if self.count == 0:
            return 0
        return ((self.count - 1) * self.stride + self.blocklength) * self.base.extent

    def _flatten(self) -> RegionList:
        unit = self.base.extent
        block = self.base.tiled(self.blocklength)
        regions: List[Region] = []
        for index in range(self.count):
            shift = index * self.stride * unit
            regions.extend(region.shift(shift) for region in block)
        return RegionList(regions).normalized()


@dataclass(frozen=True)
class Indexed(Datatype):
    """Blocks with explicit lengths and displacements (in base elements)."""

    blocklengths: Tuple[int, ...]
    displacements: Tuple[int, ...]
    base: Datatype = BYTE

    def __init__(self, blocklengths: Sequence[int], displacements: Sequence[int],
                 base: Datatype = BYTE):
        object.__setattr__(self, "blocklengths", tuple(int(b) for b in blocklengths))
        object.__setattr__(self, "displacements", tuple(int(d) for d in displacements))
        object.__setattr__(self, "base", base)
        if len(self.blocklengths) != len(self.displacements):
            raise DatatypeError("blocklengths and displacements must have equal length")
        if any(length < 0 for length in self.blocklengths):
            raise DatatypeError("negative block length")
        if any(disp < 0 for disp in self.displacements):
            raise DatatypeError("negative displacement")

    @property
    def size(self) -> int:
        return sum(self.blocklengths) * self.base.size

    @property
    def extent(self) -> int:
        if not self.blocklengths:
            return 0
        end = max(disp + length for disp, length
                  in zip(self.displacements, self.blocklengths))
        return end * self.base.extent

    def _flatten(self) -> RegionList:
        unit = self.base.extent
        block_cache = {}
        regions: List[Region] = []
        for length, disp in zip(self.blocklengths, self.displacements):
            if length not in block_cache:
                block_cache[length] = self.base.tiled(length)
            regions.extend(region.shift(disp * unit)
                           for region in block_cache[length])
        return RegionList(regions).normalized()


@dataclass(frozen=True)
class Subarray(Datatype):
    """An n-dimensional subarray of an n-dimensional array (row-major order).

    ``sizes`` are the full array dimensions, ``subsizes`` the subarray
    dimensions and ``starts`` its corner, all in elements of ``base`` — the
    same triple ``MPI_Type_create_subarray`` takes.  The extent of the type is
    the whole array, so tiling instances is rarely meaningful; the MPI-I/O
    layer uses a single instance as the file view of one rank.
    """

    sizes: Tuple[int, ...]
    subsizes: Tuple[int, ...]
    starts: Tuple[int, ...]
    base: Datatype = BYTE

    def __init__(self, sizes: Sequence[int], subsizes: Sequence[int],
                 starts: Sequence[int], base: Datatype = BYTE):
        object.__setattr__(self, "sizes", tuple(int(s) for s in sizes))
        object.__setattr__(self, "subsizes", tuple(int(s) for s in subsizes))
        object.__setattr__(self, "starts", tuple(int(s) for s in starts))
        object.__setattr__(self, "base", base)
        ndims = len(self.sizes)
        if not ndims:
            raise DatatypeError("subarray needs at least one dimension")
        if len(self.subsizes) != ndims or len(self.starts) != ndims:
            raise DatatypeError("sizes, subsizes and starts must have equal length")
        for size, subsize, start in zip(self.sizes, self.subsizes, self.starts):
            if size <= 0 or subsize < 0 or start < 0:
                raise DatatypeError("invalid subarray dimensions")
            if start + subsize > size:
                raise DatatypeError(
                    f"subarray [{start}, {start + subsize}) exceeds dimension {size}")

    @property
    def size(self) -> int:
        total = self.base.size
        for subsize in self.subsizes:
            total *= subsize
        return total

    @property
    def extent(self) -> int:
        total = self.base.extent
        for size in self.sizes:
            total *= size
        return total

    def _flatten(self) -> RegionList:
        unit = self.base.extent
        ndims = len(self.sizes)

        # the last dimension is contiguous: one region per "row" of the subarray
        row_elements = self.subsizes[-1]
        if row_elements == 0 or any(s == 0 for s in self.subsizes):
            return RegionList()

        # strides (in elements) of each dimension in the full array
        strides = [1] * ndims
        for dim in range(ndims - 2, -1, -1):
            strides[dim] = strides[dim + 1] * self.sizes[dim + 1]

        regions: List[Region] = []
        # iterate over every index combination of all but the last dimension
        counters = [0] * (ndims - 1)
        while True:
            element_offset = self.starts[-1]
            for dim in range(ndims - 1):
                element_offset += (self.starts[dim] + counters[dim]) * strides[dim]
            regions.append(Region(element_offset * unit, row_elements * unit))
            # odometer increment
            dim = ndims - 2
            while dim >= 0:
                counters[dim] += 1
                if counters[dim] < self.subsizes[dim]:
                    break
                counters[dim] = 0
                dim -= 1
            else:
                break
            if ndims == 1:
                break
        return RegionList(regions).normalized()
