"""Simulated MPI: ranks, communicators and derived datatypes.

mpi4py / a real MPI runtime is not available in this environment, so the MPI
processes of the paper's experiments are reproduced as discrete-event
processes: each rank is a generator running on its own compute node of the
simulated cluster, and the communicator provides the collective operations
(barrier, bcast, gather, allgather, allreduce) the MPI-I/O layer and the
workloads need.  Derived datatypes (vector, subarray, indexed) describe the
non-contiguous file views exactly as MPI datatypes do, and flatten to the
byte-region lists consumed by the storage back-ends.
"""

from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    Contiguous,
    Datatype,
    Indexed,
    Subarray,
    Vector,
)
from repro.mpi.simcomm import Communicator
from repro.mpi.launcher import MPIContext, run_mpi_job

__all__ = [
    "Datatype",
    "BYTE",
    "INT",
    "FLOAT",
    "DOUBLE",
    "Contiguous",
    "Vector",
    "Indexed",
    "Subarray",
    "Communicator",
    "MPIContext",
    "run_mpi_job",
]
