"""Exception hierarchy shared by every repro subsystem.

Keeping all exception types in a single module lets callers catch the broad
:class:`ReproError` without importing the subsystem that raised it, while
still being able to discriminate on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the repro package."""


class SimulationError(ReproError):
    """Generic error inside the discrete-event simulation engine."""


class ProcessInterrupted(SimulationError):
    """Raised inside a simulated process that was interrupted by another."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still waiting."""


class StorageError(ReproError):
    """Base class of storage-backend errors (BlobSeer, vstore, posixfs)."""


class BlobNotFound(StorageError):
    """The requested BLOB id does not exist."""


class VersionNotFound(StorageError):
    """The requested snapshot version has not been published (or never will)."""


class ChunkNotFound(StorageError):
    """A data provider was asked for a chunk id it does not hold."""


class ProviderUnavailable(StorageError):
    """The addressed data provider is marked failed / unreachable."""


class InvalidRegion(StorageError):
    """A byte region is malformed (negative offset, non-positive size, ...)."""


class OutOfBounds(StorageError):
    """An access falls outside the addressable space of the target object."""


class LockError(StorageError):
    """Base class for distributed-lock-manager errors."""


class LockNotHeld(LockError):
    """Attempted to release a lock that the caller does not hold."""


class FileSystemError(StorageError):
    """Base class for POSIX-like file-system errors."""


class FileNotFound(FileSystemError):
    """The path does not name an existing file."""


class FileExists(FileSystemError):
    """Exclusive creation requested but the path already exists."""


class MPIError(ReproError):
    """Base class for simulated-MPI errors."""


class MPIIOError(MPIError):
    """Base class for MPI-I/O layer errors."""


class DatatypeError(MPIError):
    """A derived datatype definition is inconsistent."""


class AtomicityViolation(ReproError):
    """The atomicity checker proved that a final state is not MPI-atomic."""


class BenchmarkError(ReproError):
    """An experiment definition or run is inconsistent."""
