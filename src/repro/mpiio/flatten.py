"""Flattening MPI file views into byte regions.

An MPI file view is ``(displacement, etype, filetype)``: starting at
``displacement``, the file is tiled with repetitions of ``filetype``; only
the bytes belonging to the filetype's type map are *accessible*, and offsets
passed to ``write_at`` / ``read_at`` count in ``etype`` units *within the
accessible bytes*.  Data read or written fills accessible bytes in order.

:func:`flatten_view_access` turns "access ``nbytes`` at etype-offset
``offset`` under this view" into the absolute byte regions touched — the
representation every ADIO driver consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.listio import IOVector
from repro.core.regions import Region, RegionList
from repro.errors import MPIIOError
from repro.mpi.datatypes import BYTE, Datatype


@dataclass
class FileView:
    """One rank's file view."""

    displacement: int = 0
    etype: Datatype = BYTE
    filetype: Datatype = field(default_factory=lambda: BYTE)

    def __post_init__(self) -> None:
        if self.displacement < 0:
            raise MPIIOError(f"negative view displacement {self.displacement}")
        if self.filetype.size == 0:
            raise MPIIOError("filetype with zero data bytes cannot be accessed")
        if self.etype.size == 0:
            raise MPIIOError("etype must have a non-zero size")
        if self.filetype.size % self.etype.size != 0:
            raise MPIIOError(
                "filetype size must be a multiple of the etype size "
                f"({self.filetype.size} vs {self.etype.size})")


def flatten_view_access(view: FileView, offset_etypes: int,
                        nbytes: int) -> RegionList:
    """Absolute byte regions of an ``nbytes`` access at ``offset_etypes``.

    ``offset_etypes`` is the offset in etype units into the *accessible*
    bytes of the view (MPI's explicit-offset addressing).
    """
    if offset_etypes < 0:
        raise MPIIOError(f"negative access offset {offset_etypes}")
    if nbytes < 0:
        raise MPIIOError(f"negative access size {nbytes}")
    if nbytes == 0:
        return RegionList()

    skip_bytes = offset_etypes * view.etype.size
    tile_regions = view.filetype.flatten()
    tile_data_bytes = view.filetype.size
    tile_extent = view.filetype.extent

    # fast path: a dense filetype (every byte of its extent is accessible)
    # makes the whole view contiguous, so the access is a single region —
    # avoids iterating tile by tile for plain byte-stream views
    if (len(tile_regions) == 1 and tile_regions[0].offset == 0
            and tile_regions[0].size == tile_data_bytes == tile_extent):
        return RegionList([Region(view.displacement + skip_bytes, nbytes)])

    # skip whole tiles first
    tile_index = skip_bytes // tile_data_bytes
    skip_in_tile = skip_bytes % tile_data_bytes

    regions: List[Region] = []
    remaining = nbytes
    while remaining > 0:
        tile_origin = view.displacement + tile_index * tile_extent
        for region in tile_regions:
            if remaining <= 0:
                break
            if skip_in_tile >= region.size:
                skip_in_tile -= region.size
                continue
            start = region.offset + skip_in_tile
            usable = region.size - skip_in_tile
            take = min(usable, remaining)
            regions.append(Region(tile_origin + start, take))
            remaining -= take
            skip_in_tile = 0
        tile_index += 1
        skip_in_tile = 0
    return RegionList(regions).normalized()


def build_write_vector(view: FileView, offset_etypes: int,
                       data: bytes) -> IOVector:
    """Scatter ``data`` over the view's accessible bytes as a write vector."""
    regions = flatten_view_access(view, offset_etypes, len(data))
    pairs: List[Tuple[int, bytes]] = []
    cursor = 0
    for region in regions:
        pairs.append((region.offset, data[cursor:cursor + region.size]))
        cursor += region.size
    return IOVector.for_write(pairs)


def build_read_vector(view: FileView, offset_etypes: int,
                      nbytes: int) -> IOVector:
    """The read vector of an ``nbytes`` access under the view."""
    regions = flatten_view_access(view, offset_etypes, nbytes)
    return IOVector.for_read([(region.offset, region.size) for region in regions])
