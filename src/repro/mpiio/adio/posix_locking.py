"""The traditional locking ADIO driver over the POSIX parallel file system.

This reproduces the baseline the paper evaluates against: MPI atomicity is
built on top of POSIX atomicity by locking, at the MPI-I/O layer, the
*smallest contiguous extent covering all regions* of a non-contiguous access
before issuing the per-region POSIX reads/writes.  As the paper points out,
that covering extent also spans unaccessed bytes, so concurrent accesses that
would not actually conflict still serialize — the cost the versioning
approach removes.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.mpiio.adio.base import ADIODriver
from repro.posixfs.client import PosixClient
from repro.posixfs.lock_manager import LockMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.mpi.simcomm import Communicator
    from repro.posixfs.deployment import PosixFsDeployment


class PosixLockingDriver(ADIODriver):
    """Covering-extent locking (the default ROMIO-over-POSIX strategy)."""

    name = "posix-locking"
    native_atomicity = False

    def __init__(self, deployment: "PosixFsDeployment", node: "Node",
                 rank_name: Optional[str] = None,
                 stripe_size: Optional[int] = None,
                 stripe_count: Optional[int] = None):
        super().__init__()
        self.deployment = deployment
        self.client = PosixClient(deployment, node,
                                  name=rank_name or f"adio:{node.name}")
        self.stripe_size = stripe_size
        self.stripe_count = stripe_count
        #: simulated time spent waiting for MPI-I/O layer (fcntl) locks
        self.lock_wait_time: float = 0.0

    # ------------------------------------------------------------------
    @property
    def observability(self):
        """The cluster's observability handle (digests, flight recorder)."""
        return self.client.cluster.obs

    # ------------------------------------------------------------------
    def _lock_regions(self, path: str, vector: IOVector, mode: LockMode):
        """What to lock for an atomic access: the covering extent."""
        extent = vector.covering_extent()
        return RegionList([extent]) if not extent.empty else RegionList()

    # ------------------------------------------------------------------
    def open(self, path: str, size_hint: int, create: bool, rank: int = 0,
             comm: Optional["Communicator"] = None):
        """Collective open: rank 0 creates the file, everyone then opens it."""
        if create and rank == 0:
            attributes = yield from self.client.create(
                path, stripe_size=self.stripe_size,
                stripe_count=self.stripe_count, exist_ok=True)
        if comm is not None:
            yield from comm.barrier(rank)
        attributes = yield from self.client.open(path)
        return attributes

    def write_vector(self, path: str, vector: IOVector, atomic: bool,
                     rank: int = 0, comm: Optional["Communicator"] = None):
        """Lock (covering extent), write each region with POSIX writes, unlock."""
        self._account_write(vector)
        handle = None
        if atomic:
            before = self.client.cluster.sim.now
            handle = yield from self.client.lock_regions(
                path, self._lock_regions(path, vector, LockMode.EXCLUSIVE),
                LockMode.EXCLUSIVE, namespace="fcntl")
            self.lock_wait_time += self.client.cluster.sim.now - before
        # while the MPI-I/O layer lock is held the per-write POSIX extent
        # locks are redundant (no other writer can conflict), so skip them —
        # otherwise the baseline would be charged twice for the same mutual
        # exclusion
        written = yield from self.client.write_vector(path, vector,
                                                      _locked=handle is not None)
        if handle is not None:
            yield from self.client.unlock(handle)
        return written

    def read_vector(self, path: str, vector: IOVector, atomic: bool,
                    rank: int = 0, comm: Optional["Communicator"] = None):
        """Lock (shared covering extent) in atomic mode, then POSIX reads."""
        self._account_read(vector)
        handle = None
        if atomic:
            handle = yield from self.client.lock_regions(
                path, self._lock_regions(path, vector, LockMode.SHARED),
                LockMode.SHARED, namespace="fcntl")
        pieces = yield from self.client.read_vector(path, vector)
        if handle is not None:
            yield from self.client.unlock(handle)
        return pieces

    def file_size(self, path: str):
        """Size recorded by the MDS."""
        attributes = yield from self.client.stat(path)
        return attributes.size


class _ListLockMixin:
    """Shared helper turning the lock target into the exact accessed ranges."""

    def _lock_regions(self, path: str, vector: IOVector, mode: LockMode):
        return vector.region_list().normalized()
