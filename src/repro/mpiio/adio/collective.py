"""Two-phase collective buffering over the write coalescer.

Thakur, Gropp & Lusk's classic optimization, transplanted onto the paper's
versioning backend: on a collective write every rank holds a (possibly
non-contiguous) piece of a shared access, and committing each piece
separately costs one version ticket plus one copy-on-write metadata build
*per rank*.  Two-phase collective buffering instead

1. exchanges the ranks' access *descriptions* (one ``allgather`` of region
   lists) so everyone can compute the same partition of the file domain into
   ``num_aggregators`` contiguous, chunk-aligned stripes;
2. exchanges the *data* (one ``alltoallv``) so each stripe's pieces land on
   the one aggregator rank that owns it;
3. has each aggregator merge its pieces — sorted by source rank, so overlaps
   resolve exactly as a serial application of the ranks' writes in rank
   order — and stage the merged stripe in its
   :class:`~repro.blobseer.writepath.coalescer.WriteCoalescer`, committing
   the whole group's collective as ``num_aggregators`` snapshot batches (one
   ``allocate``, one ticket, one metadata build each) instead of ``N``;
4. shares the published watermark back with every rank in the closing
   ``allgather``, so each participant's client learns — at zero RPC cost —
   a published version containing its own data (read-your-writes without a
   ``latest`` round-trip, and write-through warmth on the aggregators).

The aggregators talk to the version manager; the other ranks spend *zero*
control-plane round-trips on the collective — the traffic that remains is
MPI-internal exchange, which moves over the compute interconnect instead of
hammering the storage control plane.

Failure containment: any phase that fails on one rank (a dead provider under
an aggregator's commit, a validation error while merging) is reported
through the closing exchange instead of being raised mid-protocol, so the
surviving ranks never hang in a half-entered collective.  A failed
aggregator discards its staged stripe (the group already observed the
failure; silently retrying it at the next flush point would resurrect a
write the application saw fail), releases its ticket through the commit
engine's abort/rollback path, and every rank raises — with no torn snapshot
left behind and publication never stalled for bystanders.  Like MPI itself,
a *failed* collective leaves the file state undefined within the access
range: stripes whose aggregators succeeded are durably published (each one
a complete, internally consistent snapshot), only the failed parts are
absent — the guarantees are snapshot integrity and group progress, not
all-or-nothing application of the collective.

In MPI *atomic* mode the collective path is bypassed: splitting one rank's
access across several stripe snapshots could let a concurrent reader observe
half of that rank's write, so atomic collectives keep the native
one-rank-one-snapshot guarantee of the versioning backend.

The read side (:class:`CollectiveReader`) is the mirror image: on a
``read_at_all`` every rank would otherwise resolve the *same* shared extent
against the segment tree independently — ``N`` ``latest`` round-trips and
``N`` tree walks for one logical access.  The collective read instead

1. allgathers the ranks' access descriptions plus their publication
   watermarks, pinning ONE snapshot version for the whole group: the maximum
   of every rank's watermark and consumed one-shot read hint, topped by a
   single ``latest`` RPC issued by the lead resolver only when it held no
   hint — so no rank can ever be served a version older than its own
   published commits, and the group observes one consistent snapshot;
2. partitions the union extent into chunk-aligned stripes owned by
   ``num_aggregators`` *resolver* ranks (same config/heuristic as the write
   side); each resolver runs one batched
   :class:`~repro.blobseer.metadata.segment_tree.ReadPlanner` walk through
   its warm :class:`~repro.blobseer.metadata.cache.MetadataNodeCache` and
   fetches its stripe's chunks — non-resolver ranks spend *zero* metadata
   control RPCs;
3. scatters the fetched pieces back over ``alltoallv``, piggybacking each
   resolver's traversal trace so every rank's node cache warms up from the
   broadcast plan (subsequent independent reads start warm, again at zero
   RPC cost); never-written ranges travel as compact *hole descriptors* —
   16 bytes each instead of their literal zero payload — and are
   materialized locally by the receiving rank (zero-extent elision);
4. shares outcomes in a closing ``allgather``: failures anywhere raise on
   every rank (nobody hangs in a half-entered collective), caches are only
   populated from complete, group-approved plans, and on success every rank
   refreshes its one-shot read hint at the pinned version.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.core.regions import Region, RegionList
from repro.errors import MPIIOError
from repro.mpi.simcomm import Communicator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.client import BlobClient

#: heuristic used when neither the driver nor the cluster config names an
#: aggregator count: one aggregator per this many ranks (ROMIO defaults its
#: ``cb_nodes`` to the node count; with one rank per node this is a stand-in
#: that still demonstrates the aggregation win)
DEFAULT_RANKS_PER_AGGREGATOR = 4

#: wire size of one serialized ``(offset, size)`` access description entry
EXTENT_DESCRIPTION_BYTES = 16


def resolve_aggregator_count(size: int, configured: Optional[int] = None) -> int:
    """Number of aggregator ranks for a communicator of ``size`` ranks."""
    if size <= 0:
        raise MPIIOError(f"communicator size must be positive, got {size}")
    if configured is None:
        return max(1, size // DEFAULT_RANKS_PER_AGGREGATOR)
    if configured <= 0:
        raise MPIIOError(
            f"collective aggregator count must be positive, got {configured}")
    return min(size, configured)


def aggregator_ranks(size: int, count: int) -> List[int]:
    """The ``count`` ranks that act as aggregators, spread over the job.

    Evenly spaced (``[0, size/count, 2*size/count, ...]``) so aggregation
    load lands on different nodes rather than piling onto the first ones.
    """
    if not 1 <= count <= size:
        raise MPIIOError(f"need 1..{size} aggregators, got {count}")
    return [(index * size) // count for index in range(count)]


def partition_file_domain(lo: int, hi: int, count: int,
                          align: int) -> List[Tuple[int, int]]:
    """Split ``[lo, hi)`` into ``count`` contiguous half-open stripes.

    Stripe boundaries sit on *absolute* multiples of ``align`` (the BLOB
    chunk size) — the grid is anchored at the aligned floor of ``lo``, not
    at ``lo`` itself — so one chunk is never written by two aggregators and
    each chunk's copy-on-write cost is paid exactly once even when the
    collective's extent starts mid-chunk.  Trailing stripes may be empty
    when the extent is smaller than ``count`` aligned stripes.
    """
    if hi <= lo:
        raise MPIIOError(f"empty file domain [{lo}, {hi})")
    base = lo - (lo % align) if align > 0 else lo
    span = hi - base
    stripe = -(-span // count)  # ceil
    if align > 0:
        stripe = -(-stripe // align) * align
    domains: List[Tuple[int, int]] = []
    for index in range(count):
        start = max(lo, min(base + index * stripe, hi))
        end = min(base + (index + 1) * stripe, hi)
        domains.append((start, max(start, end)))
    return domains


def _domain_index(offset: int, domains: List[Tuple[int, int]],
                  ends: Optional[List[int]] = None) -> int:
    """Index of the stripe containing ``offset``.

    Stripes are contiguous and sorted, so a binary search over the (non-
    decreasing) end offsets finds the owner; callers splitting many pieces
    pass the precomputed ``ends`` list once instead of per lookup.
    """
    if ends is None:
        ends = [end for _start, end in domains]
    index = bisect_right(ends, offset)
    if index < len(domains) and domains[index][0] <= offset:
        return index
    raise MPIIOError(f"offset {offset} outside the partitioned file domain")


@dataclass
class CollectiveStats:
    """Per-rank counters of the collective-buffering path."""

    #: collective writes this rank participated in
    collectives: int = 0
    #: exchange bytes this rank contributed: access descriptions (phase 1)
    #: plus data pieces shipped to other ranks' aggregators (phase 2)
    bytes_sent: int = 0
    #: payload bytes this rank received as an aggregator
    bytes_received: int = 0
    #: merged stripe batches this rank committed as an aggregator
    stripes_committed: int = 0
    #: application writes attributed to this rank's stripe commits
    attributed_writes: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict form for benchmark artifacts."""
        return {
            "collectives": self.collectives,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "stripes_committed": self.stripes_committed,
            "attributed_writes": self.attributed_writes,
        }


def _piece_bytes(piece: Tuple[int, int, bytes]) -> int:
    """Wire size of one exchanged piece (payload plus a small header).

    The header is one ``(offset, size)`` descriptor — the same
    :data:`EXTENT_DESCRIPTION_BYTES` a standalone extent description
    costs, which is also exactly what a *hole* descriptor costs on the
    read side: elided zero ranges are priced at descriptor size, never at
    their materialized size (pinned by the exact-accounting regression
    test over ``Communicator.bytes_moved``).
    """
    return len(piece[2]) + EXTENT_DESCRIPTION_BYTES


def _description_bytes(contributions: Dict[int, Tuple],
                       per_entry_extra: int = 0) -> int:
    """Wire size of one opening allgather's access descriptions.

    Healthy entries cost one :data:`EXTENT_DESCRIPTION_BYTES` per extent
    (plus ``per_entry_extra`` fixed bytes per rank — the read side's
    watermark), failure reports a flat 64.
    """
    return sum(EXTENT_DESCRIPTION_BYTES * len(entry[1]) + per_entry_extra
               if entry[0] == "ok" else 64
               for entry in contributions.values())


def _phase(ctx, gen, name: str, **args):
    """Run one protocol phase under a mainline span (tracing only).

    The collective protocols execute in the rank's sequential mainline, so
    phase spans use the context's stack — anything they trigger deeper down
    (coalescer batches, commits, RPCs) parents under the phase naturally.
    ``ctx is None`` (tracing disabled) is a pure passthrough.
    """
    if ctx is None:
        result = yield from gen
        return result
    span = ctx.begin(name, cat="collective", **args)
    try:
        result = yield from gen
    finally:
        ctx.finish(span)
    return result


def _shared_memo(gathered, key, compute):
    """Memoize ``compute()`` on an allgather result shared by every rank.

    Each rank of a simulated collective derives the *same* planning from the
    *same* gathered descriptions; caching the derivation on the shared
    :class:`~repro.mpi.simcomm.SharedList` runs it once per collective
    instead of once per rank.  Falls back to plain computation when the
    result is not a memo-carrying list (single tests driving the protocol
    with hand-built lists).
    """
    memo = getattr(gathered, "memo", None)
    if memo is None:
        return compute()
    value = memo.get(key)
    if value is None:
        value = memo[key] = compute()
    return value


def _scan_write_gather(gathered) -> Tuple[list, list, list, int, int]:
    """One pass over the opening gather: errors, extents, data hull.

    Returns ``(early_errors, extents_by_rank, data_extents, lo, hi)``;
    ``lo``/``hi`` are 0 when no rank brought data bytes.
    """
    early_errors: list = []
    extents_by_rank: list = []
    data_extents: list = []
    lo = None
    hi = 0
    for entry in gathered:
        if entry[0] == "err":
            early_errors.append(entry[1])
            extents_by_rank.append(())
            continue
        extents = entry[1]
        extents_by_rank.append(extents)
        for offset, size in extents:
            if size:
                data_extents.append((offset, size))
                if lo is None or offset < lo:
                    lo = offset
                end = offset + size
                if end > hi:
                    hi = end
    return early_errors, extents_by_rank, data_extents, lo or 0, hi


def _plan_write_partition(size: int, count: int, lo: int, hi: int,
                          chunk_size: int, extents_by_rank) -> Tuple[
                              List[int], List[Tuple[int, int]], List[int], List[int]]:
    """Aggregator owners, stripe domains and write attribution for one job.

    Each rank's one logical write is attributed to the aggregator owning its
    first data byte, so the attributions sum to the number of data-bearing
    ranks however the stripes slice them.
    """
    owners = aggregator_ranks(size, count)
    domains = partition_file_domain(lo, hi, count, chunk_size)
    domain_ends = [end for _start, end in domains]
    attributed = [0] * count
    for extents in extents_by_rank:
        first = next((offset for offset, size in extents if size), None)
        if first is not None:
            attributed[_domain_index(first, domains, domain_ends)] += 1
    return owners, domains, domain_ends, attributed


def _scan_read_gather(gathered) -> Tuple[list, list, int, list, int, int]:
    """One pass over a read collective's opening gather.

    Returns ``(early_errors, extents_by_rank, pinned, data_extents, lo,
    hi)``; ``pinned`` is the maximum watermark the healthy ranks brought
    (meaningless, but safe, when any rank reported an error).
    """
    early_errors: list = []
    extents_by_rank: list = []
    data_extents: list = []
    pinned = 0
    lo = None
    hi = 0
    for entry in gathered:
        if entry[0] == "err":
            early_errors.append(entry[1])
            extents_by_rank.append(())
            continue
        extents = entry[1]
        extents_by_rank.append(extents)
        if entry[2] > pinned:
            pinned = entry[2]
        for offset, size in extents:
            if size:
                data_extents.append((offset, size))
                if lo is None or offset < lo:
                    lo = offset
                end = offset + size
                if end > hi:
                    hi = end
    return early_errors, extents_by_rank, pinned, data_extents, lo or 0, hi


class _CollectiveParticipant:
    """Shared owner-count plumbing of both collective protocol sides.

    The write aggregators and the read resolvers of one job must pick the
    *same* owner ranks from the same override/fallback chain (driver
    override → ``ClusterConfig.collective_aggregators`` → the 1-per-4
    heuristic) — the partition math assumes it — so the chain lives here
    exactly once.
    """

    def __init__(self, client: "BlobClient",
                 num_aggregators: Optional[int] = None):
        if num_aggregators is not None and num_aggregators <= 0:
            # fail at construction, not mid-collective: a bad setting that
            # only surfaced inside the protocol would fail one rank's call
            # while its peers are already committed to the exchange
            raise MPIIOError(
                f"collective aggregator count must be positive, "
                f"got {num_aggregators}")
        self.client = client
        #: explicit per-driver override; ``None`` falls back to
        #: ``ClusterConfig.collective_aggregators``, then the heuristic.
        #: Like ROMIO hints, the value must agree across the ranks of a job.
        self.num_aggregators = num_aggregators

    def resolved_count(self, size: int) -> int:
        """Owner (aggregator/resolver) count for a ``size``-rank job."""
        configured = self.num_aggregators
        if configured is None:
            configured = self.client.cluster.config.collective_aggregators
        return resolve_aggregator_count(size, configured)


class CollectiveAggregator(_CollectiveParticipant):
    """One rank's side of the two-phase collective write protocol.

    Every rank of a job owns one instance (wrapping that rank's client);
    the instances coordinate purely through the shared
    :class:`~repro.mpi.simcomm.Communicator`, so there is no shared object —
    exactly like real MPI ranks in separate address spaces.
    """

    def __init__(self, client: "BlobClient",
                 num_aggregators: Optional[int] = None):
        if client.coalescer is None:
            # fail fast: stripe commits stage through the coalescer, and a
            # missing one surfacing mid-protocol (in a failure handler, no
            # less) would strand the peer ranks in a half-entered collective
            raise MPIIOError(
                "CollectiveAggregator needs a client with a write coalescer "
                "(e.g. VectoredClient)")
        super().__init__(client, num_aggregators)
        self.stats = CollectiveStats()

    # ------------------------------------------------------------------
    def collective_write(self, blob_id: str, vector: IOVector, rank: int,
                         comm: Communicator):
        """Execute one collective write; every rank of ``comm`` must call it.

        ``vector`` may be empty (a rank with nothing to write still
        participates in the exchange, as MPI requires).  Returns the bytes
        this rank contributed.  Raises :class:`~repro.errors.MPIIOError` on
        every rank when any rank's part of the protocol failed.
        """
        client = self.client
        failure: Optional[BaseException] = None

        # phase 0 (local): writes this rank queued earlier in program order
        # must take their tickets before the group's stripe commits do
        try:
            if client.coalescer.pending_writes(blob_id):
                yield from client.coalescer.flush(blob_id)
            opening = ("ok", [(request.offset, request.size)
                              for request in vector])
        except Exception as exc:
            failure = exc
            opening = ("err", f"rank {rank}: {exc!r}")

        # phase 1: exchange access descriptions; everyone derives the same
        # file-domain partition (or learns that the collective already died).
        # The descriptions are real exchange traffic too — priced by their
        # actual entry count, not a flat guess, and counted into the stats
        ctx = client.trace_ctx
        if opening[0] == "ok":
            self.stats.bytes_sent += \
                EXTENT_DESCRIPTION_BYTES * len(opening[1])
        gathered = yield from _phase(
            ctx, comm.allgather(rank, opening,
                                payload_bytes=_description_bytes),
            "collective.write.describe", rank=rank)
        early_errors, extents_by_rank, data_extents, lo, hi = _shared_memo(
            gathered, "write_scan", lambda: _scan_write_gather(gathered))
        if early_errors:
            # another rank's phase-0 flush may have published while ours
            # failed; a pre-collective hint is not trustworthy after a
            # failed collective, so the next default read must round-trip
            client.drop_read_hint(blob_id)
            if failure is not None:
                raise failure
            raise MPIIOError(
                "collective write aborted before the exchange: "
                + "; ".join(early_errors))
        if not data_extents:
            # collectively zero bytes (empty vectors, or only zero-size
            # requests): nothing to exchange or commit anywhere
            self.stats.collectives += 1
            return 0

        # partition + piece splitting must not raise mid-protocol either: a
        # rank failing here (a descriptor fetch against a dead manager, a
        # bad aggregator setting) still enters the exchange empty-handed and
        # reports through the closing phase, so its peers never hang
        owners: List[int] = []
        send: Dict[int, List[Tuple[int, int, bytes]]] = {}
        try:
            blob = yield from client._descriptor(blob_id)
            count = self.resolved_count(comm.size)
            owners, domains, domain_ends, attributed = _shared_memo(
                gathered, ("write_plan", count, blob.chunk_size),
                lambda: _plan_write_partition(comm.size, count, lo, hi,
                                              blob.chunk_size,
                                              extents_by_rank))

            # phase 2: ship every piece to the aggregator owning its stripe
            # (a sparse exchange — most ranks only touch a few stripes)
            for sequence, request in enumerate(vector):
                if request.size == 0:
                    continue
                start, end = request.offset, request.offset + request.size
                index = _domain_index(start, domains, domain_ends)
                while start < end:
                    cut = min(end, domains[index][1])
                    data = request.data[start - request.offset:
                                        cut - request.offset]
                    send.setdefault(owners[index], []).append(
                        (sequence, start, data))
                    start = cut
                    index += 1
        except Exception as exc:
            failure = exc
            owners = []
            send = {}
        # pieces addressed to this rank itself are a local copy, not traffic
        self.stats.bytes_sent += sum(_piece_bytes(piece)
                                     for destination, pieces in send.items()
                                     for piece in pieces
                                     if destination != rank)
        received = yield from _phase(
            ctx, comm.alltoallv_sparse(
                rank, send,
                sizeof=lambda pieces: sum(_piece_bytes(piece)
                                          for piece in pieces)),
            "collective.write.exchange_data", rank=rank)

        # phase 3 (aggregators): merge in (source rank, sequence) order —
        # the serial rank-order application — and commit via the coalescer
        closing = ("ok", 0)
        if failure is not None:
            closing = ("err", f"rank {rank}: {failure!r}")
        elif rank in owners:
            try:
                version = yield from _phase(
                    ctx, self._commit_stripe(
                        blob_id, received, attributed[owners.index(rank)],
                        rank),
                    "collective.write.commit_stripe", rank=rank)
                closing = ("ok", version)
            except Exception as exc:
                failure = exc
                # the group will observe this failure; keeping the stripe
                # staged would resurrect it at an unrelated later flush
                yield from client.coalescer.discard(blob_id)
                closing = ("err", f"aggregator rank {rank}: {exc!r}")

        # phase 4: share outcomes and the published watermark
        outcomes = yield from _phase(
            ctx, comm.allgather(rank, closing),
            "collective.write.closing", rank=rank)
        errors = [entry[1] for entry in outcomes if entry[0] == "err"]
        if errors:
            # surviving aggregators' stripes are durably published, so any
            # hint planted before this collective now names a version that
            # may hide them — drop it on every rank (the aborting
            # aggregator's engine already dropped its own in the abort path)
            client.drop_read_hint(blob_id)
            if failure is not None:
                raise failure
            raise MPIIOError("collective write failed: " + "; ".join(errors))
        watermark = max(entry[1] for entry in outcomes)
        if watermark:
            client.note_collective_commit(blob_id, watermark)
        self.stats.collectives += 1
        return vector.total_bytes()

    # ------------------------------------------------------------------
    def _commit_stripe(self, blob_id: str,
                       received: Dict[int, List[Tuple[int, int, bytes]]],
                       attributed_writes: int, self_rank: int):
        """Merge the received pieces and publish them as one snapshot batch.

        Pieces are ordered by (source rank, sequence): within one
        :class:`~repro.core.listio.IOVector` later requests win on
        overlapping bytes, so the merged stripe equals applying the ranks'
        accesses serially in rank order — the resolution the conformance
        suite pins.  Returns the published version (0 if the stripe was
        empty).
        """
        pieces = [(source, sequence, offset, data)
                  for source, items in sorted(received.items())
                  for sequence, offset, data in items
                  if data]
        if not pieces:
            return 0
        pieces.sort(key=lambda piece: (piece[0], piece[1], piece[2]))
        self.stats.bytes_received += sum(
            _piece_bytes((sequence, offset, data))
            for source, sequence, offset, data in pieces
            if source != self_rank)
        stripe_vector = IOVector.for_write(
            [(offset, data) for _source, _sequence, offset, data in pieces])
        coalescer = self.client.coalescer
        staged = yield from coalescer.enqueue(blob_id, stripe_vector,
                                              logical_writes=attributed_writes)
        yield from coalescer.barrier(blob_id)
        self.stats.stripes_committed += 1
        self.stats.attributed_writes += attributed_writes
        # the version comes from the staged write's own receipt: a client
        # batch bound may have auto-flushed the stripe already, in which
        # case the barrier commits nothing new and returns no receipts
        return staged.version


# ----------------------------------------------------------------------
# the read side: aggregated metadata resolution for read_at_all
# ----------------------------------------------------------------------
@dataclass
class CollectiveReadStats:
    """Per-rank counters of the collective-read path."""

    #: collective reads this rank participated in
    collectives: int = 0
    #: exchange bytes this rank contributed: access descriptions (phase 1)
    #: plus data pieces and plan nodes shipped to other ranks (phase 3)
    bytes_sent: int = 0
    #: payload bytes this rank received from other ranks
    bytes_received: int = 0
    #: stripe resolutions this rank executed as a resolver
    stripes_resolved: int = 0
    #: ``latest`` round-trips this rank issued as the lead resolver
    version_rpcs: int = 0
    #: lead-resolver version resolutions served by a consumed read hint
    version_rpcs_elided: int = 0
    #: metadata plan entries this rank shipped to its peers
    plan_nodes_shipped: int = 0
    #: never-written bytes this rank, as a resolver, shipped as compact
    #: hole descriptors instead of literal zeros (zero-extent elision:
    #: these bytes would have crossed the interconnect without it)
    hole_bytes_elided: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict form for benchmark artifacts."""
        return {
            "collectives": self.collectives,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "stripes_resolved": self.stripes_resolved,
            "version_rpcs": self.version_rpcs,
            "version_rpcs_elided": self.version_rpcs_elided,
            "plan_nodes_shipped": self.plan_nodes_shipped,
            "hole_bytes_elided": self.hole_bytes_elided,
        }


class CollectiveReader(_CollectiveParticipant):
    """One rank's side of the aggregated collective-read protocol.

    Every rank of a job owns one instance (wrapping that rank's client); the
    instances coordinate purely through the shared
    :class:`~repro.mpi.simcomm.Communicator` — no shared object, exactly
    like the write-side :class:`CollectiveAggregator`.  The resolver set is
    the aggregator set (same count chain, same spread): placement wants the
    same properties on both sides, and one knob keeps the two in agreement.
    """

    def __init__(self, client: "BlobClient",
                 num_resolvers: Optional[int] = None):
        super().__init__(client, num_resolvers)
        self.stats = CollectiveReadStats()

    # ------------------------------------------------------------------
    def collective_read(self, blob_id: str, vector: IOVector, rank: int,
                        comm: Communicator):
        """Execute one collective read; every rank of ``comm`` must call it.

        ``vector`` may be empty (a rank with nothing to read still
        participates, as MPI requires).  Returns one ``bytes`` per request,
        all taken from the one snapshot version the group pinned.  Raises
        :class:`~repro.errors.MPIIOError` on every rank when any rank's part
        of the protocol failed.
        """
        client = self.client
        node_size = client.cluster.config.metadata_node_size
        failure: Optional[BaseException] = None
        owners: List[int] = []
        floor = 0

        # phase 0 (local): this rank's own unpublished writes must be
        # readable (read-your-writes), and its one-shot hint is consumed
        # here so the group's version pin can absorb it.  The lead resolver
        # is the only rank that may round-trip for ``latest`` — and only
        # when it held no hint.
        try:
            count = self.resolved_count(comm.size)
            owners = aggregator_ranks(comm.size, count)
            if client.coalescer is not None \
                    and client.has_unpublished_state(blob_id):
                yield from client.coalescer.barrier(blob_id)
            hint = client.take_read_hint(blob_id)
            floor = max(hint or 0, client.version_hints.get(blob_id, 0))
            if rank == owners[0]:
                if hint is None:
                    latest = yield from client.latest_version(blob_id)
                    floor = max(floor, latest)
                    self.stats.version_rpcs += 1
                else:
                    client.latest_rpcs_elided += 1
                    self.stats.version_rpcs_elided += 1
            opening = ("ok",
                       [(request.offset, request.size) for request in vector],
                       floor)
        except Exception as exc:
            failure = exc
            opening = ("err", f"rank {rank}: {exc!r}")

        # phase 1: exchange access descriptions and watermarks; everyone
        # derives the same pinned version and file-domain partition (or
        # learns that the collective already died)
        ctx = client.trace_ctx
        if opening[0] == "ok":
            self.stats.bytes_sent += \
                EXTENT_DESCRIPTION_BYTES * len(opening[1]) + 8
        gathered = yield from _phase(
            ctx, comm.allgather(
                rank, opening,
                payload_bytes=lambda contributions:
                    _description_bytes(contributions, per_entry_extra=8)),
            "collective.read.describe", rank=rank)
        # the group's pinned snapshot: every contribution is a *published*
        # version (watermarks and hints only ever record published ones),
        # so the maximum is published too — and at least as new as every
        # rank's own commits
        early_errors, extents_by_rank, pinned, data_extents, lo, hi = \
            _shared_memo(gathered, "read_scan",
                         lambda: _scan_read_gather(gathered))
        if early_errors:
            # a rank that failed before consuming its hint must not keep it:
            # a peer's phase-0 barrier may have published in the meantime
            client.drop_read_hint(blob_id)
            if failure is not None:
                raise failure
            raise MPIIOError(
                "collective read aborted before the exchange: "
                + "; ".join(early_errors))
        if not data_extents:
            # collectively zero bytes: nothing to resolve or ship anywhere,
            # but the group still synchronized on the pinned version
            self.stats.collectives += 1
            if pinned:
                client.note_collective_read(blob_id, pinned)
            return [b"" for _request in vector]

        # phase 2 (resolvers): resolve + fetch this rank's stripe of the
        # union extent.  A rank failing here still enters the data exchange
        # empty-handed and reports through the closing phase, so its peers
        # never hang mid-collective.  Non-resolver ranks ship nothing at
        # all — the exchange is sparse on their side.
        send: Dict[int, Tuple[List[Tuple[int, bytes]], list, list]] = {}
        if failure is None:
            try:
                blob = yield from client._descriptor(blob_id)
                domains = _shared_memo(
                    gathered, ("read_domains", len(owners), blob.chunk_size),
                    lambda: partition_file_domain(lo, hi, len(owners),
                                                  blob.chunk_size))
                if rank in owners:
                    # the normalized per-rank wanted lists are identical for
                    # every resolver — derive them once per collective, then
                    # each resolver clips them to its own stripe
                    wanted_full = _shared_memo(
                        gathered, "read_wanted",
                        lambda: [RegionList.from_tuples(
                                     [(offset, length)
                                      for offset, length in extents if length]
                                 ).normalized()
                                 for extents in extents_by_rank])
                    send = yield from _phase(
                        ctx, self._resolve_stripe(
                            blob_id, pinned, domains[owners.index(rank)],
                            wanted_full, comm.size, rank),
                        "collective.read.resolve", rank=rank,
                        version=pinned)
            except Exception as exc:
                failure = exc
                send = {}

        # phase 3: scatter fetched pieces (and the plan trace) to the ranks.
        # Never-written ranges travel as (offset, length) hole descriptors —
        # 16 bytes each — instead of their literal zero payload
        def item_bytes(item):
            pieces, piece_holes, plan = item
            return (sum(len(data) + EXTENT_DESCRIPTION_BYTES
                        for _offset, data in pieces)
                    + len(piece_holes) * EXTENT_DESCRIPTION_BYTES
                    + len(plan) * node_size)

        self.stats.bytes_sent += sum(item_bytes(item)
                                     for destination, item in send.items()
                                     if destination != rank)
        received = yield from _phase(
            ctx, comm.alltoallv_sparse(rank, send, sizeof=item_bytes),
            "collective.read.scatter", rank=rank)

        # phase 4: share outcomes; only a group-approved plan touches caches
        closing = ("ok", pinned)
        if failure is not None:
            closing = ("err", f"rank {rank}: {failure!r}")
        outcomes = yield from _phase(
            ctx, comm.allgather(rank, closing),
            "collective.read.closing", rank=rank)
        errors = [entry[1] for entry in outcomes if entry[0] == "err"]
        if errors:
            # the hint consumed in phase 0 is gone and no fresh one is
            # planted: after a failed collective the next default read must
            # ask the version manager (peer state is undefined)
            client.drop_read_hint(blob_id)
            if failure is not None:
                raise failure
            raise MPIIOError("collective read failed: " + "; ".join(errors))

        self.stats.bytes_received += sum(
            item_bytes(item) for source, item in received.items()
            if source != rank)
        # the group pin is a published version every rank must remember
        # *before* absorbing the plan: recording it re-plants the one-shot
        # hint and opens the shared tier's watermark gate for the plan's
        # nodes (all resolved at or below the pin)
        client.note_collective_read(blob_id, pinned)
        # cache warming from the broadcast plan: resolved lookups of the
        # pinned (published, immutable) snapshot, deduplicated across the
        # resolvers that shipped them (in source-rank order, so absorption
        # is deterministic)
        inbound = [item for _source, item in sorted(received.items())]
        absorbed: Dict = {}
        for _pieces, _holes, plan in inbound:
            for request, node in plan:
                absorbed.setdefault(request, node)
        if absorbed:
            client.absorb_plan_nodes(blob_id, list(absorbed.items()))

        # hole descriptors materialize locally — the zeros never crossed
        # the interconnect
        fetched = [(offset, len(data), data)
                   for pieces, _holes, _plan in inbound
                   for offset, data in pieces]
        fetched.extend((offset, length, b"\x00" * length)
                       for _pieces, piece_holes, _plan in inbound
                       for offset, length in piece_holes)
        results = client._assemble(vector, fetched)
        self.stats.collectives += 1
        return results

    # ------------------------------------------------------------------
    def _resolve_stripe(self, blob_id: str, version: int,
                        domain: Tuple[int, int],
                        wanted_full: List[RegionList],
                        size: int, rank: int):
        """Resolve and fetch one stripe; cut the bytes per destination rank.

        One batched :class:`~repro.blobseer.metadata.segment_tree.
        ReadPlanner` walk over the union of every rank's wanted bytes within
        the stripe (each metadata node resolved once however many ranks want
        it), one parallel chunk fetch, then per-rank extraction.  Returns
        the ``send`` map for the sparse data exchange: ``(pieces, holes,
        plan)`` per destination — ``holes`` are the never-written ranges
        within that rank's wanted bytes, shipped as ``(offset, length)``
        descriptors instead of literal zero payloads (zero-extent elision),
        and ``plan`` is the traversal trace every rank uses to warm its
        cache (shipped to every rank, wanted bytes or not).
        """
        start, end = domain
        send: Dict[int, Tuple[List[Tuple[int, bytes]], list, list]] = {}
        if end <= start:
            return send
        stripe = Region(start, end - start)
        wanted_by_rank = [full.clip(stripe) for full in wanted_full]
        union = RegionList.union_all(wanted_by_rank)
        if len(union) == 0:
            return send

        trace: Dict = {}
        zero_extents: List[Region] = []
        pieces = yield from self.client._vectored_read(
            blob_id, IOVector.for_read(union.as_tuples()), version,
            trace=trace, holes=zero_extents)
        self.stats.stripes_resolved += 1
        plan = list(trace.items())
        self.stats.plan_nodes_shipped += len(plan) * (size - 1)
        hole_list = RegionList(zero_extents).normalized()
        have_holes = len(hole_list) > 0

        buffers = list(zip(union, pieces))
        for destination, wanted in enumerate(wanted_by_rank):
            cut: List[Tuple[int, bytes]] = []
            cut_holes: List[Tuple[int, int]] = []
            index = 0
            for region in wanted:
                # a wanted region is contained in exactly one union region
                # (the union covers it and both lists are normalized), and
                # both lists are sorted — one monotonic sweep finds it
                while buffers[index][0].end < region.end:
                    index += 1
                source, data = buffers[index]
                if not have_holes:
                    # common case (fully written range): the whole region
                    # cuts straight out of its union buffer
                    offset = region.offset - source.offset
                    cut.append((region.offset,
                                data[offset:offset + region.size]))
                    continue
                holes_here = hole_list.clip(region)
                for hole in holes_here:
                    cut_holes.append((hole.offset, hole.size))
                for part in RegionList((region,)).subtract(holes_here):
                    offset = part.offset - source.offset
                    cut.append((part.offset,
                                data[offset:offset + part.size]))
            if destination != rank:
                self.stats.hole_bytes_elided += sum(length for _offset, length
                                                    in cut_holes)
            send[destination] = (cut, cut_holes, plan)
        return send
