"""Two-phase collective buffering over the write coalescer.

Thakur, Gropp & Lusk's classic optimization, transplanted onto the paper's
versioning backend: on a collective write every rank holds a (possibly
non-contiguous) piece of a shared access, and committing each piece
separately costs one version ticket plus one copy-on-write metadata build
*per rank*.  Two-phase collective buffering instead

1. exchanges the ranks' access *descriptions* (one ``allgather`` of region
   lists) so everyone can compute the same partition of the file domain into
   ``num_aggregators`` contiguous, chunk-aligned stripes;
2. exchanges the *data* (one ``alltoallv``) so each stripe's pieces land on
   the one aggregator rank that owns it;
3. has each aggregator merge its pieces — sorted by source rank, so overlaps
   resolve exactly as a serial application of the ranks' writes in rank
   order — and stage the merged stripe in its
   :class:`~repro.blobseer.writepath.coalescer.WriteCoalescer`, committing
   the whole group's collective as ``num_aggregators`` snapshot batches (one
   ``allocate``, one ticket, one metadata build each) instead of ``N``;
4. shares the published watermark back with every rank in the closing
   ``allgather``, so each participant's client learns — at zero RPC cost —
   a published version containing its own data (read-your-writes without a
   ``latest`` round-trip, and write-through warmth on the aggregators).

The aggregators talk to the version manager; the other ranks spend *zero*
control-plane round-trips on the collective — the traffic that remains is
MPI-internal exchange, which moves over the compute interconnect instead of
hammering the storage control plane.

Failure containment: any phase that fails on one rank (a dead provider under
an aggregator's commit, a validation error while merging) is reported
through the closing exchange instead of being raised mid-protocol, so the
surviving ranks never hang in a half-entered collective.  A failed
aggregator discards its staged stripe (the group already observed the
failure; silently retrying it at the next flush point would resurrect a
write the application saw fail), releases its ticket through the commit
engine's abort/rollback path, and every rank raises — with no torn snapshot
left behind and publication never stalled for bystanders.  Like MPI itself,
a *failed* collective leaves the file state undefined within the access
range: stripes whose aggregators succeeded are durably published (each one
a complete, internally consistent snapshot), only the failed parts are
absent — the guarantees are snapshot integrity and group progress, not
all-or-nothing application of the collective.

In MPI *atomic* mode the collective path is bypassed: splitting one rank's
access across several stripe snapshots could let a concurrent reader observe
half of that rank's write, so atomic collectives keep the native
one-rank-one-snapshot guarantee of the versioning backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.errors import MPIIOError
from repro.mpi.simcomm import Communicator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.client import BlobClient

#: heuristic used when neither the driver nor the cluster config names an
#: aggregator count: one aggregator per this many ranks (ROMIO defaults its
#: ``cb_nodes`` to the node count; with one rank per node this is a stand-in
#: that still demonstrates the aggregation win)
DEFAULT_RANKS_PER_AGGREGATOR = 4

#: wire size of one serialized ``(offset, size)`` access description entry
EXTENT_DESCRIPTION_BYTES = 16


def resolve_aggregator_count(size: int, configured: Optional[int] = None) -> int:
    """Number of aggregator ranks for a communicator of ``size`` ranks."""
    if size <= 0:
        raise MPIIOError(f"communicator size must be positive, got {size}")
    if configured is None:
        return max(1, size // DEFAULT_RANKS_PER_AGGREGATOR)
    if configured <= 0:
        raise MPIIOError(
            f"collective aggregator count must be positive, got {configured}")
    return min(size, configured)


def aggregator_ranks(size: int, count: int) -> List[int]:
    """The ``count`` ranks that act as aggregators, spread over the job.

    Evenly spaced (``[0, size/count, 2*size/count, ...]``) so aggregation
    load lands on different nodes rather than piling onto the first ones.
    """
    if not 1 <= count <= size:
        raise MPIIOError(f"need 1..{size} aggregators, got {count}")
    return [(index * size) // count for index in range(count)]


def partition_file_domain(lo: int, hi: int, count: int,
                          align: int) -> List[Tuple[int, int]]:
    """Split ``[lo, hi)`` into ``count`` contiguous half-open stripes.

    Stripe boundaries sit on *absolute* multiples of ``align`` (the BLOB
    chunk size) — the grid is anchored at the aligned floor of ``lo``, not
    at ``lo`` itself — so one chunk is never written by two aggregators and
    each chunk's copy-on-write cost is paid exactly once even when the
    collective's extent starts mid-chunk.  Trailing stripes may be empty
    when the extent is smaller than ``count`` aligned stripes.
    """
    if hi <= lo:
        raise MPIIOError(f"empty file domain [{lo}, {hi})")
    base = lo - (lo % align) if align > 0 else lo
    span = hi - base
    stripe = -(-span // count)  # ceil
    if align > 0:
        stripe = -(-stripe // align) * align
    domains: List[Tuple[int, int]] = []
    for index in range(count):
        start = max(lo, min(base + index * stripe, hi))
        end = min(base + (index + 1) * stripe, hi)
        domains.append((start, max(start, end)))
    return domains


def _domain_index(offset: int, domains: List[Tuple[int, int]]) -> int:
    """Index of the stripe containing ``offset``."""
    for index, (start, end) in enumerate(domains):
        if start <= offset < end:
            return index
    raise MPIIOError(f"offset {offset} outside the partitioned file domain")


@dataclass
class CollectiveStats:
    """Per-rank counters of the collective-buffering path."""

    #: collective writes this rank participated in
    collectives: int = 0
    #: exchange bytes this rank contributed: access descriptions (phase 1)
    #: plus data pieces shipped to other ranks' aggregators (phase 2)
    bytes_sent: int = 0
    #: payload bytes this rank received as an aggregator
    bytes_received: int = 0
    #: merged stripe batches this rank committed as an aggregator
    stripes_committed: int = 0
    #: application writes attributed to this rank's stripe commits
    attributed_writes: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict form for benchmark artifacts."""
        return {
            "collectives": self.collectives,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "stripes_committed": self.stripes_committed,
            "attributed_writes": self.attributed_writes,
        }


def _piece_bytes(piece: Tuple[int, int, bytes]) -> int:
    """Wire size of one exchanged piece (payload plus a small header)."""
    return len(piece[2]) + 16


class CollectiveAggregator:
    """One rank's side of the two-phase collective write protocol.

    Every rank of a job owns one instance (wrapping that rank's client);
    the instances coordinate purely through the shared
    :class:`~repro.mpi.simcomm.Communicator`, so there is no shared object —
    exactly like real MPI ranks in separate address spaces.
    """

    def __init__(self, client: "BlobClient",
                 num_aggregators: Optional[int] = None):
        if client.coalescer is None:
            # fail fast: stripe commits stage through the coalescer, and a
            # missing one surfacing mid-protocol (in a failure handler, no
            # less) would strand the peer ranks in a half-entered collective
            raise MPIIOError(
                "CollectiveAggregator needs a client with a write coalescer "
                "(e.g. VectoredClient)")
        if num_aggregators is not None and num_aggregators <= 0:
            # fail at construction, not mid-collective: a bad setting that
            # only surfaced inside the protocol would fail one rank's call
            # while its peers are already committed to the exchange
            raise MPIIOError(
                f"collective aggregator count must be positive, "
                f"got {num_aggregators}")
        self.client = client
        #: explicit per-driver override; ``None`` falls back to
        #: ``ClusterConfig.collective_aggregators``, then the heuristic.
        #: Like ROMIO hints, the value must agree across the ranks of a job.
        self.num_aggregators = num_aggregators
        self.stats = CollectiveStats()

    # ------------------------------------------------------------------
    def resolved_count(self, size: int) -> int:
        """Aggregator count for a ``size``-rank communicator."""
        configured = self.num_aggregators
        if configured is None:
            configured = self.client.cluster.config.collective_aggregators
        return resolve_aggregator_count(size, configured)

    # ------------------------------------------------------------------
    def collective_write(self, blob_id: str, vector: IOVector, rank: int,
                         comm: Communicator):
        """Execute one collective write; every rank of ``comm`` must call it.

        ``vector`` may be empty (a rank with nothing to write still
        participates in the exchange, as MPI requires).  Returns the bytes
        this rank contributed.  Raises :class:`~repro.errors.MPIIOError` on
        every rank when any rank's part of the protocol failed.
        """
        client = self.client
        failure: Optional[BaseException] = None

        # phase 0 (local): writes this rank queued earlier in program order
        # must take their tickets before the group's stripe commits do
        try:
            if client.coalescer.pending_writes(blob_id):
                yield from client.coalescer.flush(blob_id)
            opening = ("ok", [(request.offset, request.size)
                              for request in vector])
        except Exception as exc:
            failure = exc
            opening = ("err", f"rank {rank}: {exc!r}")

        # phase 1: exchange access descriptions; everyone derives the same
        # file-domain partition (or learns that the collective already died).
        # The descriptions are real exchange traffic too — priced by their
        # actual entry count, not a flat guess, and counted into the stats
        def description_bytes(contributions):
            return sum(EXTENT_DESCRIPTION_BYTES * len(entry[1])
                       if entry[0] == "ok" else 64
                       for entry in contributions.values())

        if opening[0] == "ok":
            self.stats.bytes_sent += \
                EXTENT_DESCRIPTION_BYTES * len(opening[1])
        gathered = yield from comm.allgather(rank, opening,
                                             payload_bytes=description_bytes)
        early_errors = [entry[1] for entry in gathered if entry[0] == "err"]
        if early_errors:
            if failure is not None:
                raise failure
            raise MPIIOError(
                "collective write aborted before the exchange: "
                + "; ".join(early_errors))
        extents_by_rank = [entry[1] for entry in gathered]
        data_extents = [(offset, size) for extents in extents_by_rank
                        for offset, size in extents if size]
        if not data_extents:
            # collectively zero bytes (empty vectors, or only zero-size
            # requests): nothing to exchange or commit anywhere
            self.stats.collectives += 1
            return 0

        # partition + piece splitting must not raise mid-protocol either: a
        # rank failing here (a descriptor fetch against a dead manager, a
        # bad aggregator setting) still enters the exchange empty-handed and
        # reports through the closing phase, so its peers never hang
        owners: List[int] = []
        send: List[List[Tuple[int, int, bytes]]] = [[] for _ in range(comm.size)]
        try:
            blob = yield from client._descriptor(blob_id)
            lo = min(offset for offset, _size in data_extents)
            hi = max(offset + size for offset, size in data_extents)
            count = self.resolved_count(comm.size)
            owners = aggregator_ranks(comm.size, count)
            domains = partition_file_domain(lo, hi, count, blob.chunk_size)

            # each rank's one logical write is attributed to the aggregator
            # owning its first data byte, so the attributions sum to the
            # number of data-bearing ranks however the stripes slice them
            attributed = [0] * count
            for extents in extents_by_rank:
                first = next((offset for offset, size in extents if size),
                             None)
                if first is not None:
                    attributed[_domain_index(first, domains)] += 1

            # phase 2: ship every piece to the aggregator owning its stripe
            for sequence, request in enumerate(vector):
                if request.size == 0:
                    continue
                start, end = request.offset, request.offset + request.size
                index = _domain_index(start, domains)
                while start < end:
                    cut = min(end, domains[index][1])
                    data = request.data[start - request.offset:
                                        cut - request.offset]
                    send[owners[index]].append((sequence, start, data))
                    start = cut
                    index += 1
        except Exception as exc:
            failure = exc
            owners = []
            send = [[] for _ in range(comm.size)]
        # pieces addressed to this rank itself are a local copy, not traffic
        self.stats.bytes_sent += sum(_piece_bytes(piece)
                                     for destination, pieces in enumerate(send)
                                     for piece in pieces
                                     if destination != rank)
        received = yield from comm.alltoallv(
            rank, send,
            sizeof=lambda pieces: sum(_piece_bytes(piece) for piece in pieces))

        # phase 3 (aggregators): merge in (source rank, sequence) order —
        # the serial rank-order application — and commit via the coalescer
        closing = ("ok", 0)
        if failure is not None:
            closing = ("err", f"rank {rank}: {failure!r}")
        elif rank in owners:
            try:
                version = yield from self._commit_stripe(
                    blob_id, received, attributed[owners.index(rank)], rank)
                closing = ("ok", version)
            except Exception as exc:
                failure = exc
                # the group will observe this failure; keeping the stripe
                # staged would resurrect it at an unrelated later flush
                yield from client.coalescer.discard(blob_id)
                closing = ("err", f"aggregator rank {rank}: {exc!r}")

        # phase 4: share outcomes and the published watermark
        outcomes = yield from comm.allgather(rank, closing)
        errors = [entry[1] for entry in outcomes if entry[0] == "err"]
        if errors:
            if failure is not None:
                raise failure
            raise MPIIOError("collective write failed: " + "; ".join(errors))
        watermark = max(entry[1] for entry in outcomes)
        if watermark:
            client.note_collective_commit(blob_id, watermark)
        self.stats.collectives += 1
        return vector.total_bytes()

    # ------------------------------------------------------------------
    def _commit_stripe(self, blob_id: str,
                       received: List[List[Tuple[int, int, bytes]]],
                       attributed_writes: int, self_rank: int):
        """Merge the received pieces and publish them as one snapshot batch.

        Pieces are ordered by (source rank, sequence): within one
        :class:`~repro.core.listio.IOVector` later requests win on
        overlapping bytes, so the merged stripe equals applying the ranks'
        accesses serially in rank order — the resolution the conformance
        suite pins.  Returns the published version (0 if the stripe was
        empty).
        """
        pieces = [(source, sequence, offset, data)
                  for source, items in enumerate(received)
                  for sequence, offset, data in items
                  if data]
        if not pieces:
            return 0
        pieces.sort(key=lambda piece: (piece[0], piece[1], piece[2]))
        self.stats.bytes_received += sum(
            _piece_bytes((sequence, offset, data))
            for source, sequence, offset, data in pieces
            if source != self_rank)
        stripe_vector = IOVector.for_write(
            [(offset, data) for _source, _sequence, offset, data in pieces])
        coalescer = self.client.coalescer
        staged = yield from coalescer.enqueue(blob_id, stripe_vector,
                                              logical_writes=attributed_writes)
        yield from coalescer.barrier(blob_id)
        self.stats.stripes_committed += 1
        self.stats.attributed_writes += attributed_writes
        # the version comes from the staged write's own receipt: a client
        # batch bound may have auto-flushed the stripe already, in which
        # case the barrier commits nothing new and returns no receipts
        return staged.version
