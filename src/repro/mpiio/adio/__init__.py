"""ADIO drivers: the storage-specific back-ends of the MPI-I/O layer."""

from repro.mpiio.adio.base import ADIODriver
from repro.mpiio.adio.collective import CollectiveAggregator
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.adio.posix_locking import PosixLockingDriver
from repro.mpiio.adio.posix_listlock import PosixListLockDriver
from repro.mpiio.adio.conflict_detect import ConflictDetectDriver
from repro.mpiio.adio.nolock import NoLockDriver

DRIVERS = {
    VersioningDriver.name: VersioningDriver,
    PosixLockingDriver.name: PosixLockingDriver,
    PosixListLockDriver.name: PosixListLockDriver,
    ConflictDetectDriver.name: ConflictDetectDriver,
    NoLockDriver.name: NoLockDriver,
}

__all__ = [
    "ADIODriver",
    "CollectiveAggregator",
    "VersioningDriver",
    "PosixLockingDriver",
    "PosixListLockDriver",
    "ConflictDetectDriver",
    "NoLockDriver",
    "DRIVERS",
]
