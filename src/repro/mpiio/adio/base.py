"""The ADIO driver interface.

A driver instance belongs to one rank (it wraps that rank's storage client)
and translates the flattened, view-independent accesses produced by
:class:`repro.mpiio.file.File` into operations of its storage backend.  All
data-path methods are generator methods running inside the rank's simulated
process.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.core.listio import IOVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.simcomm import Communicator


class ADIODriver:
    """Abstract storage driver used by the MPI-I/O layer."""

    #: registry name (``versioning``, ``posix-locking``, ...)
    name = "abstract"
    #: True when the driver guarantees MPI atomicity natively (no locking
    #: needed at the MPI-I/O layer even in atomic mode)
    native_atomicity = False

    def __init__(self) -> None:
        #: bytes moved through this driver (benchmark metric)
        self.bytes_written: int = 0
        self.bytes_read: int = 0
        #: number of write/read calls
        self.write_calls: int = 0
        self.read_calls: int = 0

    # ------------------------------------------------------------------
    # interface (generator methods)
    # ------------------------------------------------------------------
    def open(self, path: str, size_hint: int, create: bool, rank: int = 0,
             comm: Optional["Communicator"] = None):
        """Open (collectively, when ``comm`` is given) the file ``path``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def write_vector(self, path: str, vector: IOVector, atomic: bool,
                     rank: int = 0, comm: Optional["Communicator"] = None):
        """Write a flattened access; honour MPI atomicity when ``atomic``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def read_vector(self, path: str, vector: IOVector, atomic: bool,
                    rank: int = 0, comm: Optional["Communicator"] = None):
        """Read a flattened access; returns one ``bytes`` per request."""
        raise NotImplementedError
        yield  # pragma: no cover

    def file_size(self, path: str):
        """Current size of the file as known by the backend."""
        raise NotImplementedError
        yield  # pragma: no cover

    def sync(self, path: str):
        """Flush outstanding data (a no-op for both simulated backends)."""
        return None
        yield  # pragma: no cover

    def close(self, path: str):
        """Release per-file driver state (default: nothing to do)."""
        return None
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def _account_write(self, vector: IOVector) -> None:
        self.bytes_written += vector.total_bytes()
        self.write_calls += 1

    def _account_read(self, vector: IOVector) -> None:
        self.bytes_read += vector.total_bytes()
        self.read_calls += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.name})>"
