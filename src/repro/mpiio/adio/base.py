"""The ADIO driver interface.

A driver instance belongs to one rank (it wraps that rank's storage client)
and translates the flattened, view-independent accesses produced by
:class:`repro.mpiio.file.File` into operations of its storage backend.  All
data-path methods are generator methods running inside the rank's simulated
process.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.core.listio import IOVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.simcomm import Communicator


class ADIODriver:
    """Abstract storage driver used by the MPI-I/O layer."""

    #: registry name (``versioning``, ``posix-locking``, ...)
    name = "abstract"
    #: True when the driver guarantees MPI atomicity natively (no locking
    #: needed at the MPI-I/O layer even in atomic mode)
    native_atomicity = False
    #: per-rank :class:`~repro.obs.trace.TraceContext` the File layer roots
    #: its operation spans in; ``None`` (the default) means no tracing —
    #: drivers whose backend traces expose their client's context instead
    trace_context = None
    #: the cluster's :class:`~repro.obs.Observability` (digest taps, flight
    #: recorder) the File layer taps per operation; ``None`` (the default)
    #: means no cluster behind the driver — cluster-backed drivers expose
    #: their client's handle instead
    observability = None

    def __init__(self) -> None:
        #: bytes moved through this driver (benchmark metric)
        self.bytes_written: int = 0
        self.bytes_read: int = 0
        #: number of write/read calls
        self.write_calls: int = 0
        self.read_calls: int = 0

    # ------------------------------------------------------------------
    # interface (generator methods)
    # ------------------------------------------------------------------
    def open(self, path: str, size_hint: int, create: bool, rank: int = 0,
             comm: Optional["Communicator"] = None):
        """Open (collectively, when ``comm`` is given) the file ``path``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def write_vector(self, path: str, vector: IOVector, atomic: bool,
                     rank: int = 0, comm: Optional["Communicator"] = None):
        """Write a flattened access; honour MPI atomicity when ``atomic``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def write_vector_all(self, path: str, vector: IOVector, atomic: bool,
                         rank: int = 0, comm: Optional["Communicator"] = None):
        """Collective write entry point (``MPI_File_write_at_all``).

        The default treats a collective write as ``size`` independent writes
        (what every driver did before collective buffering existed); drivers
        that coordinate ranks — exchange phases, aggregation — override it.
        All ranks of ``comm`` call it, including ranks with empty vectors.
        """
        if len(vector) == 0:
            return 0
        written = yield from self.write_vector(path, vector, atomic,
                                               rank=rank, comm=comm)
        return written

    def write_all_synchronizes(self, atomic: bool,
                               comm: Optional["Communicator"]) -> bool:
        """Whether :meth:`write_vector_all` already rendezvouses the ranks.

        The File layer closes a collective write with a barrier only when
        the driver's path did not — a coordinating driver's final exchange
        is already a full rendezvous, and a second one would just be charged
        on top.  Must return the same value on every rank of a job.
        """
        return False

    def read_vector(self, path: str, vector: IOVector, atomic: bool,
                    rank: int = 0, comm: Optional["Communicator"] = None):
        """Read a flattened access; returns one ``bytes`` per request."""
        raise NotImplementedError
        yield  # pragma: no cover

    def read_vector_all(self, path: str, vector: IOVector, atomic: bool,
                        rank: int = 0, comm: Optional["Communicator"] = None):
        """Collective read entry point (``MPI_File_read_at_all``).

        The default treats a collective read as ``size`` independent reads
        (what every driver did before collective reads existed); drivers
        that coordinate ranks — aggregated metadata resolution, data
        scatter — override it.  All ranks of ``comm`` call it, including
        ranks with empty vectors.
        """
        if len(vector) == 0:
            return []
        pieces = yield from self.read_vector(path, vector, atomic,
                                             rank=rank, comm=comm)
        return pieces

    def read_all_synchronizes(self, atomic: bool,
                              comm: Optional["Communicator"]) -> bool:
        """Whether :meth:`read_vector_all` already rendezvouses the ranks.

        The File layer closes a collective read with a barrier only when
        the driver's path did not — mirror of :meth:`write_all_synchronizes`.
        Must return the same value on every rank of a job.
        """
        return False

    def file_size(self, path: str):
        """Current size of the file as known by the backend."""
        raise NotImplementedError
        yield  # pragma: no cover

    def sync(self, path: str):
        """Flush outstanding data (a no-op for both simulated backends)."""
        return None
        yield  # pragma: no cover

    def close(self, path: str):
        """Release per-file driver state (default: nothing to do)."""
        return None
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def _account_write(self, vector: IOVector) -> None:
        self.bytes_written += vector.total_bytes()
        self.write_calls += 1

    def _account_read(self, vector: IOVector) -> None:
        self.bytes_read += vector.total_bytes()
        self.read_calls += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.name})>"
